//! Exhaustive model check of the serving front-end's bounded-queue
//! shutdown protocol (`crates/serve/src/frontend.rs`), driven by
//! `om_lint::interleave` — the repo's loom stand-in.
//!
//! The modelled protocol, step for step:
//!
//! * each **producer** submits one request via `try_send`: lock the
//!   admission gate, check `closed`, and (when open) `try_send` into the
//!   bounded channel — the whole sequence runs under the gate mutex, so
//!   it is one atomic model step (the fusion rule `interleave` documents);
//!   a full queue or a closed gate is a typed rejection, never a block;
//! * the **stopper** (`shutdown`) first sets `closed` under the gate (one
//!   atomic step), then — *outside* the gate — blocking-sends the `Stop`
//!   marker, which waits for queue space behind the accepted backlog;
//! * the **worker** pulls messages in FIFO order: a request is served
//!   (batching is orthogonal to the drain property, so the model flushes
//!   immediately), `Stop` switches it to the final `try_recv` sweep; when
//!   the sweep sees `Empty` the worker drops the receiver and exits.
//!
//! Verified for every interleaving, across producer counts and queue
//! bounds: no deadlock, a bounded queue, and **drain completeness** —
//! every accepted request is served before the worker exits, even with
//! submits racing the stop.
//!
//! A deliberately broken variant — `try_send` without the gate, exactly
//! the code shape before the gate existed — must be caught: a producer
//! can land a request *after* `Stop`, after the worker's final sweep
//! already saw `Empty` but before the receiver drops. The request is
//! accepted and never served. The explorer finds that window, which
//! demonstrates the model is strong enough to see the bug class the gate
//! closes.

use om_lint::interleave::{explore, Model};

/// Thread id 0 is the stopper, 1 the worker, `2..` the producers.
const STOPPER: usize = 0;
const WORKER: usize = 1;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Msg {
    Req,
    Stop,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ProducerPc {
    /// About to run `try_send` (gate + check + send fused: one critical
    /// section in the real code, one step here).
    Submit,
    /// Submit returned (accepted or rejected — the outcome is tallied in
    /// `accepted`; a rejected producer simply finishes).
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum StopperPc {
    /// `shutdown` part 1: set `closed` under the gate.
    CloseGate,
    /// `shutdown` part 2: blocking-send `Stop` (outside the gate; waits
    /// for queue space).
    SendStop,
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum WorkerPc {
    /// Blocking `recv` loop: serve requests, break on `Stop`.
    Recv,
    /// Post-stop `try_recv` sweep: serve until `Empty`.
    Sweep,
    /// Sweep saw `Empty`; the receiver drops when the thread returns —
    /// a separate step, because that gap is the broken variant's window.
    DropRx,
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct FrontendModel {
    /// Whether `try_send` checks the admission gate (the shipped
    /// protocol) or not (the broken pre-gate shape).
    gated: bool,
    /// Queue bound of the `sync_channel`.
    cap: usize,
    producers: Vec<ProducerPc>,
    stopper: StopperPc,
    worker: WorkerPc,
    /// The admission gate flag (`*closed` in the real code).
    closed: bool,
    /// The bounded channel, FIFO.
    queue: Vec<Msg>,
    /// Whether the worker still holds the receiver.
    rx_alive: bool,
    accepted: usize,
    served: usize,
}

impl FrontendModel {
    fn new(gated: bool, producers: usize, cap: usize) -> FrontendModel {
        FrontendModel {
            gated,
            cap,
            producers: vec![ProducerPc::Submit; producers],
            stopper: if gated { StopperPc::CloseGate } else { StopperPc::SendStop },
            worker: WorkerPc::Recv,
            closed: false,
            queue: Vec::new(),
            rx_alive: true,
            accepted: 0,
            served: 0,
        }
    }
}

impl Model for FrontendModel {
    fn runnable(&self) -> Vec<usize> {
        let mut r = Vec::new();
        match self.stopper {
            StopperPc::CloseGate => r.push(STOPPER),
            // A blocking send needs queue space — unless the receiver is
            // gone, in which case it returns Err immediately.
            StopperPc::SendStop if self.queue.len() < self.cap || !self.rx_alive => {
                r.push(STOPPER);
            }
            _ => {}
        }
        match self.worker {
            // Blocking recv: runnable only with a message waiting. (The
            // disconnect path never fires here — shutdown always delivers
            // `Stop` before the senders drop.)
            WorkerPc::Recv if !self.queue.is_empty() => r.push(WORKER),
            // try_recv and the thread-exit receiver drop never block.
            WorkerPc::Sweep | WorkerPc::DropRx => r.push(WORKER),
            _ => {}
        }
        for (i, p) in self.producers.iter().enumerate() {
            if *p == ProducerPc::Submit {
                r.push(2 + i);
            }
        }
        r
    }

    fn step(&self, tid: usize) -> FrontendModel {
        let mut s = self.clone();
        match tid {
            STOPPER => match s.stopper {
                StopperPc::CloseGate => {
                    s.closed = true;
                    s.stopper = StopperPc::SendStop;
                }
                StopperPc::SendStop => {
                    if s.rx_alive {
                        s.queue.push(Msg::Stop);
                    }
                    s.stopper = StopperPc::Done;
                }
                StopperPc::Done => unreachable!("stopper done"),
            },
            WORKER => match s.worker {
                WorkerPc::Recv => match s.queue.remove(0) {
                    Msg::Req => s.served += 1,
                    Msg::Stop => s.worker = WorkerPc::Sweep,
                },
                WorkerPc::Sweep => {
                    if s.queue.is_empty() {
                        s.worker = WorkerPc::DropRx;
                    } else {
                        match s.queue.remove(0) {
                            Msg::Req => s.served += 1,
                            Msg::Stop => unreachable!("one stop marker per run"),
                        }
                    }
                }
                WorkerPc::DropRx => {
                    s.rx_alive = false;
                    s.worker = WorkerPc::Done;
                }
                WorkerPc::Done => unreachable!("worker done"),
            },
            p => {
                // try_send: the whole gate-check-send critical section.
                let accept = s.rx_alive
                    && !(s.gated && s.closed)
                    && s.queue.len() < s.cap;
                if accept {
                    s.queue.push(Msg::Req);
                    s.accepted += 1;
                }
                s.producers[p - 2] = ProducerPc::Done;
            }
        }
        s
    }

    fn is_terminal_ok(&self) -> bool {
        self.stopper == StopperPc::Done
            && self.worker == WorkerPc::Done
            && self.producers.iter().all(|p| *p == ProducerPc::Done)
            && self.served == self.accepted
    }

    fn invariant(&self) -> Result<(), String> {
        if self.queue.len() > self.cap {
            return Err(format!(
                "queue grew past its bound: {} > {}",
                self.queue.len(),
                self.cap
            ));
        }
        if self.served > self.accepted {
            return Err(format!(
                "served {} of only {} accepted requests",
                self.served, self.accepted
            ));
        }
        // Drain completeness, as a state property: once the receiver is
        // gone nothing can ever serve a queued request.
        if !self.rx_alive && self.queue.contains(&Msg::Req) {
            return Err("accepted request stranded behind a dropped receiver".to_string());
        }
        Ok(())
    }
}

#[test]
fn gated_shutdown_serves_every_accepted_request_in_every_interleaving() {
    for producers in 1..=3 {
        for cap in 1..=3 {
            let stats = explore(FrontendModel::new(true, producers, cap))
                .unwrap_or_else(|e| panic!("{producers} producers, cap {cap}: {e}"));
            assert!(
                stats.states > producers * cap,
                "suspiciously small exploration: {stats:?}"
            );
        }
    }
}

#[test]
fn submits_racing_the_stop_are_either_served_or_typed_rejections() {
    // The adversarial shape: more producers than queue slots, all racing
    // the stopper. Every interleaving must end with served == accepted —
    // the losers got SubmitError, not silence.
    let stats = explore(FrontendModel::new(true, 3, 1)).expect("gated protocol verified");
    assert!(stats.transitions > stats.states, "explorer did not branch");
}

#[test]
fn ungated_shutdown_loses_a_request_and_the_explorer_finds_the_window() {
    // Remove the admission gate and the protocol is broken: a submit can
    // land after Stop, after the final sweep saw Empty, just before the
    // receiver drops. Accepted, never served.
    let err = explore(FrontendModel::new(false, 1, 2))
        .expect_err("the ungated protocol must fail model checking");
    assert!(
        err.contains("stranded behind a dropped receiver"),
        "expected the lost-request window, got: {err}"
    );
}
