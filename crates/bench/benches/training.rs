//! Training-time benches: the mechanism behind Table 6 — one full
//! training run with the Domain Adversarial and Supervised Contrastive
//! modules toggled. Absolute numbers are CPU-scale; the paper's claim is
//! the *relative* cost of each module.

use criterion::{criterion_group, criterion_main, Criterion};
use om_bench::bench_scenario;
use omnimatch_core::{OmniMatchConfig, Trainer};

fn quick_cfg() -> OmniMatchConfig {
    OmniMatchConfig {
        epochs: 1,
        ..OmniMatchConfig::fast()
    }
}

fn bench_training_variants(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("training/one_epoch");
    group.sample_size(10);
    group.bench_function("full", |b| {
        b.iter(|| Trainer::new(quick_cfg()).fit(&scenario))
    });
    group.bench_function("wo_da", |b| {
        b.iter(|| Trainer::new(quick_cfg().without_da()).fit(&scenario))
    });
    group.bench_function("wo_scl", |b| {
        b.iter(|| Trainer::new(quick_cfg().without_scl()).fit(&scenario))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let scenario = bench_scenario();
    let trained = Trainer::new(quick_cfg()).fit(&scenario);
    let pairs: Vec<_> = scenario
        .test_pairs()
        .iter()
        .map(|it| (it.user, it.item))
        .collect();
    c.bench_function("training/predict_cold_batch", |b| {
        b.iter(|| std::hint::black_box(trained.predict(&pairs)))
    });
}

criterion_group!(benches, bench_training_variants, bench_prediction);
criterion_main!(benches);
