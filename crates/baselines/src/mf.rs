//! Matrix-factorisation substrate: biased MF trained by SGD, the building
//! block of CMF, EMCDR and PTUPCDR.

use std::collections::BTreeMap;

use om_data::types::{Interaction, ItemId, UserId};
use om_tensor::{init, Rng};

/// Hyper-parameters for an SGD matrix factorisation.
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Latent factor dimensionality.
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation strength.
    pub reg: f32,
    /// Learn user/item bias terms and a global mean (classic CMF sets this
    /// false, which is a large part of why it underperforms).
    pub biased: bool,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            dim: 16,
            epochs: 40,
            lr: 0.01,
            reg: 0.05,
            biased: true,
        }
    }
}

/// A trained factorisation of one rating matrix.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    cfg: MfConfig,
    /// Global rating mean.
    pub global_mean: f32,
    user_factors: BTreeMap<UserId, Vec<f32>>,
    item_factors: BTreeMap<ItemId, Vec<f32>>,
    user_bias: BTreeMap<UserId, f32>,
    item_bias: BTreeMap<ItemId, f32>,
}

impl MatrixFactorization {
    /// Train on a set of interactions.
    pub fn fit(interactions: &[&Interaction], cfg: MfConfig, rng: &mut Rng) -> Self {
        assert!(!interactions.is_empty(), "MF needs at least one rating");
        let global_mean = interactions
            .iter()
            .map(|it| it.rating.value())
            .sum::<f32>()
            / interactions.len() as f32;
        let mut mf = MatrixFactorization {
            cfg,
            global_mean: if cfg.biased { global_mean } else { 0.0 },
            user_factors: BTreeMap::new(),
            item_factors: BTreeMap::new(),
            user_bias: BTreeMap::new(),
            item_bias: BTreeMap::new(),
        };
        for it in interactions {
            mf.ensure_user(it.user, rng);
            mf.ensure_item(it.item, rng);
        }
        mf.train(interactions);
        mf
    }

    fn random_factor(dim: usize, rng: &mut Rng) -> Vec<f32> {
        init::normal(&[dim], 0.1, rng).to_vec()
    }

    /// Register a user (random factor) if unseen.
    pub fn ensure_user(&mut self, user: UserId, rng: &mut Rng) {
        let dim = self.cfg.dim;
        self.user_factors
            .entry(user)
            .or_insert_with(|| Self::random_factor(dim, rng));
        self.user_bias.entry(user).or_insert(0.0);
    }

    /// Register an item (random factor) if unseen.
    pub fn ensure_item(&mut self, item: ItemId, rng: &mut Rng) {
        let dim = self.cfg.dim;
        self.item_factors
            .entry(item)
            .or_insert_with(|| Self::random_factor(dim, rng));
        self.item_bias.entry(item).or_insert(0.0);
    }

    /// Additional SGD passes over a rating set (used by CMF to alternate
    /// between domains).
    pub fn train(&mut self, interactions: &[&Interaction]) {
        let MfConfig {
            epochs, lr, reg, biased, ..
        } = self.cfg;
        for _ in 0..epochs {
            for it in interactions {
                let pred = self.raw_predict(it.user, it.item);
                let err = it.rating.value() - pred;
                let uf = self.user_factors.get_mut(&it.user).expect("registered");
                let itf = self.item_factors.get_mut(&it.item).expect("registered");
                for k in 0..uf.len() {
                    let (u, v) = (uf[k], itf[k]);
                    uf[k] += lr * (err * v - reg * u);
                    itf[k] += lr * (err * u - reg * v);
                }
                if biased {
                    let ub = self.user_bias.get_mut(&it.user).expect("registered");
                    *ub += lr * (err - reg * *ub);
                    let ib = self.item_bias.get_mut(&it.item).expect("registered");
                    *ib += lr * (err - reg * *ib);
                }
            }
        }
    }

    /// Prediction without clamping (callers clamp to the star range).
    pub fn raw_predict(&self, user: UserId, item: ItemId) -> f32 {
        let dot = match (self.user_factors.get(&user), self.item_factors.get(&item)) {
            (Some(u), Some(v)) => u.iter().zip(v).map(|(a, b)| a * b).sum::<f32>(),
            _ => 0.0,
        };
        let ub = self.user_bias.get(&user).copied().unwrap_or(0.0);
        let ib = self.item_bias.get(&item).copied().unwrap_or(0.0);
        self.global_mean + ub + ib + dot
    }

    /// Predict with a caller-supplied user factor (the mapped factor of
    /// EMCDR/PTUPCDR) in place of the stored one.
    pub fn predict_with_user_factor(&self, factor: &[f32], item: ItemId) -> f32 {
        let dot = self
            .item_factors
            .get(&item)
            .map(|v| factor.iter().zip(v).map(|(a, b)| a * b).sum::<f32>())
            .unwrap_or(0.0);
        let ib = self.item_bias.get(&item).copied().unwrap_or(0.0);
        self.global_mean + ib + dot
    }

    /// The learned factor of a user, if present.
    pub fn user_factor(&self, user: UserId) -> Option<&[f32]> {
        self.user_factors.get(&user).map(Vec::as_slice)
    }

    /// The learned factor of an item, if present.
    pub fn item_factor(&self, item: ItemId) -> Option<&[f32]> {
        self.item_factors.get(&item).map(Vec::as_slice)
    }

    /// Latent dimensionality.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Known users.
    pub fn num_users(&self) -> usize {
        self.user_factors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::types::Rating;
    use om_tensor::seeded_rng;

    fn r(stars: u8) -> Rating {
        Rating::new(stars).unwrap()
    }

    /// A tiny block-structured rating matrix: users 0–4 love items 0–4 and
    /// hate items 5–9; users 5–9 the opposite.
    fn block_world() -> Vec<Interaction> {
        let mut out = Vec::new();
        for u in 0..10u32 {
            for i in 0..10u32 {
                let love = (u < 5) == (i < 5);
                // leave a held-out cell per user
                if i % 7 == u % 7 {
                    continue;
                }
                out.push(Interaction::new(
                    UserId(u),
                    ItemId(i),
                    r(if love { 5 } else { 1 }),
                    "",
                ));
            }
        }
        out
    }

    #[test]
    fn fits_block_structure() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let mf = MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(1));
        // held-out style probes
        let love = mf.raw_predict(UserId(0), ItemId(3));
        let hate = mf.raw_predict(UserId(0), ItemId(8));
        assert!(love > 4.0, "love {love}");
        assert!(hate < 2.2, "hate {hate}");
    }

    #[test]
    fn unknown_user_falls_back_to_item_stats() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let mf = MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(1));
        let p = mf.raw_predict(UserId(999), ItemId(0));
        assert!(p > 1.0 && p < 5.0);
    }

    #[test]
    fn unbiased_mode_has_zero_mean_component() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let cfg = MfConfig {
            biased: false,
            ..MfConfig::default()
        };
        let mf = MatrixFactorization::fit(&refs, cfg, &mut seeded_rng(1));
        assert_eq!(mf.global_mean, 0.0);
        // unknown pair → 0.0, far from any valid rating: the CMF failure mode
        assert_eq!(mf.raw_predict(UserId(999), ItemId(999)), 0.0);
    }

    #[test]
    fn predict_with_external_factor() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let mf = MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(1));
        let f = mf.user_factor(UserId(0)).unwrap().to_vec();
        let a = mf.predict_with_user_factor(&f, ItemId(3));
        // close to the native prediction modulo the user bias
        let native = mf.raw_predict(UserId(0), ItemId(3));
        assert!((a - native).abs() < 1.0, "{a} vs {native}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let a = MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(9));
        let b = MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(9));
        assert_eq!(
            a.raw_predict(UserId(1), ItemId(1)),
            b.raw_predict(UserId(1), ItemId(1))
        );
    }
}
