//! Run-artifact summarizer behind `cargo obs-report`.
//!
//! Reads a run directory's `events.jsonl`, validates every line against
//! the sink schema ([`validate_events`] — the same check the schema test
//! applies), and renders a text summary: top spans by **self-time**
//! (duration minus time spent in nested spans on the same thread),
//! per-epoch loss-component curves as sparklines, histogram quantile
//! tables, counters/gauges, and per-thread busy time.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::Json;
use crate::metrics::{quantile_of, HIST_BUCKETS};
use crate::sink::SCHEMA_VERSION;

/// Counts of what a validated event stream contained.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventStats {
    /// Total JSONL lines.
    pub lines: usize,
    /// `span` records.
    pub spans: usize,
    /// `counter` + `gauge` + `hist` records.
    pub metrics: usize,
    /// `log` records.
    pub logs: usize,
    /// Caller-emitted records (everything else except the header).
    pub events: usize,
}

fn require<'a>(obj: &'a Json, key: &str, line_no: usize) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("line {line_no}: missing required field `{key}`"))
}

fn require_str(obj: &Json, key: &str, line_no: usize) -> Result<(), String> {
    require(obj, key, line_no)?
        .as_str()
        .map(|_| ())
        .ok_or_else(|| format!("line {line_no}: field `{key}` must be a string"))
}

fn require_u64(obj: &Json, key: &str, line_no: usize) -> Result<(), String> {
    require(obj, key, line_no)?
        .as_u64()
        .map(|_| ())
        .ok_or_else(|| format!("line {line_no}: field `{key}` must be a non-negative integer"))
}

fn require_num(obj: &Json, key: &str, line_no: usize) -> Result<(), String> {
    require(obj, key, line_no)?
        .as_f64()
        .map(|_| ())
        .ok_or_else(|| format!("line {line_no}: field `{key}` must be numeric"))
}

/// Validate a whole `events.jsonl` text against the sink schema: every
/// line is a JSON object carrying `kind` (string) and `t` (integer ns);
/// the first line is the `run` header; sink-reserved kinds carry their
/// required fields. Returns per-kind counts on success, the first
/// violation otherwise.
pub fn validate_events(text: &str) -> Result<EventStats, String> {
    let mut stats = EventStats::default();
    for (i, line) in text.lines().enumerate() {
        let no = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {no}: empty line in JSONL stream"));
        }
        let obj = Json::parse(line).map_err(|e| format!("line {no}: {e}"))?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(format!("line {no}: not a JSON object"));
        }
        require_str(&obj, "kind", no)?;
        require_u64(&obj, "t", no)?;
        let kind = obj.get("kind").and_then(Json::as_str).unwrap_or("");
        if i == 0 {
            if kind != "run" {
                return Err("line 1: stream must start with the `run` header".to_string());
            }
        } else if kind == "run" {
            return Err(format!("line {no}: duplicate `run` header"));
        }
        stats.lines += 1;
        match kind {
            "run" => {
                require_str(&obj, "name", no)?;
                let schema = require(&obj, "schema", no)?
                    .as_u64()
                    .ok_or_else(|| format!("line {no}: `schema` must be an integer"))?;
                if schema != SCHEMA_VERSION {
                    return Err(format!(
                        "line {no}: schema {schema} unsupported (expected {SCHEMA_VERSION})"
                    ));
                }
            }
            "span" => {
                require_str(&obj, "name", no)?;
                require_u64(&obj, "dur_ns", no)?;
                require_u64(&obj, "tid", no)?;
                stats.spans += 1;
            }
            "thread_busy" => {
                require_u64(&obj, "tid", no)?;
                require_u64(&obj, "busy_ns", no)?;
                stats.events += 1;
            }
            "counter" => {
                require_str(&obj, "name", no)?;
                require_u64(&obj, "value", no)?;
                stats.metrics += 1;
            }
            "gauge" => {
                require_str(&obj, "name", no)?;
                require_num(&obj, "value", no)?;
                stats.metrics += 1;
            }
            "hist" => {
                require_str(&obj, "name", no)?;
                require_u64(&obj, "count", no)?;
                require_u64(&obj, "sum", no)?;
                let buckets = require(&obj, "buckets", no)?
                    .as_arr()
                    .ok_or_else(|| format!("line {no}: `buckets` must be an array"))?;
                for b in buckets {
                    let pair = b.as_arr().unwrap_or(&[]);
                    let ok = pair.len() == 2
                        && pair[0].as_u64().is_some_and(|i| (i as usize) < HIST_BUCKETS)
                        && pair[1].as_u64().is_some();
                    if !ok {
                        return Err(format!(
                            "line {no}: histogram buckets must be [index,count] pairs"
                        ));
                    }
                }
                stats.metrics += 1;
            }
            "log" => {
                require_str(&obj, "level", no)?;
                require_str(&obj, "msg", no)?;
                stats.logs += 1;
            }
            _ => stats.events += 1,
        }
    }
    if stats.lines == 0 {
        return Err("empty event stream".to_string());
    }
    Ok(stats)
}

#[derive(Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct ParsedSpan {
    name: String,
    t0: u64,
    dur: u64,
}

/// Aggregate spans by name with self-time: per thread, sort by start
/// (ties: longer first, so enclosing spans precede their children) and
/// attribute each span's duration to itself minus its direct children.
fn aggregate_spans(by_tid: BTreeMap<u64, Vec<ParsedSpan>>) -> BTreeMap<String, SpanAgg> {
    let mut agg: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for (_tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.t0.cmp(&b.t0).then(b.dur.cmp(&a.dur)));
        // Stack of (end_ns, child_ns_so_far, index into `order`).
        let mut stack: Vec<(u64, u64, usize)> = Vec::new();
        let mut order: Vec<(String, u64, u64)> = Vec::new(); // (name, dur, child)
        for s in spans {
            let end = s.t0.saturating_add(s.dur);
            while let Some(&(top_end, child, idx)) = stack.last() {
                if top_end <= s.t0 {
                    order[idx].2 = child;
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last_mut() {
                top.1 += s.dur; // direct child time of the enclosing span
            }
            order.push((s.name, s.dur, 0));
            stack.push((end, 0, order.len() - 1));
        }
        while let Some((_, child, idx)) = stack.pop() {
            order[idx].2 = child;
        }
        for (name, dur, child) in order {
            let e = agg.entry(name).or_default();
            e.count += 1;
            e.total_ns += dur;
            e.self_ns += dur.saturating_sub(child);
        }
    }
    agg
}

/// Human duration: ns scaled to the first unit with < 4 integer digits.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Unicode sparkline of a series (min..max normalised to 8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return "?".repeat(values.len());
    }
    let range = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            let idx = (((v - lo) / range) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

/// Summarize the run artifact in `dir` (must contain `events.jsonl`).
/// Validates the stream first, so a malformed artifact is an `Err`, not a
/// garbled report.
pub fn summarize(dir: &Path) -> Result<String, String> {
    let events_path = dir.join("events.jsonl");
    let text = std::fs::read_to_string(&events_path)
        .map_err(|e| format!("cannot read {}: {e}", events_path.display()))?;
    let stats = validate_events(&text)?;

    let mut run_name = String::from("?");
    let mut by_tid: BTreeMap<u64, Vec<ParsedSpan>> = BTreeMap::new();
    let mut epochs: Vec<(u64, BTreeMap<String, f64>)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, f64)> = Vec::new();
    let mut hists: Vec<(String, u64, u64, Vec<u64>)> = Vec::new();
    let mut busy: Vec<(u64, String, u64)> = Vec::new();
    let mut faults: Vec<(u64, String, u64)> = Vec::new();
    let mut t_max = 0u64;

    for line in text.lines() {
        let obj = Json::parse(line).expect("validated above");
        let kind = obj.get("kind").and_then(Json::as_str).unwrap_or("");
        let t = obj.get("t").and_then(Json::as_u64).unwrap_or(0);
        t_max = t_max.max(t);
        match kind {
            "run" => {
                run_name = obj.get("name").and_then(Json::as_str).unwrap_or("?").to_string();
            }
            "span" => {
                let tid = obj.get("tid").and_then(Json::as_u64).unwrap_or(0);
                by_tid.entry(tid).or_default().push(ParsedSpan {
                    name: obj.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                    t0: t,
                    dur: obj.get("dur_ns").and_then(Json::as_u64).unwrap_or(0),
                });
                t_max = t_max.max(t + obj.get("dur_ns").and_then(Json::as_u64).unwrap_or(0));
            }
            "epoch" => {
                let mut fields = BTreeMap::new();
                if let Json::Obj(map) = &obj {
                    for (k, v) in map {
                        if let Some(n) = v.as_f64() {
                            fields.insert(k.clone(), n);
                        }
                    }
                }
                epochs.push((t, fields));
            }
            "counter" => counters.push((
                obj.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                obj.get("value").and_then(Json::as_u64).unwrap_or(0),
            )),
            "gauge" => gauges.push((
                obj.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                obj.get("value").and_then(Json::as_f64).unwrap_or(0.0),
            )),
            "hist" => {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                for pair in obj.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                    let pair = pair.as_arr().unwrap_or(&[]);
                    if let (Some(i), Some(c)) = (pair[0].as_u64(), pair[1].as_u64()) {
                        buckets[i as usize] = c;
                    }
                }
                hists.push((
                    obj.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                    obj.get("count").and_then(Json::as_u64).unwrap_or(0),
                    obj.get("sum").and_then(Json::as_u64).unwrap_or(0),
                    buckets,
                ));
            }
            "fault" => faults.push((
                t,
                obj.get("site").and_then(Json::as_str).unwrap_or("?").to_string(),
                obj.get("nth").and_then(Json::as_u64).unwrap_or(0),
            )),
            "thread_busy" => busy.push((
                obj.get("tid").and_then(Json::as_u64).unwrap_or(0),
                obj.get("thread").and_then(Json::as_str).unwrap_or("?").to_string(),
                obj.get("busy_ns").and_then(Json::as_u64).unwrap_or(0),
            )),
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "== obs-report: run `{run_name}` ==\n{} lines: {} spans, {} metrics, {} logs, {} events\n",
        stats.lines, stats.spans, stats.metrics, stats.logs, stats.events
    ));

    // ---- top spans by self-time ----
    let agg = aggregate_spans(by_tid);
    let mut ranked: Vec<(&String, &SpanAgg)> = agg.iter().collect();
    ranked.sort_by_key(|(_, a)| std::cmp::Reverse(a.self_ns));
    if !ranked.is_empty() {
        out.push_str("\n-- top spans by self-time --\n");
        let w = ranked
            .iter()
            .take(10)
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<w$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
            "span", "count", "self", "total", "mean"
        ));
        for (name, a) in ranked.iter().take(10) {
            out.push_str(&format!(
                "{name:<w$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
                a.count,
                fmt_ns(a.self_ns),
                fmt_ns(a.total_ns),
                fmt_ns(a.total_ns / a.count.max(1)),
            ));
        }
    }

    // ---- loss curves ----
    epochs.sort_by_key(|(t, _)| *t);
    if !epochs.is_empty() {
        out.push_str(&format!("\n-- loss curves ({} epochs) --\n", epochs.len()));
        for key in ["total", "rating", "scl", "domain", "valid_rmse", "grad_norm", "update_norm"] {
            let series: Vec<f64> = epochs
                .iter()
                .filter_map(|(_, f)| f.get(key).copied())
                .collect();
            if series.is_empty() {
                continue;
            }
            let first = series.first().copied().unwrap_or(0.0);
            let last = series.last().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "{key:<12} {}  {first:.4} → {last:.4}\n",
                sparkline(&series)
            ));
        }
    }

    // ---- histograms ----
    if !hists.is_empty() {
        out.push_str("\n-- histograms (quantile estimates) --\n");
        let w = hists.iter().map(|(n, ..)| n.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "{:<w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "name", "count", "mean", "p50", "p95", "p99"
        ));
        for (name, count, sum, buckets) in &hists {
            // Histograms record dimensionless u64 samples; only render a
            // time unit when the name says so.
            let is_ns = name.ends_with("_ns") || name.ends_with("latency");
            let fmt = |v: u64| if is_ns { fmt_ns(v) } else { v.to_string() };
            let q = |q: f64| quantile_of(buckets, q).map(fmt).unwrap_or_default();
            out.push_str(&format!(
                "{name:<w$}  {count:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                fmt(sum / count.max(&1)),
                q(0.5),
                q(0.95),
                q(0.99),
            ));
        }
    }

    // ---- serving stage attribution ----
    // When the front-end's end-to-end histogram is in the stream, break
    // the request lifecycle down by stage. `share` is total stage ns over
    // total e2e ns — a rough attribution: queue/batch-wait/e2e are
    // per-request series while score/merge are per-flush, so shares need
    // not sum to 100.
    let find_hist = |name: &str| hists.iter().find(|(n, ..)| n == name);
    if let Some((_, e2e_count, e2e_sum, _)) = find_hist("serve.e2e") {
        if *e2e_count > 0 && *e2e_sum > 0 {
            out.push_str("\n-- serving stage attribution --\n");
            out.push_str(&format!(
                "{:<18}  {:>10}  {:>10}  {:>10}  {:>10}  {:>7}\n",
                "stage", "count", "mean", "p50", "p99", "share"
            ));
            for stage in [
                "serve.queue_wait",
                "serve.batch_wait",
                "serve.score",
                "serve.merge",
                "serve.e2e",
            ] {
                let Some((name, count, sum, buckets)) = find_hist(stage) else {
                    continue;
                };
                if *count == 0 {
                    continue;
                }
                let q = |q: f64| quantile_of(buckets, q).map(fmt_ns).unwrap_or_default();
                out.push_str(&format!(
                    "{name:<18}  {count:>10}  {:>10}  {:>10}  {:>10}  {:>6.1}%\n",
                    fmt_ns(sum / count),
                    q(0.5),
                    q(0.99),
                    100.0 * *sum as f64 / *e2e_sum as f64,
                ));
            }
        }
    }

    // ---- counters & gauges ----
    if !counters.is_empty() || !gauges.is_empty() {
        out.push_str("\n-- counters & gauges --\n");
        for (name, v) in &counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, v) in &gauges {
            out.push_str(&format!("{name} = {v:.6}\n"));
        }
    }

    // ---- injected faults ----
    if !faults.is_empty() {
        out.push_str("\n-- injected faults --\n");
        for (t, site, nth) in &faults {
            out.push_str(&format!(
                "killed at `{site}` (hit {nth}) after {}\n",
                fmt_ns(*t)
            ));
        }
    }

    // ---- per-thread busy time ----
    if !busy.is_empty() {
        out.push_str(&format!(
            "\n-- worker busy time (run span {}) --\n",
            fmt_ns(t_max)
        ));
        busy.sort_by_key(|(tid, ..)| *tid);
        for (tid, label, ns) in &busy {
            let pct = if t_max > 0 {
                100.0 * *ns as f64 / t_max as f64
            } else {
                0.0
            };
            out.push_str(&format!("tid {tid} ({label}): {} busy ({pct:.1}%)\n", fmt_ns(*ns)));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_a_minimal_stream() {
        let text = concat!(
            "{\"kind\":\"run\",\"t\":0,\"name\":\"x\",\"schema\":1}\n",
            "{\"kind\":\"span\",\"t\":10,\"name\":\"a\",\"dur_ns\":5,\"tid\":0}\n",
            "{\"kind\":\"epoch\",\"t\":20,\"total\":1.5}\n",
        );
        let s = validate_events(text).unwrap();
        assert_eq!(s.lines, 3);
        assert_eq!(s.spans, 1);
        assert_eq!(s.events, 1);
    }

    #[test]
    fn validate_rejects_missing_header_and_fields() {
        assert!(validate_events("{\"kind\":\"span\",\"t\":0}\n").is_err());
        let no_dur = concat!(
            "{\"kind\":\"run\",\"t\":0,\"name\":\"x\",\"schema\":1}\n",
            "{\"kind\":\"span\",\"t\":10,\"name\":\"a\",\"tid\":0}\n",
        );
        let err = validate_events(no_dur).unwrap_err();
        assert!(err.contains("dur_ns"), "{err}");
        let bad_schema = "{\"kind\":\"run\",\"t\":0,\"name\":\"x\",\"schema\":99}\n";
        assert!(validate_events(bad_schema).unwrap_err().contains("schema"));
        assert!(validate_events("not json\n").is_err());
        assert!(validate_events("").is_err());
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        let mut by_tid = BTreeMap::new();
        by_tid.insert(
            0u64,
            vec![
                ParsedSpan { name: "outer".into(), t0: 0, dur: 100 },
                ParsedSpan { name: "inner".into(), t0: 10, dur: 30 },
                ParsedSpan { name: "inner".into(), t0: 50, dur: 20 },
            ],
        );
        let agg = aggregate_spans(by_tid);
        assert_eq!(agg["outer"].self_ns, 50, "100 - 30 - 20");
        assert_eq!(agg["outer"].total_ns, 100);
        assert_eq!(agg["inner"].count, 2);
        assert_eq!(agg["inner"].self_ns, 50);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let mut by_tid = BTreeMap::new();
        by_tid.insert(
            0u64,
            vec![
                ParsedSpan { name: "a".into(), t0: 0, dur: 10 },
                ParsedSpan { name: "b".into(), t0: 10, dur: 10 },
            ],
        );
        let agg = aggregate_spans(by_tid);
        assert_eq!(agg["a"].self_ns, 10);
        assert_eq!(agg["b"].self_ns, 10);
    }

    #[test]
    fn summarize_renders_injected_faults() {
        let dir = std::env::temp_dir().join(format!("om-obs-report-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text = concat!(
            "{\"kind\":\"run\",\"t\":0,\"name\":\"chaos\",\"schema\":1}\n",
            "{\"kind\":\"fault\",\"t\":1500,\"site\":\"ckpt-save\",\"nth\":2}\n",
        );
        std::fs::write(dir.join("events.jsonl"), text).unwrap();
        let report = summarize(&dir).unwrap();
        assert!(report.contains("injected faults"), "{report}");
        assert!(report.contains("ckpt-save"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summarize_renders_stage_attribution() {
        let dir = std::env::temp_dir().join(format!("om-obs-report-stages-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text = concat!(
            "{\"kind\":\"run\",\"t\":0,\"name\":\"serve\",\"schema\":1}\n",
            "{\"kind\":\"hist\",\"t\":10,\"name\":\"serve.e2e\",\"count\":2,\"sum\":2000,\
             \"buckets\":[[10,2]]}\n",
            "{\"kind\":\"hist\",\"t\":10,\"name\":\"serve.queue_wait\",\"count\":2,\"sum\":500,\
             \"buckets\":[[8,2]]}\n",
        );
        std::fs::write(dir.join("events.jsonl"), text).unwrap();
        let report = summarize(&dir).unwrap();
        assert!(report.contains("serving stage attribution"), "{report}");
        assert!(report.contains("serve.queue_wait"), "{report}");
        assert!(report.contains("25.0%"), "{report}");
        // Without the e2e series there is no attribution to render.
        let no_e2e = concat!(
            "{\"kind\":\"run\",\"t\":0,\"name\":\"serve\",\"schema\":1}\n",
            "{\"kind\":\"hist\",\"t\":10,\"name\":\"serve.queue_wait\",\"count\":2,\"sum\":500,\
             \"buckets\":[[8,2]]}\n",
        );
        std::fs::write(dir.join("events.jsonl"), no_e2e).unwrap();
        let report = summarize(&dir).unwrap();
        assert!(!report.contains("serving stage attribution"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sparkline_spans_the_range() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
