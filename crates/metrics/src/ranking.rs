//! Ranking metrics (HR@K, NDCG@K, MRR) — an extension beyond the paper's
//! RMSE/MAE protocol, for top-K recommendation evaluation of the same
//! models. Each user contributes one ranked candidate list with
//! relevance labels.

/// One user's ranked evaluation list: `(predicted_score, relevant)`
/// pairs. The list is sorted by the caller's model score, descending.
#[derive(Debug, Clone)]
pub struct RankedList {
    items: Vec<(f32, bool)>,
}

impl RankedList {
    /// Build from `(score, relevant)` pairs; orders by score descending
    /// (ties keep insertion order, as a stable sort would). NaN scores —
    /// a diverged model — rank last instead of panicking. Routed through
    /// [`crate::topk`], the same selection code path the serving engine
    /// uses.
    pub fn new(items: Vec<(f32, bool)>) -> RankedList {
        let scores: Vec<f32> = items.iter().map(|&(s, _)| s).collect();
        let items = crate::topk::rank_desc_indices(&scores)
            .into_iter()
            .map(|i| items[i])
            .collect();
        RankedList { items }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Hit ratio at cut-off `k`: 1 if any relevant item ranks in the top k.
    pub fn hit_at(&self, k: usize) -> f32 {
        if self.items.iter().take(k).any(|&(_, rel)| rel) {
            1.0
        } else {
            0.0
        }
    }

    /// Normalised discounted cumulative gain at cut-off `k` (binary
    /// relevance). 0 when the list has no relevant item at all.
    pub fn ndcg_at(&self, k: usize) -> f32 {
        let dcg: f32 = self
            .items
            .iter()
            .take(k)
            .enumerate()
            .filter(|(_, &(_, rel))| rel)
            .map(|(i, _)| 1.0 / ((i + 2) as f32).log2())
            .sum();
        let n_rel = self.items.iter().filter(|&&(_, rel)| rel).count();
        if n_rel == 0 {
            return 0.0;
        }
        let idcg: f32 = (0..n_rel.min(k))
            .map(|i| 1.0 / ((i + 2) as f32).log2())
            .sum();
        dcg / idcg
    }

    /// Reciprocal rank of the first relevant item (0 when none).
    pub fn reciprocal_rank(&self) -> f32 {
        self.items
            .iter()
            .position(|&(_, rel)| rel)
            .map(|i| 1.0 / (i + 1) as f32)
            .unwrap_or(0.0)
    }
}

/// Mean HR@K over users.
pub fn hit_rate_at_k(lists: &[RankedList], k: usize) -> f32 {
    assert!(!lists.is_empty(), "hit_rate_at_k: no users");
    lists.iter().map(|l| l.hit_at(k)).sum::<f32>() / lists.len() as f32
}

/// Mean NDCG@K over users.
pub fn ndcg_at_k(lists: &[RankedList], k: usize) -> f32 {
    assert!(!lists.is_empty(), "ndcg_at_k: no users");
    lists.iter().map(|l| l.ndcg_at(k)).sum::<f32>() / lists.len() as f32
}

/// Mean reciprocal rank over users.
pub fn mrr(lists: &[RankedList]) -> f32 {
    assert!(!lists.is_empty(), "mrr: no users");
    lists.iter().map(RankedList::reciprocal_rank).sum::<f32>() / lists.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(scores: &[(f32, bool)]) -> RankedList {
        RankedList::new(scores.to_vec())
    }

    #[test]
    fn sorting_is_descending() {
        let l = list(&[(0.1, true), (0.9, false), (0.5, false)]);
        assert_eq!(l.hit_at(1), 0.0); // the relevant item sank to rank 3
        assert_eq!(l.hit_at(3), 1.0);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn perfect_ranking_has_unit_ndcg() {
        let l = list(&[(0.9, true), (0.8, true), (0.1, false)]);
        assert!((l.ndcg_at(3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn worst_ranking_has_lower_ndcg() {
        let good = list(&[(0.9, true), (0.1, false), (0.0, false)]);
        let bad = list(&[(0.9, false), (0.1, false), (0.0, true)]);
        assert!(good.ndcg_at(3) > bad.ndcg_at(3));
        assert!(bad.ndcg_at(3) > 0.0);
    }

    #[test]
    fn ndcg_no_relevant_is_zero() {
        let l = list(&[(0.9, false), (0.1, false)]);
        assert_eq!(l.ndcg_at(2), 0.0);
    }

    #[test]
    fn reciprocal_rank_reference() {
        let l = list(&[(0.9, false), (0.8, true), (0.1, false)]);
        assert!((l.reciprocal_rank() - 0.5).abs() < 1e-6);
        let none = list(&[(0.9, false)]);
        assert_eq!(none.reciprocal_rank(), 0.0);
    }

    #[test]
    fn aggregates_average_over_users() {
        let a = list(&[(0.9, true)]);
        let b = list(&[(0.9, false), (0.8, true)]);
        let lists = vec![a, b];
        assert!((hit_rate_at_k(&lists, 1) - 0.5).abs() < 1e-6);
        assert!((mrr(&lists) - 0.75).abs() < 1e-6);
        assert!(ndcg_at_k(&lists, 2) > 0.5);
    }

    #[test]
    fn hit_beyond_list_length_is_safe() {
        let l = list(&[(0.9, true)]);
        assert_eq!(l.hit_at(10), 1.0);
    }

    #[test]
    fn topk_path_matches_the_old_stable_full_sort_bitwise() {
        // RankedList now routes through crate::topk; its order must stay
        // exactly what the previous direct stable sort produced.
        let raw: Vec<(f32, bool)> = (0..3000)
            .map(|i| {
                let s = if i % 91 == 0 {
                    f32::NAN
                } else {
                    ((i * 37) % 101) as f32 * 0.5 - 20.0
                };
                (s, i % 13 == 0)
            })
            .collect();
        let mut sorted = raw.clone();
        sorted.sort_by(|a, b| crate::cmp_nan_last_desc(a.0, b.0));
        let via_topk = RankedList::new(raw);
        for (a, b) in via_topk.items.iter().zip(&sorted) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // Relevant item has a NaN score → it must sink to the bottom.
        let l = list(&[(f32::NAN, true), (0.2, false), (0.1, false)]);
        assert_eq!(l.hit_at(2), 0.0, "NaN-scored item must not be in top 2");
        assert_eq!(l.hit_at(3), 1.0);
        assert!((l.reciprocal_rank() - 1.0 / 3.0).abs() < 1e-6);
        // All-NaN list: stable sort keeps insertion order, nothing panics.
        let all = list(&[(f32::NAN, false), (f32::NAN, true)]);
        assert_eq!(all.hit_at(1), 0.0);
        assert_eq!(all.hit_at(2), 1.0);
    }
}
