//! Resume determinism: a training run interrupted at an epoch boundary and
//! resumed from its on-disk checkpoint must be **bitwise identical** to an
//! uninterrupted run with the same seed — same `EpochStats`, validation
//! RMSE trajectory, best epoch, predictions, and final parameter bytes.
//! An interruption is simulated as a run with a smaller epoch budget
//! writing checkpoints into the same directory (the checkpoint digest
//! deliberately excludes the epoch budget, so the longer run adopts the
//! shorter run's state). The chaos test (`crates/experiments/tests/`)
//! covers the literal kill-mid-save path via `OM_FAULT`.

use std::path::PathBuf;

use om_data::split::CrossDomainScenario;
use om_data::types::{ItemId, UserId};
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_nn::HasParams;
use omnimatch_core::{CkptConfig, OmniMatchConfig, Trainer};

fn scenario() -> CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

/// Everything a run observably produces, bit-exact — including the final
/// parameter bytes (wall-clock `train_seconds` is the one excluded field).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    epoch_stats: Vec<[u32; 4]>,
    valid_rmse: Vec<u32>,
    best_epoch: usize,
    predictions: Vec<u32>,
    param_bytes: Vec<u8>,
}

fn run(sc: &CrossDomainScenario, epochs: usize, ckpt: Option<CkptConfig>) -> Fingerprint {
    let cfg = OmniMatchConfig {
        epochs,
        ..OmniMatchConfig::fast().with_seed(77)
    };
    let mut trainer = Trainer::new(cfg);
    if let Some(ck) = ckpt {
        trainer = trainer.with_ckpt(ck);
    }
    let trained = trainer.fit(sc);
    let report = trained.report();
    let pairs: Vec<(UserId, ItemId)> = sc
        .test_pairs()
        .iter()
        .take(8)
        .map(|it| (it.user, it.item))
        .collect();
    Fingerprint {
        epoch_stats: report
            .epochs
            .iter()
            .map(|e| {
                [
                    e.total.to_bits(),
                    e.rating.to_bits(),
                    e.scl.to_bits(),
                    e.domain.to_bits(),
                ]
            })
            .collect(),
        valid_rmse: report.valid_rmse.iter().map(|r| r.to_bits()).collect(),
        best_epoch: report.best_epoch,
        predictions: trained.predict(&pairs).iter().map(|p| p.to_bits()).collect(),
        param_bytes: om_nn::serialize::save_params(&trained.model().params()).to_vec(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("om-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn resumed_run_is_bitwise_identical_to_uninterrupted() {
    let sc = scenario();
    let clean = run(&sc, 3, None);
    assert_eq!(clean.epoch_stats.len(), 3);

    for interrupt_after in [1usize, 2] {
        let dir = tmp_dir(&format!("at{interrupt_after}"));
        // "Interrupted" run: stops after `interrupt_after` epochs, leaving
        // checkpoints behind.
        let partial = run(&sc, interrupt_after, Some(CkptConfig::at(&dir)));
        assert_eq!(partial.epoch_stats.len(), interrupt_after);
        assert!(
            dir.join(format!("ep-{:04}.omck", interrupt_after - 1)).is_file(),
            "checkpoint must exist on disk"
        );
        // Prefix property: the partial run *is* the clean run, truncated.
        assert_eq!(
            partial.epoch_stats[..],
            clean.epoch_stats[..interrupt_after],
            "interrupted prefix diverged from the clean run"
        );

        // Resumed run: same directory, full epoch budget.
        let resumed = run(&sc, 3, Some(CkptConfig::at(&dir)));
        assert_eq!(
            resumed, clean,
            "run resumed after epoch {interrupt_after} diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_with_sparse_cadence_checkpoints() {
    let sc = scenario();
    let clean = run(&sc, 3, None);
    let dir = tmp_dir("cadence");
    // Cadence 2 over 2 epochs: only epoch 1 (the 2nd) is checkpointed.
    let _partial = run(&sc, 2, Some(CkptConfig::at(&dir).every(2)));
    assert!(!dir.join("ep-0000.omck").exists(), "cadence 2 skips epoch 0");
    assert!(dir.join("ep-0001.omck").is_file(), "final epoch always saves");
    let resumed = run(&sc, 3, Some(CkptConfig::at(&dir).every(2)));
    assert_eq!(resumed, clean, "sparse-cadence resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn finished_checkpoint_resumes_to_a_noop() {
    let sc = scenario();
    let dir = tmp_dir("noop");
    let full = run(&sc, 3, Some(CkptConfig::at(&dir)));
    // Same budget again: everything restores, zero epochs run, identical
    // observable results.
    let again = run(&sc, 3, Some(CkptConfig::at(&dir)));
    assert_eq!(again, full, "no-op resume changed results");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_directory_falls_back_to_fresh_training() {
    let sc = scenario();
    let clean = run(&sc, 2, None);
    let dir = tmp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    // Garbage that matches the checkpoint naming scheme, plus a stray tmp.
    std::fs::write(dir.join("ep-0000.omck"), b"OMCKgarbage").unwrap();
    std::fs::write(dir.join("ep-0001.omck.tmp"), b"torn write").unwrap();
    let trained = run(&sc, 2, Some(CkptConfig::at(&dir)));
    assert_eq!(
        trained, clean,
        "unusable checkpoints must yield a bitwise-fresh run"
    );
    assert!(
        !dir.join("ep-0001.omck.tmp").exists(),
        "stray tmp files are cleaned during the resume scan"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
