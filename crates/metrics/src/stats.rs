//! Significance testing for trial comparisons: a paired t statistic and a
//! conservative significance call, used to decide whether "Ours beats
//! baseline X" survives trial noise (the margins in Tables 2–3 are often
//! within one standard deviation at small trial counts).

/// Result of a paired comparison between two methods across trials.
#[derive(Debug, Clone, Copy)]
pub struct PairedComparison {
    /// Mean of (a − b) over trials; negative means `a` has lower error.
    pub mean_diff: f32,
    /// Sample standard deviation of the differences.
    pub std_diff: f32,
    /// The paired t statistic (0 when the std is 0 and means are equal).
    pub t: f32,
    /// Number of paired trials.
    pub n: usize,
}

impl PairedComparison {
    /// Conservative significance call at roughly α = 0.05 using fixed
    /// two-sided critical values of the t distribution for small n
    /// (n−1 degrees of freedom; n ≤ 30 supported, larger n uses 1.96).
    pub fn significant(&self) -> bool {
        if self.n < 2 {
            return false;
        }
        let crit = t_critical(self.n - 1);
        self.t.abs() > crit
    }
}

/// Two-sided 5 % critical values of Student's t for df = 1..30.
fn t_critical(df: usize) -> f32 {
    const TABLE: [f32; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f32::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Paired comparison of per-trial metric values (`a[i]` and `b[i]` come
/// from the same split/model seed).
pub fn paired_t(a: &[f32], b: &[f32]) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired_t: unequal trial counts");
    assert!(!a.is_empty(), "paired_t: no trials");
    let n = a.len();
    let diffs: Vec<f32> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f32>() / n as f32;
    let var = if n > 1 {
        diffs.iter().map(|d| (d - mean).powi(2)).sum::<f32>() / (n - 1) as f32
    } else {
        0.0
    };
    let std = var.sqrt();
    let se = std / (n as f32).sqrt();
    let t = if se > 0.0 {
        mean / se
    } else if mean == 0.0 {
        0.0
    } else {
        f32::INFINITY * mean.signum()
    };
    PairedComparison {
        mean_diff: mean,
        std_diff: std,
        t,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a = [0.90, 0.91, 0.89, 0.90, 0.92];
        let b = [1.10, 1.12, 1.09, 1.11, 1.10];
        let c = paired_t(&a, &b);
        assert!(c.mean_diff < -0.15);
        assert!(c.significant(), "{c:?}");
    }

    #[test]
    fn noise_is_not_significant() {
        let a = [0.90, 1.02, 0.95, 1.01];
        let b = [0.92, 0.99, 0.97, 1.00];
        let c = paired_t(&a, &b);
        assert!(!c.significant(), "{c:?}");
    }

    #[test]
    fn identical_series_is_zero_t() {
        let a = [1.0, 2.0, 3.0];
        let c = paired_t(&a, &a);
        assert_eq!(c.t, 0.0);
        assert!(!c.significant());
    }

    #[test]
    fn single_trial_never_significant() {
        let c = paired_t(&[0.5], &[1.5]);
        assert!(!c.significant());
    }

    #[test]
    fn constant_nonzero_difference_is_significant() {
        // zero variance, nonzero mean → infinite t
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        let c = paired_t(&a, &b);
        assert!(c.t.is_infinite() && c.t < 0.0);
        assert!(c.significant());
    }

    #[test]
    fn critical_values_decrease_with_df() {
        assert!(t_critical(1) > t_critical(5));
        assert!(t_critical(5) > t_critical(30));
        assert!((t_critical(100) - 1.96).abs() < 1e-6);
    }
}
