//! Binary checkpointing of parameter sets.
//!
//! Format (little-endian, via `bytes`):
//!
//! ```text
//! magic "OMCK" | u32 version | u32 tensor count |
//!   per tensor: u32 ndim | u64 dims[ndim] | f32 data[numel]
//! ```
//!
//! Loading restores *values into* an existing parameter list (shapes must
//! match), which keeps optimizer state and graph wiring intact.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use om_tensor::Tensor;

const MAGIC: &[u8; 4] = b"OMCK";
const VERSION: u32 = 1;

/// Errors raised while decoding a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer does not start with the `OMCK` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared payload.
    Truncated,
    /// Checkpoint tensor count differs from the target parameter list.
    CountMismatch { expected: usize, found: usize },
    /// A tensor's shape differs from the corresponding parameter.
    ShapeMismatch { index: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an OMCK checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} tensors, found {found}")
            }
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "shape mismatch at tensor {index}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialise a parameter list to bytes.
pub fn save_params(params: &[Tensor]) -> Bytes {
    let payload: usize = params
        .iter()
        .map(|p| 4 + 8 * p.dims().len() + 4 * p.numel())
        .sum();
    let mut buf = BytesMut::with_capacity(12 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        buf.put_u32_le(p.dims().len() as u32);
        for &d in p.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in p.data().iter() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restore values into `params` from a checkpoint produced by
/// [`save_params`]. Order and shapes must match.
pub fn load_params(params: &[Tensor], bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    for (index, p) in params.iter().enumerate() {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let ndim = buf.get_u32_le() as usize;
        if buf.remaining() < 8 * ndim {
            return Err(CheckpointError::Truncated);
        }
        let dims: Vec<usize> = (0..ndim).map(|_| buf.get_u64_le() as usize).collect();
        if dims != p.dims() {
            return Err(CheckpointError::ShapeMismatch { index });
        }
        let numel: usize = dims.iter().product();
        if buf.remaining() < 4 * numel {
            return Err(CheckpointError::Truncated);
        }
        let mut data = p.data_mut();
        for v in data.iter_mut() {
            *v = buf.get_f32_le();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::{init, seeded_rng};

    fn sample_params() -> Vec<Tensor> {
        let mut rng = seeded_rng(11);
        vec![
            init::normal(&[3, 4], 1.0, &mut rng).requires_grad(),
            init::normal(&[4], 1.0, &mut rng).requires_grad(),
        ]
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = sample_params();
        let bytes = save_params(&src);
        let dst = vec![
            Tensor::zeros(&[3, 4]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        load_params(&dst, &bytes).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let dst = sample_params();
        assert_eq!(
            load_params(&dst, b"NOPE________"),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let src = sample_params();
        let bytes = save_params(&src[..1]);
        let err = load_params(&src, &bytes).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::CountMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_params();
        let bytes = save_params(&src);
        let dst = vec![
            Tensor::zeros(&[4, 3]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        assert_eq!(
            load_params(&dst, &bytes),
            Err(CheckpointError::ShapeMismatch { index: 0 })
        );
    }

    #[test]
    fn rejects_truncation() {
        let src = sample_params();
        let bytes = save_params(&src);
        let cut = &bytes[..bytes.len() - 5];
        assert_eq!(load_params(&src, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn empty_param_list_roundtrips() {
        let bytes = save_params(&[]);
        load_params(&[], &bytes).unwrap();
    }
}
