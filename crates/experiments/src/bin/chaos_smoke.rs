//! Chaos smoke target: one small, fixed-seed OmniMatch training run whose
//! final parameter bytes are written to a file for bitwise comparison.
//!
//! The binary itself is deliberately oblivious to checkpointing and fault
//! injection — both are driven entirely through the environment (`OM_CKPT*`
//! and `OM_FAULT`), exactly as a real training job would be. The chaos test
//! (`tests/chaos.rs`) and the CI `chaos-smoke` job run it three ways:
//!
//! 1. clean (no checkpointing) — the reference parameter bytes;
//! 2. `OM_FAULT=ckpt-save:2` + `OM_CKPT=1` — killed mid-checkpoint with
//!    exit code [`om_obs::fault::EXIT_CODE`], leaving a torn `.tmp` behind;
//! 3. resumed (`OM_CKPT=1`, same directory) — must finish and produce
//!    bytes **bitwise identical** to the clean run.

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_nn::HasParams;
use omnimatch_core::{OmniMatchConfig, Trainer};

fn main() {
    let out = std::env::args()
        .nth(1)
        .expect("usage: chaos_smoke <out-params-file>");
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(1234);
    let trained = Trainer::new(cfg).fit(&scenario);
    let eval = trained.evaluate(&scenario.test_pairs());
    let blob = om_nn::serialize::save_params(&trained.model().params());
    std::fs::write(&out, &blob).expect("write params blob");
    println!(
        "chaos_smoke: rmse {:.4} mae {:.4}, {} param bytes -> {out}",
        eval.rmse,
        eval.mae,
        blob.len()
    );
}
