//! Finite-difference gradient check for [`om_nn::TransformerEncoder`] —
//! the one backbone the tensor-level gradcheck suite did not cover. Every
//! parameter (positional embeddings, per-head Q/K/V, output projection,
//! feed-forward pair, both layer-norm gain/bias pairs) is validated against
//! central differences, under both the serial and the pooled runtime, the
//! same regime as `om-tensor`'s `gradcheck_ops` suite.

use std::sync::{Mutex, MutexGuard, OnceLock};

use om_nn::{HasParams, TransformerEncoder};
use om_tensor::{gradcheck, init, runtime, seeded_rng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// `runtime::set_threads` is process-global; hold this for any test that
/// flips the thread count (mirrors the tensor crate's gradcheck suite).
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn transformer_encoder_passes_gradcheck_on_every_parameter() {
    let _guard = thread_lock();
    let mut rng = seeded_rng(41);
    // Small but structurally complete: 2 heads, 1 pre-norm layer.
    let enc = TransformerEncoder::new(4, 2, 6, 1, 5, &mut rng);
    let x = init::uniform(&[2, 3, 4], -1.0, 1.0, &mut seeded_rng(42));

    for threads in [1usize, 0] {
        let prev = runtime::set_threads(threads);
        // `gradcheck` perturbs the parameter's storage in place, which the
        // encoder shares, so the closure just reruns the forward pass.
        for (i, p) in enc.params().iter().enumerate() {
            let r = gradcheck(p, |_| enc.forward(&x).square().mean_all(), EPS);
            assert!(
                r.passes(TOL),
                "transformer param #{i} failed gradcheck with set_threads({threads}): {r:?}"
            );
        }
        runtime::set_threads(prev);
    }
}

#[test]
fn transformer_gradcheck_covers_the_whole_parameter_set() {
    // Guard against the suite silently shrinking: 1 layer × 2 heads must
    // expose pos_emb + 6 head linears + wo + ff1 + ff2 + 4 layer-norm
    // tensors = 1 + 12 + 2 + 2 + 2 + 4 = 23 parameter tensors.
    let mut rng = seeded_rng(43);
    let enc = TransformerEncoder::new(4, 2, 6, 1, 5, &mut rng);
    assert_eq!(enc.params().len(), 23);
}
