//! Offline, dependency-free subset of the `bytes` crate API.
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer, [`BytesMut`] a
//! growable builder that freezes into one, and [`Buf`]/[`BufMut`] provide
//! the little-endian cursor reads/writes the checkpoint format uses.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-clonable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from a byte source, advancing a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writes into a growable sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(-1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 16);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_f32_le(), -1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn slicing_through_deref() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let frozen = b.freeze();
        assert_eq!(&frozen[..5], b"hello");
        let clone = frozen.clone();
        assert_eq!(clone.len(), 11);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
