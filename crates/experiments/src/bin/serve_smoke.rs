//! CI smoke test for the serving engine: train a tiny model, export its
//! checkpoint, reload it through `om_serve::load_model_file` (the real
//! deployment path — fresh process state, corpus views rebuilt from the
//! scenario), then assert:
//!
//! * the engine's batched scores are bitwise identical to
//!   `TrainedOmniMatch::predict` over the same user–item pairs;
//! * the sharded top-K equals a naive full-sort oracle exactly, for every
//!   scenario user (cold and warm);
//! * a microbatched replay returns the same responses as unbatched
//!   serving.
//!
//! With `--quantized`, the smoke additionally builds int8 per-row-scale
//! arenas (`ItemArena::quantized`/`UserArena::quantized`) for the same
//! checkpoint and asserts:
//!
//! * the RMSE and mean-absolute delta of the full users × items score
//!   matrix vs. the f32 engine stay under the committed
//!   `om_serve::quant::QUANT_MAX_SCORE_{RMSE,MAE}` bounds;
//! * the sharded quantized engine is bitwise identical to the unsharded
//!   quantized engine (dequantization is per-element, so sharding still
//!   cannot move a bit);
//! * a quantized arena round-trips through an `OMAB` v2 blob with
//!   bitwise-identical scores.
//!
//! Observability is force-enabled; the run's artifact directory is the
//! last stdout line (CI uploads it as a build artifact).
//!
//! Usage: `serve_smoke [--quantized] [checkpoint_path]` (default
//! `serve_smoke.omck`).

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{
    load_model_file, ItemArena, Microbatcher, Request, ServeEngine, ServeOptions, ShardedEngine,
    UserArena, Verify,
};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

fn main() {
    om_obs::set_enabled(true);
    assert!(om_obs::run_begin("serve_smoke"), "serve_smoke must own the run");
    let mut quantized = false;
    let mut ckpt_arg = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quantized" => quantized = true,
            _ => ckpt_arg = Some(arg),
        }
    }
    let ckpt_path = ckpt_arg
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("serve_smoke.omck"));

    // ---- train + export -------------------------------------------------
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(7);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    trained.write_checkpoint(&ckpt_path).expect("write checkpoint");
    om_obs::info!("serve smoke: checkpoint at {}", ckpt_path.display());

    // Reference predictions from the training-side code path.
    let users = trained.views().users().to_vec();
    let items = trained.views().items();
    let vocab_size = trained.views().vocab.len();

    // ---- reload through the serving path --------------------------------
    let model = load_model_file(&cfg, vocab_size, &ckpt_path).expect("reload checkpoint");
    let views = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    assert_eq!(views.vocab.len(), vocab_size, "rebuilt vocabulary drifted");
    let warm = scenario.train_users.clone();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    om_obs::manifest_set("serve.catalogue", (engine.catalogue_len() as u64).into());
    om_obs::manifest_set("serve.users", (users.len() as u64).into());

    // ---- engine scores == trainer predict, bitwise ----------------------
    for &u in &users {
        let scores = engine.score_user(u).expect("score user");
        let pairs: Vec<_> = items.iter().map(|&i| (u, i)).collect();
        let preds = trained.predict(&pairs);
        assert_eq!(scores.len(), preds.len());
        for (s, p) in scores.iter().zip(&preds) {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "serving score diverged from training-side predict for user {u:?}"
            );
        }
    }
    om_obs::info!("serve smoke: scores match predict bitwise over {} users", users.len());

    // ---- sharded top-K == full-sort oracle ------------------------------
    let k = engine.options().topk;
    for &u in &users {
        let oracle = engine.oracle_rank(u).expect("oracle rank");
        let resp = engine
            .serve_one(Request { id: 0, user: u, arrive_us: 0 })
            .expect("serve one");
        assert_eq!(resp.top.len(), k.min(oracle.len()));
        for ((ia, sa), (ib, sb)) in resp.top.iter().zip(&oracle) {
            assert_eq!(ia, ib, "sharded top-K diverged from the oracle for {u:?}");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
    om_obs::info!("serve smoke: sharded top-K equals the full-sort oracle");

    // ---- microbatched replay == unbatched serving -----------------------
    let opts = engine.options().clone();
    let mut batcher = Microbatcher::new(opts.batch, opts.wait_us);
    let mut batched = Vec::new();
    for (i, &u) in users.iter().enumerate() {
        let now = i as u64 * 700; // arrivals 700us apart → mixed flush causes
        if let Some(due) = batcher.poll(now) {
            batched.extend(engine.serve_batch(&due).expect("serve batch"));
        }
        let req = Request { id: i as u64, user: u, arrive_us: now };
        if let Some(full) = batcher.submit(req, now) {
            batched.extend(engine.serve_batch(&full).expect("serve batch"));
        }
    }
    if let Some(rest) = batcher.drain() {
        batched.extend(engine.serve_batch(&rest).expect("serve batch"));
    }
    assert_eq!(batched.len(), users.len());
    for (i, (&u, resp)) in users.iter().zip(&batched).enumerate() {
        let solo = engine
            .serve_one(Request { id: i as u64, user: u, arrive_us: 0 })
            .expect("serve one");
        assert_eq!(resp.user, u);
        assert_eq!(solo.top.len(), resp.top.len());
        for ((ia, sa), (ib, sb)) in resp.top.iter().zip(&solo.top) {
            assert_eq!(ia, ib);
            assert_eq!(sa.to_bits(), sb.to_bits(), "microbatched flush diverged for {u:?}");
        }
    }
    om_obs::info!("serve smoke: microbatched replay equals unbatched serving");

    // ---- quantized serving mode -----------------------------------------
    if quantized {
        let opts = ServeOptions::default();
        let qmodel = load_model_file(&cfg, vocab_size, &ckpt_path).expect("reload checkpoint");
        let qviews = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
        let item_arena = ItemArena::build(&qmodel, &qviews, opts.arena_batch);
        let user_arena = UserArena::build(&qmodel, &qviews, &warm, opts.arena_batch);
        let qitems = item_arena.quantized();
        let qusers = user_arena.quantized();
        assert!(qitems.is_quantized() && qusers.is_quantized());

        // Round-trip the quantized item arena through an OMAB v2 blob so
        // the smoke exercises the on-disk quantized path too.
        let blob_path = ckpt_path.with_extension("q8.omab");
        qitems.write_blob(&blob_path).expect("write quantized blob");
        let qitems = ItemArena::load_blob(&blob_path, Verify::Full).expect("load quantized blob");
        assert!(qitems.is_quantized(), "v2 blob must reload as a quantized arena");

        let qengine = ServeEngine::with_arenas(qmodel, qviews, qitems, qusers, opts);
        let qsharded = ShardedEngine::new(qengine);

        let mut sum_sq = 0.0f64;
        let mut sum_abs = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut count = 0usize;
        for &u in &users {
            let f32_scores = engine.score_user(u).expect("score user (f32)");
            let q_scores = qsharded.inner().score_user(u).expect("score user (quantized)");
            let q_sharded = qsharded.score_user(u).expect("score user (quantized sharded)");
            assert_eq!(f32_scores.len(), q_scores.len());
            // Sharded quantized == unsharded quantized, bit for bit.
            for (a, b) in q_scores.iter().zip(&q_sharded) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sharded quantized scoring diverged from unsharded for {u:?}"
                );
            }
            for (&f, &q) in f32_scores.iter().zip(&q_scores) {
                let d = (f as f64 - q as f64).abs();
                sum_sq += d * d;
                sum_abs += d;
                max_abs = max_abs.max(d);
                count += 1;
            }
        }
        let rmse = (sum_sq / count.max(1) as f64).sqrt();
        let mae = sum_abs / count.max(1) as f64;
        om_obs::info!(
            "serve smoke: quantized vs f32 over {count} pairs — rmse {rmse:.6}, mae {mae:.6}, max {max_abs:.6}"
        );
        om_obs::manifest_set("serve.quant.rmse", rmse.into());
        om_obs::manifest_set("serve.quant.mae", mae.into());
        assert!(
            rmse <= om_serve::quant::QUANT_MAX_SCORE_RMSE,
            "quantized score RMSE {rmse} exceeds committed bound {}",
            om_serve::quant::QUANT_MAX_SCORE_RMSE
        );
        assert!(
            mae <= om_serve::quant::QUANT_MAX_SCORE_MAE,
            "quantized score MAE {mae} exceeds committed bound {}",
            om_serve::quant::QUANT_MAX_SCORE_MAE
        );
        assert!(
            max_abs <= om_serve::quant::QUANT_MAX_SCORE_ABS,
            "quantized per-pair delta {max_abs} exceeds committed bound {}",
            om_serve::quant::QUANT_MAX_SCORE_ABS
        );
        om_obs::info!("serve smoke: quantized serving within committed error bounds");
    }
    om_obs::manifest_set("serve.smoke_ok", true.into());

    let dir = om_obs::run_finish().expect("run artifacts written");
    // Machine-readable: CI captures this line to locate the artifact.
    println!("{}", dir.display());
}
