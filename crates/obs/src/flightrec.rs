//! The crash flight recorder: a fixed-size ring of the most recent
//! per-request event records, dumped to disk when something goes wrong.
//!
//! The live stats plane ([`crate::live`]) answers "how is the server
//! doing"; the flight recorder answers "what exactly happened just before
//! it stopped doing it". The serving front-end appends one compact record
//! per noteworthy request event (served with its stage timings, rejected,
//! scorer error); the ring keeps the last [`DEFAULT_CAPACITY`] of them and
//! overwrites the oldest. Three triggers dump it:
//!
//! * a scorer error (the front-end dumps as soon as a flush fails);
//! * an injected fault firing ([`crate::fault::kill_point`] dumps before
//!   the process exits, so chaos CI gets a postmortem);
//! * shutdown with errors ([`Frontend::shutdown`] dumps when any flush
//!   failed during the run).
//!
//! Dumps land in `<out_root>/<run>/flightrec.jsonl` when an om-obs run is
//! active (next to `events.jsonl`), else under a fresh
//! `<out_root>/flightrec*/` directory — one JSON object per line,
//! parseable by [`crate::json`], oldest first, with a `reason` header
//! line. Dumping never panics and never fails the caller: filesystem
//! refusal is a WARN, not an error.
//!
//! The ring itself is a mutex-guarded fixed buffer: appends are O(1) with
//! one short uncontended lock — the recorder sits on the serving *event*
//! path (admission decisions, flush completions), not inside kernels —
//! and a poisoned lock is recovered, never propagated.
//!
//! `Frontend`s record through the process-global recorder ([`record`],
//! [`dump`]); tests construct standalone [`FlightRecorder`]s to pin
//! wraparound and concurrency behaviour without cross-test interference.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json::{escape, Json};

/// Ring capacity of the process-global recorder.
pub const DEFAULT_CAPACITY: usize = 256;

/// One flight-recorder record: which request, what happened, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// The front-end's monotone admission sequence number (0 when the
    /// event precedes admission, e.g. a queue-full rejection).
    pub seq: u64,
    /// The caller's correlation id ([`Request::id`] in om-serve).
    pub req_id: u64,
    /// The user being served.
    pub user: u64,
    /// Event kind: `served`, `rejected`, `scorer_error`, …
    pub event: &'static str,
    /// Clock reading at the event, ns since the process anchor.
    pub t_ns: u64,
    /// Per-stage timings or error detail, as `(key, value_ns)` pairs —
    /// e.g. `[("queue_wait_ns", …), ("e2e_ns", …)]` on a served record.
    pub stages: Vec<(&'static str, u64)>,
    /// Free-form detail (error text on `scorer_error`; empty otherwise).
    pub detail: String,
}

impl FlightRecord {
    /// The record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"seq\":{},\"req\":{},\"user\":{},\"event\":{},\"t\":{}",
            self.seq,
            self.req_id,
            self.user,
            escape(self.event),
            self.t_ns
        );
        for (k, v) in &self.stages {
            line.push_str(&format!(",{}:{v}", escape(k)));
        }
        if !self.detail.is_empty() {
            line.push_str(&format!(",\"detail\":{}", escape(&self.detail)));
        }
        line.push('}');
        line
    }
}

struct Ring {
    /// Dropped-oldest slots, in insertion order once rotated.
    buf: Vec<FlightRecord>,
    /// Next write position (`buf.len() < capacity` means no wrap yet).
    head: usize,
    capacity: usize,
    /// Total records ever pushed (so a dump reports how many were lost).
    pushed: u64,
}

/// A fixed-capacity ring of [`FlightRecord`]s. Cloneable handles are not
/// needed: the serving side uses the process-global instance via
/// [`record`] / [`dump`]; tests own private ones.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

fn lock_ring(m: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    // A panicking writer can only have completed or not-started its push
    // (the push is a single Vec write); the ring is always structurally
    // sound, so poison carries no information.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                capacity,
                pushed: 0,
            }),
        }
    }

    /// Append one record, overwriting the oldest at capacity.
    pub fn push(&self, rec: FlightRecord) {
        let mut ring = lock_ring(&self.ring);
        ring.pushed += 1;
        if ring.buf.len() < ring.capacity {
            ring.buf.push(rec);
        } else {
            let head = ring.head;
            if let Some(slot) = ring.buf.get_mut(head) {
                *slot = rec;
            }
            ring.head = (head + 1) % ring.capacity;
        }
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let ring = lock_ring(&self.ring);
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(ring.buf.get(ring.head..).unwrap_or(&[]));
        out.extend_from_slice(ring.buf.get(..ring.head).unwrap_or(&[]));
        out
    }

    /// Total records ever pushed (≥ `snapshot().len()`).
    pub fn pushed(&self) -> u64 {
        lock_ring(&self.ring).pushed
    }

    /// Render the retained records as JSONL: a `flightrec` header line
    /// (reason, retained/pushed counts), then one line per record,
    /// oldest first.
    pub fn to_jsonl(&self, reason: &str) -> String {
        let records = self.snapshot();
        let mut out = format!(
            "{{\"kind\":\"flightrec\",\"reason\":{},\"t\":{},\"retained\":{},\"pushed\":{}}}\n",
            escape(reason),
            crate::clock::now_ns(),
            records.len(),
            self.pushed()
        );
        for rec in &records {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL dump to `dir/flightrec.jsonl`. Returns the path on
    /// success; filesystem refusal is a WARN and `None`.
    pub fn dump_to(&self, dir: &std::path::Path, reason: &str) -> Option<PathBuf> {
        if let Err(e) = std::fs::create_dir_all(dir) {
            crate::warn!("flightrec: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join("flightrec.jsonl");
        match std::fs::write(&path, self.to_jsonl(reason)) {
            Ok(()) => {
                crate::warn!("flightrec: dumped ({reason}) to {}", path.display());
                Some(path)
            }
            Err(e) => {
                crate::warn!("flightrec: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

/// Append one record to the process-global recorder.
pub fn record(rec: FlightRecord) {
    global().push(rec);
}

/// The process-global recorder's retained records, oldest first.
pub fn snapshot() -> Vec<FlightRecord> {
    global().snapshot()
}

/// Dump the process-global recorder to `<run dir>/flightrec.jsonl` when a
/// run is active, else a fresh `<out_root>/flightrec*/` directory. Never
/// fails the caller; returns the written path if the filesystem obliged.
pub fn dump(reason: &str) -> Option<PathBuf> {
    let dir = crate::sink::artifact_dir("flightrec");
    global().dump_to(&dir, reason)
}

/// Parse a dump back into `(reason, records-as-Json)`; `None` when the
/// text is not a well-formed flight-recorder stream. The proptest suite
/// round-trips dumps through this.
pub fn parse_dump(text: &str) -> Option<(String, Vec<Json>)> {
    let mut lines = text.lines();
    let header = Json::parse(lines.next()?).ok()?;
    if header.get("kind").and_then(Json::as_str) != Some("flightrec") {
        return None;
    }
    let reason = header.get("reason").and_then(Json::as_str)?.to_string();
    let mut records = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line).ok()?;
        // Every record line must carry the fixed keys.
        for key in ["seq", "req", "user", "event", "t"] {
            rec.get(key)?;
        }
        records.push(rec);
    }
    Some((reason, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> FlightRecord {
        FlightRecord {
            seq,
            req_id: seq * 10,
            user: seq % 7,
            event: "served",
            t_ns: seq * 1_000,
            stages: vec![("queue_wait_ns", seq), ("e2e_ns", seq * 2)],
            detail: String::new(),
        }
    }

    #[test]
    fn ring_keeps_insertion_order_below_capacity() {
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            r.push(rec(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.pushed(), 5);
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..11 {
            r.push(rec(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "capacity bounds retention");
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "oldest first, newest retained"
        );
        assert_eq!(r.pushed(), 11);
    }

    #[test]
    fn capacity_one_keeps_exactly_the_last() {
        let r = FlightRecorder::new(1);
        r.push(rec(1));
        r.push(rec(2));
        assert_eq!(r.snapshot().iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn concurrent_writers_lose_nothing_but_the_oldest() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let r = r.clone();
                // om-lint: allow(thread-spawn) — test thread, not pool work.
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.push(rec(w * 1_000 + i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        assert_eq!(r.pushed(), 2_000);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 64, "retains exactly capacity");
        // Each writer's retained records keep their relative order.
        for w in 0..4u64 {
            let seqs: Vec<u64> = snap
                .iter()
                .filter(|rec| rec.seq / 1_000 == w)
                .map(|rec| rec.seq)
                .collect();
            assert!(seqs.windows(2).all(|p| p[0] < p[1]), "writer {w} order: {seqs:?}");
        }
    }

    #[test]
    fn jsonl_round_trips_through_om_obs_json() {
        let r = FlightRecorder::new(8);
        r.push(rec(1));
        r.push(FlightRecord {
            seq: 2,
            req_id: 20,
            user: 3,
            event: "scorer_error",
            t_ns: 99,
            stages: Vec::new(),
            detail: "empty arena \"quoted\"\nnewline".to_string(),
        });
        let text = r.to_jsonl("unit-test");
        let (reason, records) = parse_dump(&text).expect("well-formed dump");
        assert_eq!(reason, "unit-test");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("event").and_then(Json::as_str), Some("served"));
        assert_eq!(records[0].get("queue_wait_ns").and_then(Json::as_u64), Some(1));
        assert_eq!(
            records[1].get("detail").and_then(Json::as_str),
            Some("empty arena \"quoted\"\nnewline"),
            "detail text survives escaping"
        );
    }

    #[test]
    fn dump_to_writes_and_reparses() {
        let dir = std::env::temp_dir().join(format!("om-obs-flightrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(4);
        r.push(rec(5));
        let path = r.dump_to(&dir, "test-dump").expect("dump succeeds");
        let text = std::fs::read_to_string(&path).expect("read back");
        let (reason, records) = parse_dump(&text).expect("parses");
        assert_eq!(reason, "test-dump");
        assert_eq!(records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
