//! Serial/parallel parity: the parallel kernels must produce **bit-identical**
//! output to the retained serial reference implementations — f32 addition is
//! not associative, so this only holds because the kernels fix their
//! accumulation order independently of the thread count (see
//! `om_tensor::kernels`). Shapes deliberately include 1×1, 1×N, tall-skinny,
//! wide-short, and odd/prime sizes to hit every ragged-tail branch of the
//! blocked GEMM and the chunked reductions.

use std::sync::{Mutex, MutexGuard, OnceLock};

use om_tensor::{init, kernels, runtime, seeded_rng, Tensor};

fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Evaluate `f` under every thread setting and assert all results are
/// bit-identical to the first (serial) one.
fn assert_parity(name: &str, f: impl Fn() -> Vec<f32>) {
    let _guard = thread_lock();
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 2, 3, 0] {
        let prev = runtime::set_threads(threads);
        let out = bits(&f());
        runtime::set_threads(prev);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(
                r, &out,
                "{name}: output at set_threads({threads}) differs bitwise from serial"
            ),
        }
    }
}

/// The shape battery every parity test runs over: (m, k, n).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),       // degenerate
    (1, 1, 64),      // 1×N row
    (1, 97, 1),      // inner-product only
    (257, 3, 2),     // tall-skinny
    (2, 3, 257),     // wide-short
    (5, 7, 3),       // all odd
    (61, 53, 47),    // all prime, below/above row-block boundaries
    (130, 97, 64),   // crosses the 4-row micro-kernel's ragged tail
];

#[test]
fn gemm_parallel_matches_serial_reference_bitwise() {
    for &(m, k, n) in SHAPES {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
        let mut serial = vec![0.0f32; m * n];
        kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
        assert_parity(&format!("gemm {m}x{k}x{n}"), || {
            let mut c = vec![0.0f32; m * n];
            kernels::gemm(&a, &b, &mut c, m, k, n);
            c
        });
        // The parallel entry point must also agree with the naive serial
        // reference, not just with itself.
        let mut c = vec![0.0f32; m * n];
        kernels::gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(bits(&serial), bits(&c), "gemm {m}x{k}x{n} vs serial reference");
    }
}

#[test]
fn gemm_with_zero_rows_matches_serial_bitwise() {
    // Zeros exercise the micro-kernel's zero-product skip; skipping an
    // exact-zero contribution must not change any bit of the result.
    for &(m, k, n) in SHAPES {
        let mut a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        for v in a.iter_mut().step_by(3) {
            *v = 0.0;
        }
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29) % 31) as f32 * 0.37 - 5.0).collect();
        let mut serial = vec![0.0f32; m * n];
        kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
        let mut c = vec![0.0f32; m * n];
        kernels::gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(bits(&serial), bits(&c), "sparse gemm {m}x{k}x{n}");
    }
}

#[test]
fn full_reduction_is_thread_count_invariant_bitwise() {
    // Lengths straddling the fixed reduction chunk, including primes.
    for len in [1usize, 2, 4095, 4096, 4097, 10_007, 3 * 4096 + 1] {
        let x: Vec<f32> = (0..len).map(|i| ((i * 13) % 97) as f32 * 0.0137 - 0.61).collect();
        let serial = kernels::sum_serial(&x);
        assert_parity(&format!("sum len {len}"), || vec![kernels::sum(&x)]);
        assert_eq!(
            serial.to_bits(),
            kernels::sum(&x).to_bits(),
            "sum len {len} vs serial reference"
        );
    }
}

#[test]
fn elementwise_kernels_match_serial_references_bitwise() {
    // Lengths straddle the map-parallelisation grain so both the inline
    // and the pooled code paths are exercised.
    for len in [1usize, 257, 16 * 1024, 3 * 16 * 1024 + 17] {
        let a: Vec<f32> = (0..len).map(|i| ((i * 41) % 113) as f32 * 0.073 - 4.0).collect();
        let b: Vec<f32> = (0..len).map(|i| ((i * 59) % 127) as f32 * 0.057 - 3.5).collect();
        let map_ref = kernels::map_serial(&a, |x| x.exp() - x);
        assert_parity(&format!("map len {len}"), || kernels::map(&a, |x| x.exp() - x));
        assert_eq!(bits(&map_ref), bits(&kernels::map(&a, |x| x.exp() - x)));
        let zip_ref = kernels::zip_map_serial(&a, &b, |x, y| x * y + x);
        assert_parity(&format!("zip_map len {len}"), || {
            kernels::zip_map(&a, &b, |x, y| x * y + x)
        });
        assert_eq!(bits(&zip_ref), bits(&kernels::zip_map(&a, &b, |x, y| x * y + x)));
        let idx_ref = kernels::map_indexed_serial(len, |i| (i % 97) as f32 * 0.31);
        assert_parity(&format!("map_indexed len {len}"), || {
            kernels::map_indexed(len, |i| (i % 97) as f32 * 0.31)
        });
        assert_eq!(bits(&idx_ref), bits(&kernels::map_indexed(len, |i| (i % 97) as f32 * 0.31)));
    }
}

#[test]
fn transpose_and_fill_rows_match_serial_references_bitwise() {
    for &(m, n) in &[(1usize, 1usize), (7, 5), (173, 111), (257, 129)] {
        let x: Vec<f32> = (0..m * n).map(|i| ((i * 31) % 101) as f32 * 0.019 - 0.9).collect();
        let t_ref = kernels::transpose_serial(&x, m, n);
        assert_parity(&format!("transpose {m}x{n}"), || kernels::transpose(&x, m, n));
        assert_eq!(bits(&t_ref), bits(&kernels::transpose(&x, m, n)));
        let fill = |r: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (r * 13 + j) as f32 * 0.5;
            }
        };
        let f_ref = kernels::fill_rows_serial(m, n, fill);
        assert_parity(&format!("fill_rows {m}x{n}"), || kernels::fill_rows(m, n, 2, fill));
        assert_eq!(bits(&f_ref), bits(&kernels::fill_rows(m, n, 2, fill)));
    }
}

#[test]
fn tensor_matmul_is_thread_count_invariant_bitwise() {
    for &(m, k, n) in SHAPES {
        let a = init::uniform(&[m, k], -1.0, 1.0, &mut seeded_rng(m as u64 * 7 + 1));
        let b = init::uniform(&[k, n], -1.0, 1.0, &mut seeded_rng(n as u64 * 11 + 2));
        assert_parity(&format!("tensor matmul {m}x{k}x{n}"), || {
            a.matmul(&b).to_vec()
        });
    }
}

#[test]
fn tensor_matmul_backward_is_thread_count_invariant_bitwise() {
    // Both backward GEMMs (dA = g·Bᵀ, dB = Aᵀ·g) run through the same
    // parallel kernel; the gradients must be bit-stable too.
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (257, 3, 2), (61, 53, 47)] {
        assert_parity(&format!("matmul backward {m}x{k}x{n}"), || {
            let a = init::uniform(&[m, k], -1.0, 1.0, &mut seeded_rng(3)).requires_grad();
            let b = init::uniform(&[k, n], -1.0, 1.0, &mut seeded_rng(4)).requires_grad();
            a.matmul(&b).sum_all().backward();
            let mut out = a.grad_vec().unwrap();
            out.extend(b.grad_vec().unwrap());
            out
        });
    }
}

#[test]
fn softmax_is_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 1usize), (1, 64), (257, 3), (2, 257), (61, 47)] {
        let x = init::uniform(&[rows, cols], -4.0, 4.0, &mut seeded_rng(rows as u64 + 5));
        assert_parity(&format!("log_softmax {rows}x{cols}"), || {
            x.log_softmax_rows().to_vec()
        });
        assert_parity(&format!("softmax {rows}x{cols}"), || {
            x.softmax_rows().to_vec()
        });
    }
}

#[test]
fn tensor_reductions_are_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 1usize), (1, 300), (300, 1), (257, 3), (2, 257), (61, 47)] {
        let x = init::uniform(&[rows, cols], -1.0, 1.0, &mut seeded_rng(rows as u64 * 3 + 7));
        assert_parity(&format!("sum_all {rows}x{cols}"), || {
            vec![x.sum_all().item()]
        });
        assert_parity(&format!("sum_rows {rows}x{cols}"), || x.sum_rows().to_vec());
        assert_parity(&format!("sum_cols {rows}x{cols}"), || x.sum_cols().to_vec());
    }
}

#[test]
fn normalization_ops_are_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 4usize), (61, 17), (130, 6)] {
        let x = init::uniform(&[rows, cols], -2.0, 2.0, &mut seeded_rng(rows as u64 + 9));
        assert_parity(&format!("l2_normalize {rows}x{cols}"), || {
            x.l2_normalize_rows().to_vec()
        });
        assert_parity(&format!("layer_norm {rows}x{cols}"), || {
            x.layer_norm_rows().to_vec()
        });
    }
}

#[test]
fn unfold_and_pool_are_thread_count_invariant_bitwise() {
    let x = init::uniform(&[5, 19, 7], -1.0, 1.0, &mut seeded_rng(10));
    assert_parity("unfold_windows", || x.unfold_windows(4).to_vec());
    assert_parity("max_over_time", || x.max_over_time().to_vec());
    assert_parity("unfold backward", || {
        let w = init::uniform(&[5, 19, 7], -1.0, 1.0, &mut seeded_rng(11)).requires_grad();
        w.unfold_windows(4).square().mean_all().backward();
        w.grad_vec().unwrap()
    });
}

#[test]
fn whole_graph_loss_is_thread_count_invariant_bitwise() {
    // A TextCNN-shaped forward+backward as one end-to-end chain: embedding
    // lookup → unfold → GEMM → bias → relu → pooling → log-softmax loss.
    let idx: Vec<usize> = (0..4 * 12).map(|i| (i * 17) % 50).collect();
    assert_parity("textcnn-like graph", || {
        let table = init::uniform(&[50, 6], -0.5, 0.5, &mut seeded_rng(12)).requires_grad();
        let w = init::uniform(&[3 * 6, 8], -0.5, 0.5, &mut seeded_rng(13)).requires_grad();
        let bias = Tensor::zeros(&[8]).requires_grad();
        let emb = table.embedding_lookup(&idx).reshape(&[4, 12, 6]);
        let pooled = emb
            .unfold_windows(3)
            .matmul(&w)
            .add_row(&bias)
            .relu()
            .reshape(&[4, 10, 8])
            .max_over_time();
        let loss = pooled.cross_entropy(&[0, 3, 1, 2]);
        loss.backward();
        let mut out = vec![loss.item()];
        out.extend(table.grad_vec().unwrap());
        out.extend(w.grad_vec().unwrap());
        out
    });
}

#[test]
fn pair_rows_matches_serial_reference_bitwise() {
    // Shapes straddle the fill grain so both the inline and pooled paths
    // run; (1,1) and prime sizes hit the ragged tails.
    for &(b, n, du, di) in &[
        (1usize, 1usize, 1usize, 1usize),
        (3, 257, 5, 7),
        (17, 61, 24, 12),
        (64, 500, 24, 12),
    ] {
        let users: Vec<f32> = (0..b * du).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
        let items: Vec<f32> = (0..n * di).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
        let serial = kernels::pair_rows_serial(&users, &items, du, di);
        assert_parity(&format!("pair_rows {b}x{n} ({du}+{di})"), || {
            kernels::pair_rows(&users, &items, du, di)
        });
        assert_eq!(
            bits(&serial),
            bits(&kernels::pair_rows(&users, &items, du, di)),
            "pair_rows {b}x{n} vs serial reference"
        );
    }
}

// ---------------------------------------------------------------------------
// ULP tolerances for `// om-lint: simd` kernels.
//
// om-lint's `simd-ulp-tolerance` pass requires every kernel carrying the
// simd marker in `src/kernels.rs` to register a tolerance here via a
// literal `ulp_tolerance("<name>")` call. Today every kernel is scalar and
// the registered tolerance is 0 ULP — the bitwise contract above. A future
// vectorised port widens its entry (with an argued bound) instead of
// silently abandoning bit parity.
// ---------------------------------------------------------------------------

/// `(kernel, max ULP distance vs the serial twin)` for simd-marked kernels.
const ULP_TOLERANCES: &[(&str, u32)] = &[("gemm", 0), ("sum", 0)];

/// Look up a registered tolerance; unregistered names are a test bug (and
/// an om-lint violation at the kernel's marker).
fn ulp_tolerance(name: &str) -> u32 {
    ULP_TOLERANCES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, t)| t)
        .unwrap_or_else(|| panic!("kernel `{name}` has no registered ULP tolerance"))
}

/// Distance in representable-float steps between two finite f32 values
/// (the standard monotonic bits mapping; equal bits → 0).
fn ulp_distance(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 { i64::from(i32::MIN) - i64::from(bits) } else { i64::from(bits) }
    }
    key(a).abs_diff(key(b)).try_into().unwrap_or(u32::MAX)
}

fn assert_within_ulp(name: &str, tol: u32, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let d = ulp_distance(g, w);
        assert!(
            d <= tol,
            "{name}[{i}]: {g} vs {w} is {d} ULP apart (tolerance {tol})"
        );
    }
}

#[test]
fn simd_marked_kernels_meet_their_registered_ulp_tolerance() {
    let (m, k, n) = (61usize, 53usize, 47usize);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
    let mut serial = vec![0.0f32; m * n];
    kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
    let mut parallel = vec![0.0f32; m * n];
    kernels::gemm(&a, &b, &mut parallel, m, k, n);
    assert_within_ulp("gemm", ulp_tolerance("gemm"), &parallel, &serial);

    let x: Vec<f32> = (0..10_007).map(|i| ((i * 29) % 97) as f32 * 0.131 - 6.0).collect();
    assert_within_ulp(
        "sum",
        ulp_tolerance("sum"),
        &[kernels::sum(&x)],
        &[kernels::sum_serial(&x)],
    );

    // The scalar kernels are bitwise-equal today, so the registered
    // tolerances must be exactly 0 — widening one requires a vectorised
    // port plus an argued bound, not a quiet constant bump.
    for &(name, tol) in ULP_TOLERANCES {
        assert_eq!(tol, 0, "kernel `{name}` widened its ULP tolerance without a SIMD port");
    }
    assert_eq!(ulp_distance(1.0, 1.0), 0);
    assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
    assert_eq!(ulp_distance(-0.0, 0.0), 0);
}
