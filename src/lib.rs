//! # omnimatch — workspace facade
//!
//! Re-exports the public API of every crate in the OmniMatch reproduction so
//! examples and downstream users need a single dependency.

pub use om_baselines as baselines;
pub use om_data as data;
pub use om_metrics as metrics;
pub use om_nn as nn;
pub use om_tensor as tensor;
pub use om_text as text;
pub use omnimatch_core as core;
