//! Exhaustive model check of the user-arena hot-swap protocol
//! (`crates/serve/src/update.rs::ArenaSwap`), driven by
//! `om_lint::interleave` — the repo's loom stand-in.
//!
//! The modelled protocol, step for step:
//!
//! * each **scorer** serves one microbatch: `Pin` (lock the generation
//!   cell, clone the `Arc` — one critical section, one step), `Score`
//!   (read the pinned arena, *outside* any lock — this is where a freed
//!   arena would be a use-after-free), `Unpin` (drop the `Arc`; the last
//!   reference of a superseded generation frees its arena — batch-close);
//! * the **updater** publishes two generations: `Install` locks the cell
//!   and replaces the held `Arc` (the cell's reference to the old
//!   generation drops *inside* the swap; with no pins outstanding that
//!   frees the old arena right there, otherwise the last pin does);
//! * the **stopper** models shutdown: once the updater is done it drops
//!   the cell itself, racing scorers still mid-batch — the current
//!   generation must survive until their pins drain.
//!
//! Verified for every interleaving, across scorer counts: a scorer's
//! pinned generation is alive for the entire time it scores no matter how
//! many flips land mid-batch, no generation ever leaks (terminal states
//! have every arena freed), and pins of superseded generations drain —
//! exactly the `Arc`-refcount-as-epoch argument `update.rs` makes in
//! prose.
//!
//! A deliberately broken variant — `install` frees the old generation's
//! arena at flip time instead of deferring to the last pin, the classic
//! premature-free swap bug — must be caught: the explorer finds a scorer
//! reading a freed arena. That demonstrates the model is strong enough to
//! see the bug class the pin protocol exists to prevent.

use om_lint::interleave::{explore, Model};

/// Thread id 0 is the updater, 1 the stopper, `2..` the scorers.
const UPDATER: usize = 0;
const STOPPER: usize = 1;

/// Generations: 0 is live at engine build; the updater installs 1 then 2.
const GENERATIONS: usize = 3;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ScorerPc {
    /// About to pin: lock the cell, clone the `Arc` (one step).
    Pin,
    /// Holding a pin, about to read the arena — the use-after-free window
    /// of the broken variant.
    Score,
    /// About to drop the pin (batch-close).
    Unpin,
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum UpdaterPc {
    /// About to install generation 1 (shadow arena already built — the
    /// build happens outside the critical section and is invisible to
    /// readers, so it needs no step of its own).
    Install1,
    /// About to install generation 2.
    Install2,
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum StopperPc {
    /// Engine shutdown: drop the cell's own reference.
    DropCell,
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SwapModel {
    /// Whether `install` defers freeing the superseded arena to its last
    /// pin (the shipped protocol) or frees it at flip time (the broken
    /// premature-free variant).
    deferred_free: bool,
    scorers: Vec<(ScorerPc, usize)>,
    updater: UpdaterPc,
    stopper: StopperPc,
    /// The generation the cell currently publishes.
    current: usize,
    /// Does the cell still hold its reference (dropped at shutdown)?
    cell_ref: bool,
    /// Is each generation's arena still allocated?
    alive: [bool; GENERATIONS],
    /// Outstanding pins per generation (the `Arc` strong count minus the
    /// cell's own reference).
    pins: [usize; GENERATIONS],
}

impl SwapModel {
    fn new(deferred_free: bool, scorers: usize) -> SwapModel {
        SwapModel {
            deferred_free,
            scorers: vec![(ScorerPc::Pin, 0); scorers],
            updater: UpdaterPc::Install1,
            stopper: StopperPc::DropCell,
            current: 0,
            cell_ref: true,
            alive: [true, false, false],
            pins: [0; GENERATIONS],
        }
    }

    /// Drop one reference to `gen` (a pin, or the cell's): the arena is
    /// freed when the last reference goes. Under the broken variant the
    /// arena may already be gone — dropping a dangling pin is modelled as
    /// a no-op on `alive` (the invariant catches the *read*, which is the
    /// actual crime).
    fn drop_ref(&mut self, generation: usize, was_pin: bool) {
        if was_pin {
            self.pins[generation] = self.pins[generation].saturating_sub(1);
        } else {
            self.cell_ref = false;
        }
        let cell_holds = self.cell_ref && self.current == generation;
        if self.pins[generation] == 0 && !cell_holds {
            self.alive[generation] = false;
        }
    }
}

impl Model for SwapModel {
    fn runnable(&self) -> Vec<usize> {
        let mut r = Vec::new();
        if self.updater != UpdaterPc::Done {
            r.push(UPDATER);
        }
        // Shutdown happens after the update stream stops and after the
        // last batch has *started* (the worker drains its queue before
        // the engine drops — no batch can begin after shutdown), but
        // races mid-batch scorers freely.
        if self.stopper == StopperPc::DropCell
            && self.updater == UpdaterPc::Done
            && self.scorers.iter().all(|(pc, _)| *pc != ScorerPc::Pin)
        {
            r.push(STOPPER);
        }
        for (i, (pc, _)) in self.scorers.iter().enumerate() {
            // Pinning needs the cell; shutdown is ordered after the last
            // batch in the real code, so a scorer never pins a dropped
            // cell — mid-batch steps keep racing everything.
            let runnable = match pc {
                ScorerPc::Pin => self.cell_ref,
                ScorerPc::Score | ScorerPc::Unpin => true,
                ScorerPc::Done => false,
            };
            if runnable {
                r.push(2 + i);
            }
        }
        r
    }

    fn step(&self, tid: usize) -> SwapModel {
        let mut s = self.clone();
        match tid {
            UPDATER => {
                let next = match s.updater {
                    UpdaterPc::Install1 => 1,
                    UpdaterPc::Install2 => 2,
                    UpdaterPc::Done => unreachable!("updater done"),
                };
                // install(): one critical section — publish the new
                // generation and drop the cell's reference to the old.
                let old = s.current;
                s.alive[next] = true;
                s.current = next;
                if s.deferred_free {
                    s.drop_ref(old, false);
                    s.cell_ref = true; // the cell now holds `next`
                } else {
                    // Broken variant: free the superseded arena at flip
                    // time, pins notwithstanding.
                    s.alive[old] = false;
                }
                s.updater = match s.updater {
                    UpdaterPc::Install1 => UpdaterPc::Install2,
                    _ => UpdaterPc::Done,
                };
            }
            STOPPER => {
                let current = s.current;
                s.drop_ref(current, false);
                s.stopper = StopperPc::Done;
            }
            t => {
                let (pc, pinned) = s.scorers[t - 2].clone();
                match pc {
                    ScorerPc::Pin => {
                        let g = s.current;
                        s.pins[g] += 1;
                        s.scorers[t - 2] = (ScorerPc::Score, g);
                    }
                    ScorerPc::Score => {
                        // The read itself; the invariant below checks the
                        // arena is alive while we sit in this state.
                        s.scorers[t - 2] = (ScorerPc::Unpin, pinned);
                    }
                    ScorerPc::Unpin => {
                        s.drop_ref(pinned, true);
                        s.scorers[t - 2] = (ScorerPc::Done, pinned);
                    }
                    ScorerPc::Done => unreachable!("scorer done"),
                }
            }
        }
        s
    }

    fn is_terminal_ok(&self) -> bool {
        self.updater == UpdaterPc::Done
            && self.stopper == StopperPc::Done
            && self.scorers.iter().all(|(pc, _)| *pc == ScorerPc::Done)
            // Drain: every pin released, every generation freed — the
            // superseded ones by their last pin, the final one by the
            // cell drop. Anything still alive is a leak.
            && self.pins.iter().all(|&p| p == 0)
            && self.alive.iter().all(|&a| !a)
    }

    fn invariant(&self) -> Result<(), String> {
        // The heart of the protocol: a scorer holding a pin must find its
        // generation's arena alive, for the whole window between pin and
        // unpin — no matter how many installs landed meanwhile.
        for (i, (pc, pinned)) in self.scorers.iter().enumerate() {
            let holding = matches!(pc, ScorerPc::Score | ScorerPc::Unpin);
            if holding && !self.alive[*pinned] {
                return Err(format!(
                    "scorer {i} reading freed generation {pinned} (current: {})",
                    self.current
                ));
            }
        }
        // A freed arena must have no outstanding pins (refcount sanity).
        for g in 0..GENERATIONS {
            if !self.alive[g] && self.pins[g] > 0 && self.deferred_free {
                return Err(format!("generation {g} freed with {} pins live", self.pins[g]));
            }
        }
        Ok(())
    }
}

#[test]
fn pinned_generations_survive_every_flip_interleaving() {
    for scorers in 1..=3 {
        let stats = explore(SwapModel::new(true, scorers))
            .unwrap_or_else(|e| panic!("{scorers} scorer(s): {e}"));
        assert!(
            stats.states > scorers * GENERATIONS,
            "suspiciously small exploration: {stats:?}"
        );
    }
}

#[test]
fn flips_racing_batch_close_and_shutdown_leak_nothing() {
    // The adversarial shape: three scorers pinning/unpinning across both
    // installs and the shutdown drop. Every terminal state must have all
    // pins drained and all three generations freed.
    let stats = explore(SwapModel::new(true, 3)).expect("swap protocol verified");
    assert!(stats.transitions > stats.states, "explorer did not branch");
}

#[test]
fn early_free_variant_is_caught_reading_a_freed_generation() {
    // Free the superseded arena at install time instead of at the last
    // pin and the protocol is broken: a scorer that pinned generation 0
    // is still scoring when install #1 frees it.
    let err = explore(SwapModel::new(false, 1))
        .expect_err("the early-free variant must fail model checking");
    assert!(
        err.contains("reading freed generation"),
        "expected the use-after-free window, got: {err}"
    );
}
