//! Fuzz the OMCK v2 checkpoint decoder: random truncations, bit flips and
//! corrupted length fields must always produce an `Err` — never a panic,
//! never a huge speculative allocation, and never a partial restore.
//!
//! The generator is seeded (`PROPTEST_SEED`, default 0) so every CI run
//! replays the same corruption set.

use bytes::Bytes;
use om_nn::serialize::{self, CheckpointV2};
use om_tensor::{init, seeded_rng, Tensor};
use proptest::prelude::*;

fn sample_tensors() -> Vec<Tensor> {
    let mut rng = seeded_rng(42);
    vec![
        init::normal(&[3, 5], 1.0, &mut rng).requires_grad(),
        init::normal(&[7], 1.0, &mut rng).requires_grad(),
        init::normal(&[2, 2, 2], 1.0, &mut rng).requires_grad(),
    ]
}

/// A well-formed v2 blob with two sections, as `ckpt::save` would write.
fn sample_blob() -> Vec<u8> {
    let mut ck = CheckpointV2::new();
    ck.insert("params", serialize::encode_tensors(&sample_tensors()));
    ck.insert("meta", Bytes::copy_from_slice(&[7u8; 16]));
    ck.encode().to_vec()
}

fn fresh_zeros() -> Vec<Tensor> {
    vec![
        Tensor::zeros(&[3, 5]).requires_grad(),
        Tensor::zeros(&[7]).requires_grad(),
        Tensor::zeros(&[2, 2, 2]).requires_grad(),
    ]
}

fn all_zero(tensors: &[Tensor]) -> bool {
    tensors.iter().all(|t| t.to_vec().iter().all(|&v| v == 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn any_truncation_is_rejected(frac in 0.0f64..1.0) {
        let blob = sample_blob();
        let cut = ((blob.len() as f64) * frac) as usize;
        // Every strict prefix must fail cleanly — the decoder may not
        // panic, and must not report success on a torn write.
        prop_assert!(
            CheckpointV2::decode(&blob[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            blob.len()
        );
    }

    #[test]
    fn bit_flips_are_detected(positions in collection::vec(0usize..1_000_000, 1..6)) {
        let mut blob = sample_blob();
        let n = blob.len();
        for p in &positions {
            blob[p % n] ^= 1u8 << ((p / n) % 8);
        }
        if blob == sample_blob() {
            return; // flips cancelled each other out
        }
        match CheckpointV2::decode(&blob) {
            Err(_) => {}
            // A CRC pass after corruption is astronomically unlikely, but
            // if it happens the restored data must still be exact or the
            // restore must refuse all-or-nothing.
            Ok(ck) => {
                let dst = fresh_zeros();
                if let Some(payload) = ck.get("params") {
                    match serialize::decode_tensors_into(&dst, payload) {
                        Ok(()) => {
                            for (a, b) in sample_tensors().iter().zip(&dst) {
                                prop_assert_eq!(a.to_vec(), b.to_vec());
                            }
                        }
                        Err(_) => prop_assert!(all_zero(&dst)),
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_length_fields_fail_without_allocating(v in 0u64..u64::MAX, field in 0usize..3) {
        let mut blob = sample_blob();
        match field {
            // section_count (u32 at offset 8)
            0 => blob[8..12].copy_from_slice(&(v as u32).to_le_bytes()),
            // first section's name_len (u32 at offset 12)
            1 => blob[12..16].copy_from_slice(&(v as u32).to_le_bytes()),
            // first section's payload_len (u64 after the 6-byte "params")
            _ => blob[22..30].copy_from_slice(&v.to_le_bytes()),
        }
        if blob == sample_blob() {
            return; // wrote the original value back
        }
        // Oversized declared lengths must be rejected by bounds checks
        // against the remaining byte count *before* any allocation — a
        // declared length of e.g. u64::MAX must not attempt a reservation.
        prop_assert!(CheckpointV2::decode(&blob).is_err());
    }

    #[test]
    fn corrupt_tensor_payload_restores_nothing(positions in collection::vec(0usize..1_000_000, 1..4)) {
        let payload = serialize::encode_tensors(&sample_tensors());
        let mut bytes = payload.to_vec();
        let n = bytes.len();
        for p in &positions {
            bytes[p % n] ^= 1u8 << ((p / n) % 8);
        }
        if bytes[..] == payload[..] {
            return;
        }
        let dst = fresh_zeros();
        match serialize::decode_tensors_into(&dst, &bytes) {
            // All-or-nothing: a failed decode must leave the destination
            // parameters untouched, not half-written.
            Err(_) => prop_assert!(all_zero(&dst), "failed decode wrote partial data"),
            Ok(()) => {
                for (a, b) in sample_tensors().iter().zip(&dst) {
                    prop_assert_eq!(a.to_vec(), b.to_vec());
                }
            }
        }
    }

    #[test]
    fn truncated_opt_state_is_rejected(frac in 0.0f64..1.0) {
        let params = sample_tensors();
        let mut opt = om_nn::Adadelta::new(params.clone(), 0.02, 0.95);
        for t in &params {
            t.square().sum_all().backward();
        }
        use om_nn::Optimizer as _;
        opt.step();
        let payload = serialize::encode_opt_state(&opt.export_state());
        let cut = ((payload.len() as f64) * frac) as usize;
        if cut == payload.len() {
            return;
        }
        prop_assert!(serialize::decode_opt_state(&payload[..cut]).is_err());
    }
}
