//! Durable training checkpoints: atomic on-disk persistence of the full
//! `Trainer::fit` state at epoch boundaries, and resume.
//!
//! A checkpoint is an `OMCK` v2 file (see `om_nn::serialize`) holding
//! everything the training loop needs to continue **bitwise identically**:
//!
//! | section | contents |
//! |---|---|
//! | `meta` | scenario/config digest (resume refuses a mismatched run) + next epoch |
//! | `params` | current model parameters (per-tensor CRC32) |
//! | `opt` | Adadelta `sq_avg` / `acc_delta`, keyed by parameter index |
//! | `rng` | the training RNG's full state (shuffle, augmentation, dropout) |
//! | `history` | per-epoch loss means + validation RMSE so far |
//! | `best` | best-so-far cursor (rmse, epoch) + the best parameter blob |
//!
//! **Atomicity.** A checkpoint is written to `ep-NNNN.omck.tmp`, fsynced,
//! then renamed to `ep-NNNN.omck` — a crash can leave a stray `*.tmp`
//! (cleaned on the next resume scan) but never a half-written `.omck`.
//! Every section carries a CRC32, so torn or corrupted files are detected
//! and skipped in favour of the next-newest checkpoint.
//!
//! **Gating.** Nothing is written unless the caller passes an explicit
//! [`CkptConfig`] or sets `OM_CKPT` (truthy). `OM_CKPT_DIR` overrides the
//! `results/ckpt` root; `OM_CKPT_EVERY` sets the epoch cadence (the final
//! epoch is always checkpointed).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use bytes::{Buf as _, BufMut as _, Bytes, BytesMut};
use om_nn::serialize::{
    decode_opt_state, decode_tensors_into, encode_opt_state, encode_tensors, CheckpointV2,
};
use om_nn::Adadelta;
use om_tensor::Tensor;

use crate::config::{AuxMode, ExtractorKind, OmniMatchConfig};
use crate::trainer::EpochStats;

/// Where and how often to persist training checkpoints.
#[derive(Debug, Clone)]
pub struct CkptConfig {
    /// Run directory; checkpoints are `<dir>/ep-NNNN.omck`.
    pub dir: PathBuf,
    /// Save every `every` epochs (≥ 1; the final epoch always saves).
    pub every: usize,
}

impl CkptConfig {
    /// Checkpoint into `dir` after every epoch.
    pub fn at(dir: impl Into<PathBuf>) -> CkptConfig {
        CkptConfig {
            dir: dir.into(),
            every: 1,
        }
    }

    /// Builder-style cadence override (clamped to ≥ 1).
    pub fn every(mut self, n: usize) -> CkptConfig {
        self.every = n.max(1);
        self
    }

    /// The environment-driven configuration: `None` unless `OM_CKPT` is
    /// truthy. Run directory is `<OM_CKPT_DIR or results/ckpt>/<run>`;
    /// cadence is `OM_CKPT_EVERY` (default 1).
    pub fn from_env(run: &str) -> Option<CkptConfig> {
        let on = std::env::var("OM_CKPT")
            .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "off"))
            .unwrap_or(false);
        if !on {
            return None;
        }
        let root = match std::env::var("OM_CKPT_DIR") {
            Ok(p) if !p.is_empty() => PathBuf::from(p),
            _ => PathBuf::from("results/ckpt"),
        };
        let every = std::env::var("OM_CKPT_EVERY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        Some(CkptConfig {
            dir: root.join(run),
            every,
        })
    }
}

/// Everything `Trainer::fit` needs to continue from an epoch boundary.
pub(crate) struct Snapshot {
    /// First epoch the resumed loop should run.
    pub next_epoch: usize,
    /// Loss means of the completed epochs.
    pub stats: Vec<EpochStats>,
    /// Validation RMSE of the completed epochs.
    pub valid_rmse: Vec<f32>,
    /// Best validation RMSE so far (`f32::INFINITY` when none).
    pub best_rmse: f32,
    /// Epoch of the best validation RMSE.
    pub best_epoch: usize,
    /// v1 parameter blob of the best epoch, if any.
    pub best_params: Option<Bytes>,
    /// Training RNG state at the epoch boundary.
    pub rng: [u64; 4],
}

/// FNV-1a accumulation helper.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
}

/// Digest of everything that must match for a checkpoint to be resumable
/// into this run: the seed, data shape, model shape and the training
/// hyper-parameters. Deliberately **excludes `epochs`** — extending a
/// finished short run (or finishing an interrupted long one) is exactly
/// what resume is for.
pub(crate) fn config_digest(
    cfg: &OmniMatchConfig,
    n_samples: usize,
    vocab_len: usize,
    params: &[Tensor],
) -> u64 {
    let mut h = Fnv::new();
    h.u64(cfg.seed);
    h.u64(n_samples as u64);
    h.u64(vocab_len as u64);
    for p in params {
        for &d in p.dims() {
            h.u64(d as u64);
        }
        h.u64(u64::MAX); // dim-list terminator
    }
    for v in [
        cfg.lr,
        cfg.rho,
        cfg.alpha,
        cfg.beta,
        cfg.temperature,
        cfg.grl_lambda,
        cfg.dropout,
        cfg.aux_augment_prob,
    ] {
        h.f32(v);
    }
    for v in [
        cfg.doc_len,
        cfg.vocab_size,
        cfg.emb_dim,
        cfg.filters,
        cfg.invariant_dim,
        cfg.specific_dim,
        cfg.item_dim,
        cfg.proj_dim,
        cfg.batch_size,
    ] {
        h.u64(v as u64);
    }
    for &w in &cfg.kernel_widths {
        h.u64(w as u64);
    }
    h.u64(cfg.min_count);
    let flags = (cfg.use_scl as u64)
        | (cfg.use_da as u64) << 1
        | (cfg.align_cold_users as u64) << 2
        | (cfg.pretrain_embeddings as u64) << 3
        | ((cfg.aux_mode == AuxMode::Generated) as u64) << 4
        | ((cfg.extractor == ExtractorKind::TextCnn) as u64) << 5;
    h.u64(flags);
    h.0
}

fn encode_history(stats: &[EpochStats], valid: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 16 * stats.len() + 4 * valid.len());
    buf.put_u32_le(stats.len() as u32);
    for s in stats {
        buf.put_f32_le(s.total);
        buf.put_f32_le(s.rating);
        buf.put_f32_le(s.scl);
        buf.put_f32_le(s.domain);
    }
    buf.put_u32_le(valid.len() as u32);
    for &v in valid {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

fn decode_history(mut payload: &[u8]) -> Option<(Vec<EpochStats>, Vec<f32>)> {
    if payload.remaining() < 4 {
        return None;
    }
    let n = payload.get_u32_le() as usize;
    if payload.remaining() < 16 * n {
        return None;
    }
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        stats.push(EpochStats {
            total: payload.get_f32_le(),
            rating: payload.get_f32_le(),
            scl: payload.get_f32_le(),
            domain: payload.get_f32_le(),
        });
    }
    if payload.remaining() < 4 {
        return None;
    }
    let nv = payload.get_u32_le() as usize;
    if payload.remaining() != 4 * nv {
        return None;
    }
    let valid = (0..nv).map(|_| payload.get_f32_le()).collect();
    Some((stats, valid))
}

fn encode_best(best_rmse: f32, best_epoch: usize, blob: &Option<Bytes>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(blob.is_some() as u8);
    buf.put_f32_le(best_rmse);
    buf.put_u64_le(best_epoch as u64);
    if let Some(b) = blob {
        buf.put_slice(b);
    }
    buf.freeze()
}

fn decode_best(mut payload: &[u8]) -> Option<(f32, usize, Option<Bytes>)> {
    if payload.remaining() < 13 {
        return None;
    }
    let has = payload.get_u8() != 0;
    let rmse = payload.get_f32_le();
    let epoch = payload.get_u64_le() as usize;
    let blob = if has {
        Some(Bytes::copy_from_slice(payload))
    } else if payload.remaining() == 0 {
        None
    } else {
        return None; // trailing bytes on a "no best" record
    };
    Some((rmse, epoch, blob))
}

fn checkpoint_path(dir: &Path, epoch: usize) -> PathBuf {
    dir.join(format!("ep-{epoch:04}.omck"))
}

/// Persist one epoch-boundary snapshot atomically. Failures are reported
/// (not fatal): training without a checkpoint is strictly better than no
/// training at all.
#[allow(clippy::too_many_arguments)]
pub(crate) fn save(
    ck: &CkptConfig,
    digest: u64,
    epoch: usize,
    params: &[Tensor],
    opt: &Adadelta,
    snap: &Snapshot,
) -> std::io::Result<PathBuf> {
    let mut v2 = CheckpointV2::new();
    let mut meta = BytesMut::with_capacity(16);
    meta.put_u64_le(digest);
    meta.put_u64_le(snap.next_epoch as u64);
    v2.insert("meta", meta.freeze());
    v2.insert("params", encode_tensors(params));
    v2.insert("opt", encode_opt_state(&opt.export_state()));
    let mut rng_buf = BytesMut::with_capacity(32);
    for &w in &snap.rng {
        rng_buf.put_u64_le(w);
    }
    v2.insert("rng", rng_buf.freeze());
    v2.insert("history", encode_history(&snap.stats, &snap.valid_rmse));
    v2.insert(
        "best",
        encode_best(snap.best_rmse, snap.best_epoch, &snap.best_params),
    );
    let bytes = v2.encode();

    std::fs::create_dir_all(&ck.dir)?;
    let final_path = checkpoint_path(&ck.dir, epoch);
    let tmp_path = final_path.with_extension("omck.tmp");
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    // The window a chaos run targets: the tmp file is durable but the
    // final name does not exist yet — resume must survive exactly this.
    // om-fault: kill-point
    om_obs::fault::kill_point("ckpt-save");
    std::fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = std::fs::File::open(&ck.dir) {
        let _ = d.sync_all(); // best-effort directory fsync
    }
    om_obs::emit(
        "checkpoint",
        &[
            ("epoch", (epoch as u64).into()),
            ("bytes", (bytes.len() as u64).into()),
        ],
    );
    Ok(final_path)
}

/// Scan `dir` for the newest decodable checkpoint matching `digest`,
/// restore parameters + optimizer state from it, and return the snapshot.
/// Stray `*.tmp` files (from a process killed mid-save) are removed.
///
/// On `None` the caller must treat the optimizer as *unspecified* and
/// rebuild it: a corrupt `params` section can be detected after the
/// optimizer state was already imported.
pub(crate) fn load_latest(
    dir: &Path,
    digest: u64,
    params: &[Tensor],
    opt: &mut Adadelta,
) -> Option<Snapshot> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut ckpts: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            // A save died between write and rename; the *.omck set is
            // still consistent, so the torn temp file is just deleted.
            om_obs::warn!("removing stray checkpoint temp file {}", path.display());
            let _ = std::fs::remove_file(&path);
        } else if name.starts_with("ep-") && name.ends_with(".omck") {
            ckpts.push(path);
        }
    }
    // Newest first: epoch numbers are zero-padded, so the lexicographic
    // order is the numeric order.
    ckpts.sort();
    for path in ckpts.into_iter().rev() {
        match try_load(&path, digest, params, opt) {
            Ok(snap) => {
                om_obs::emit(
                    "restore",
                    &[("epoch", ((snap.next_epoch.max(1) - 1) as u64).into())],
                );
                om_obs::info!(
                    "resumed from {} (next epoch {})",
                    path.display(),
                    snap.next_epoch
                );
                return Some(snap);
            }
            Err(why) => {
                om_obs::warn!("skipping checkpoint {}: {why}", path.display());
            }
        }
    }
    None
}

fn try_load(
    path: &Path,
    digest: u64,
    params: &[Tensor],
    opt: &mut Adadelta,
) -> Result<Snapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let v2 = CheckpointV2::decode(&bytes).map_err(|e| e.to_string())?;

    // Pure decoding + validation first; nothing is committed until every
    // section has parsed.
    let mut meta = v2.require("meta").map_err(|e| e.to_string())?;
    if meta.remaining() != 16 {
        return Err("malformed meta section".to_string());
    }
    let found_digest = meta.get_u64_le();
    if found_digest != digest {
        return Err(format!(
            "config digest mismatch ({found_digest:016x} != {digest:016x}) — \
             checkpoint belongs to a different run"
        ));
    }
    let next_epoch = meta.get_u64_le() as usize;

    let mut rng_raw = v2.require("rng").map_err(|e| e.to_string())?;
    if rng_raw.remaining() != 32 {
        return Err("malformed rng section".to_string());
    }
    let rng = [
        rng_raw.get_u64_le(),
        rng_raw.get_u64_le(),
        rng_raw.get_u64_le(),
        rng_raw.get_u64_le(),
    ];

    let (stats, valid_rmse) = decode_history(v2.require("history").map_err(|e| e.to_string())?)
        .ok_or("malformed history section")?;
    let (best_rmse, best_epoch, best_params) =
        decode_best(v2.require("best").map_err(|e| e.to_string())?)
            .ok_or("malformed best section")?;
    let opt_state =
        decode_opt_state(v2.require("opt").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;

    // Commit phase. Both imports are individually all-or-nothing; the
    // optimizer goes first so a corrupt params section leaves parameters
    // untouched (the caller rebuilds the optimizer on any failure).
    opt.import_state(&opt_state).map_err(|e| e.to_string())?;
    decode_tensors_into(params, v2.require("params").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;

    Ok(Snapshot {
        next_epoch,
        stats,
        valid_rmse,
        best_rmse,
        best_epoch,
        best_params,
        rng,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_nn::Optimizer as _;
    use om_tensor::{init, seeded_rng};

    fn params() -> Vec<Tensor> {
        let mut rng = seeded_rng(5);
        vec![
            init::normal(&[2, 3], 1.0, &mut rng).requires_grad(),
            init::normal(&[3], 1.0, &mut rng).requires_grad(),
        ]
    }

    fn snapshot() -> Snapshot {
        Snapshot {
            next_epoch: 2,
            stats: vec![EpochStats {
                total: 1.0,
                rating: 0.7,
                scl: 0.2,
                domain: 0.1,
            }],
            valid_rmse: vec![1.25],
            best_rmse: 1.25,
            best_epoch: 0,
            best_params: Some(om_nn::serialize::save_params(&params())),
            rng: [1, 2, 3, 4],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("om-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_and_resume_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let ck = CkptConfig::at(&dir);
        let src = params();
        let mut opt = Adadelta::new(src.clone(), 0.5, 0.9);
        src[0].square().sum_all().backward();
        opt.step();
        opt.zero_grad();
        let snap = snapshot();
        save(&ck, 42, 1, &src, &opt, &snap).unwrap();

        let dst = params();
        let mut opt2 = Adadelta::new(dst.clone(), 0.5, 0.9);
        let back = load_latest(&dir, 42, &dst, &mut opt2).expect("resume");
        assert_eq!(back.next_epoch, 2);
        assert_eq!(back.rng, [1, 2, 3, 4]);
        assert_eq!(back.valid_rmse, vec![1.25]);
        assert_eq!(back.best_epoch, 0);
        assert!(back.best_params.is_some());
        assert_eq!(back.stats[0].total, 1.0);
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
        assert_eq!(opt2.export_state(), opt.export_state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_mismatched_digest_and_cleans_tmp() {
        let dir = tmp_dir("digest");
        let ck = CkptConfig::at(&dir);
        let src = params();
        let opt = Adadelta::new(src.clone(), 0.5, 0.9);
        save(&ck, 7, 0, &src, &opt, &snapshot()).unwrap();
        // Stray temp file from a killed save.
        std::fs::write(dir.join("ep-0001.omck.tmp"), b"torn").unwrap();

        let dst = params();
        let before: Vec<Vec<f32>> = dst.iter().map(|t| t.to_vec()).collect();
        let mut opt2 = Adadelta::new(dst.clone(), 0.5, 0.9);
        assert!(load_latest(&dir, 8, &dst, &mut opt2).is_none(), "digest must gate resume");
        // Mismatch must leave the target untouched…
        for (t, b) in dst.iter().zip(&before) {
            assert_eq!(&t.to_vec(), b);
        }
        // …and the stray tmp file must be gone.
        assert!(!dir.join("ep-0001.omck.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_checkpoint() {
        let dir = tmp_dir("fallback");
        let ck = CkptConfig::at(&dir);
        let src = params();
        let opt = Adadelta::new(src.clone(), 0.5, 0.9);
        save(&ck, 1, 0, &src, &opt, &snapshot()).unwrap();
        let good = save(&ck, 1, 1, &src, &opt, &snapshot()).unwrap();
        // Corrupt the newest (epoch 2) checkpoint.
        let mut snap2 = snapshot();
        snap2.next_epoch = 3;
        let newest = save(&ck, 1, 2, &src, &opt, &snap2).unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();

        let dst = params();
        let mut opt2 = Adadelta::new(dst.clone(), 0.5, 0.9);
        let back = load_latest(&dir, 1, &dst, &mut opt2).expect("older checkpoint works");
        assert_eq!(back.next_epoch, 2, "fell back to {}", good.display());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_resumes_nothing() {
        let dir = tmp_dir("missing");
        let dst = params();
        let mut opt = Adadelta::new(dst.clone(), 0.5, 0.9);
        assert!(load_latest(&dir, 1, &dst, &mut opt).is_none());
    }

    #[test]
    fn digest_separates_runs_but_not_epoch_budget() {
        let cfg = OmniMatchConfig::fast();
        let p = params();
        let base = config_digest(&cfg, 100, 50, &p);
        assert_eq!(base, config_digest(&cfg, 100, 50, &p), "deterministic");
        let mut more_epochs = cfg.clone();
        more_epochs.epochs = 99;
        assert_eq!(
            base,
            config_digest(&more_epochs, 100, 50, &p),
            "epoch budget must not change the digest (resume extends runs)"
        );
        assert_ne!(base, config_digest(&cfg.clone().with_seed(2), 100, 50, &p));
        assert_ne!(base, config_digest(&cfg, 101, 50, &p), "data size");
        let mut other = cfg.clone();
        other.lr = 0.123;
        assert_ne!(base, config_digest(&other, 100, 50, &p), "hyper-params");
    }

    #[test]
    fn from_env_requires_gate() {
        // Deliberately avoids mutating the process environment (other
        // tests run in parallel); the default environment has no OM_CKPT.
        if std::env::var("OM_CKPT").is_err() {
            assert!(CkptConfig::from_env("seed1").is_none());
        }
        let ck = CkptConfig::at("/tmp/x").every(0);
        assert_eq!(ck.every, 1, "cadence clamps to 1");
    }
}
