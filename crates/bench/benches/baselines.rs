//! Substrate and baseline costs: MF fitting, graph propagation training,
//! and each comparator's end-to-end fit on the bench scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use om_baselines::graph::{BipartiteGraph, GraphCF, Propagation};
use om_baselines::mf::{MatrixFactorization, MfConfig};
use om_baselines::{CMF, EMCDR, HeroGraph, LightGCN, PTUPCDR};
use om_bench::bench_scenario;
use om_data::types::Interaction;
use om_tensor::seeded_rng;

fn bench_mf(c: &mut Criterion) {
    let scenario = bench_scenario();
    let refs: Vec<&Interaction> = scenario.source.interactions().iter().collect();
    c.bench_function("substrate/mf_fit", |b| {
        b.iter(|| {
            MatrixFactorization::fit(&refs, MfConfig::default(), &mut seeded_rng(1))
        })
    });
}

fn bench_graph_epochs(c: &mut Criterion) {
    let scenario = bench_scenario();
    let refs: Vec<&Interaction> = scenario.target_train.interactions().iter().collect();
    let mut group = c.benchmark_group("substrate/graph_fit_20epochs");
    group.sample_size(10);
    group.bench_function("lightgcn", |b| {
        b.iter(|| {
            let g = BipartiteGraph::build(&refs);
            let mut m = GraphCF::new(g, 16, 2, Propagation::Light, &mut seeded_rng(1));
            m.fit(20, 0.03);
        })
    });
    group.bench_function("ngcf", |b| {
        b.iter(|| {
            let g = BipartiteGraph::build(&refs);
            let mut m = GraphCF::new(g, 16, 2, Propagation::Nonlinear, &mut seeded_rng(1));
            m.fit(20, 0.03);
        })
    });
    group.finish();
}

fn bench_full_baselines(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("baseline/fit");
    group.sample_size(10);
    group.bench_function("cmf", |b| b.iter(|| CMF::fit(&scenario, 1)));
    group.bench_function("emcdr", |b| b.iter(|| EMCDR::fit(&scenario, 1)));
    group.bench_function("ptupcdr", |b| b.iter(|| PTUPCDR::fit(&scenario, 1)));
    group.bench_function("lightgcn", |b| b.iter(|| LightGCN::fit(&scenario, 1)));
    group.bench_function("herograph", |b| b.iter(|| HeroGraph::fit(&scenario, 1)));
    group.finish();
}

criterion_group!(benches, bench_mf, bench_graph_epochs, bench_full_baselines);
criterion_main!(benches);
