//! A lightweight Rust AST for the semantic lint passes.
//!
//! [`parse`] runs a dependency-free recursive-descent parser over the
//! [`crate::lexer`] token stream and produces just enough structure for
//! the passes in [`crate::semantic`]: the item tree (functions, modules,
//! impl blocks), per-function attribute lists (`#[test]`, `#[cfg(test)]`),
//! and a flat list of [`Event`]s per function body — call paths, method
//! calls (with turbofish generics and the head of the first argument),
//! macro invocations, index expressions and string literals, each with its
//! source line and its index into the token stream so a pass can inspect
//! the surrounding statement.
//!
//! The parser is deliberately *error-tolerant*: it never panics, and on
//! constructs it does not model (trait bodies, `macro_rules!`, exotic
//! generics) it skips balanced token groups rather than failing the file.
//! That is the right trade for a linter — a pass that sees 99% of the
//! bodies with zero build dependencies beats a full grammar it cannot
//! afford. The known blind spots are listed on [`parse`].

use crate::lexer::{LexedFile, Token, TokenKind};

/// A parsed source file: the top-level item tree.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One attribute (`#[...]`), reduced to the identifiers it contains —
/// enough to recognise `#[test]`, `#[cfg(test)]`, `#[inline]` et al.
#[derive(Debug, Clone)]
pub struct Attr {
    /// 1-based line of the `#`.
    pub line: usize,
    /// Identifiers inside the brackets, in order.
    pub idents: Vec<String>,
}

impl Attr {
    /// Whether the attribute mentions `name` anywhere (`cfg(test)` →
    /// `has("test")` is true).
    pub fn has(&self, name: &str) -> bool {
        self.idents.iter().any(|i| i == name)
    }
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A function with a parsed body.
    Fn(FnItem),
    /// An inline module (`mod m { ... }`); leaf declarations (`mod m;`)
    /// become [`Item::Other`].
    Mod(ModItem),
    /// An `impl` block; its functions are parsed like any others.
    Impl(ImplItem),
    /// Anything else (struct, enum, use, const, trait, ...), skipped as a
    /// balanced token group.
    Other {
        /// The introducing keyword (`struct`, `trait`, ...).
        kind: String,
        /// 1-based line.
        line: usize,
    },
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Attributes directly on the function.
    pub attrs: Vec<Attr>,
    /// Body events in source order (empty for bodyless signatures).
    pub events: Vec<Event>,
    /// Token range of the body in `LexedFile::tokens`, exclusive of the
    /// braces; `None` for bodyless signatures.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Whether this is a `#[test]` function.
    pub fn is_test(&self) -> bool {
        self.attrs.iter().any(|a| a.has("test"))
    }
}

/// An inline module.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// 1-based line of the `mod` keyword.
    pub line: usize,
    /// Attributes directly on the module.
    pub attrs: Vec<Attr>,
    /// Nested items.
    pub items: Vec<Item>,
}

impl ModItem {
    /// Whether the module is `#[cfg(test)]`.
    pub fn is_cfg_test(&self) -> bool {
        self.attrs.iter().any(|a| a.has("cfg") && a.has("test"))
    }
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Nested items (mostly functions).
    pub items: Vec<Item>,
}

/// The head of a call argument — the first token after the opening `(`.
/// Enough for the float-reduction pass to classify `fold(0.0, ...)` vs
/// `fold(String::new(), ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgHead {
    /// A numeric literal, verbatim.
    Num(String),
    /// An identifier (`f32::NEG_INFINITY` yields `f32`).
    Ident(String),
    /// Anything else (string, punctuation, closing paren).
    Other,
}

/// One occurrence of interest inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A (possibly multi-segment) path, `a::b::c`, with whether it is
    /// immediately called. `Instant::now()` and a bare `Instant::now`
    /// passed as a value both produce a `Path` — a determinism ban must
    /// catch both.
    Path {
        /// Path segments in order.
        segments: Vec<String>,
        /// Whether the next token is `(`.
        called: bool,
        /// 1-based line.
        line: usize,
        /// Index of the first segment in `LexedFile::tokens`.
        tok: usize,
    },
    /// A method call `.name(...)` or `.name::<T>(...)`.
    Method {
        /// Method name.
        name: String,
        /// Turbofish generic identifiers, if any (`sum::<f32>()` → `["f32"]`).
        generics: Vec<String>,
        /// Head of the first argument (`None` for `()`).
        first_arg: Option<ArgHead>,
        /// 1-based line.
        line: usize,
        /// Index of the method-name token in `LexedFile::tokens`.
        tok: usize,
    },
    /// A macro invocation `name!(...)` / `name![...]` / `name!{...}`.
    Macro {
        /// Macro name.
        name: String,
        /// 1-based line.
        line: usize,
    },
    /// An index expression `expr[...]` (heuristic: `[` directly after an
    /// identifier, `)`, or `]` — so `&[T]`, `#[attr]` and `vec![...]` do
    /// not count).
    Index {
        /// 1-based line.
        line: usize,
        /// Index of the `[` token in `LexedFile::tokens`.
        tok: usize,
    },
    /// A string literal.
    Str {
        /// Literal content (delimiters stripped).
        value: String,
        /// 1-based line.
        line: usize,
    },
}

impl Event {
    /// The event's source line.
    pub fn line(&self) -> usize {
        match self {
            Event::Path { line, .. }
            | Event::Method { line, .. }
            | Event::Macro { line, .. }
            | Event::Index { line, .. }
            | Event::Str { line, .. } => *line,
        }
    }
}

/// Run `f` over every function in the file, with `in_test` true when the
/// function is `#[test]` or lives under a `#[cfg(test)]` module.
pub fn walk_fns(file: &File, mut f: impl FnMut(&FnItem, bool)) {
    fn go(items: &[Item], in_test: bool, f: &mut impl FnMut(&FnItem, bool)) {
        for item in items {
            match item {
                Item::Fn(func) => f(func, in_test || func.is_test()),
                Item::Mod(m) => go(&m.items, in_test || m.is_cfg_test(), f),
                Item::Impl(i) => go(&i.items, in_test, f),
                Item::Other { .. } => {}
            }
        }
    }
    go(&file.items, false, &mut f);
}

/// Parse a lexed file into an item tree.
///
/// Known blind spots, all harmless for the current passes: default method
/// bodies inside `trait` blocks are skipped (traits in this workspace
/// declare signatures only), `macro_rules!` definitions are skipped, and
/// expressions inside skipped items (e.g. a `const` initialiser) produce
/// no events.
pub fn parse(lexed: &LexedFile) -> File {
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
    };
    File {
        items: p.items(true),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

/// Identifiers that introduce an item skipped as a balanced group.
const SKIPPED_ITEMS: &[&str] = &[
    "struct", "enum", "union", "trait", "use", "type", "static", "const", "extern",
    "macro_rules",
];

impl<'a> Parser<'a> {
    fn kind(&self, at: usize) -> Option<&'a TokenKind> {
        self.toks.get(at).map(|t| &t.kind)
    }

    fn line(&self, at: usize) -> usize {
        self.toks.get(at).map(|t| t.line).unwrap_or(0)
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        matches!(self.kind(at), Some(TokenKind::Punct(p)) if *p == c)
    }

    fn ident(&self, at: usize) -> Option<&'a str> {
        match self.kind(at) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Parse items until end of input, or (when `top` is false) until the
    /// `}` closing the enclosing block, which is left for the caller.
    fn items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut attrs: Vec<Attr> = Vec::new();
        let mut is_pub = false;
        while let Some(kind) = self.kind(self.i) {
            match kind {
                TokenKind::Punct('}') if !top => break,
                TokenKind::Punct('#') => {
                    if let Some(a) = self.attr() {
                        attrs.push(a);
                    }
                }
                TokenKind::Ident(s) => match s.as_str() {
                    "pub" => {
                        is_pub = true;
                        self.i += 1;
                        // pub(crate) / pub(in path)
                        if self.is_punct(self.i, '(') {
                            self.skip_balanced('(', ')');
                        }
                    }
                    // Qualifiers that may precede `fn` — keep attrs pending.
                    "unsafe" | "async" => {
                        self.i += 1;
                    }
                    "const" if self.ident(self.i + 1) == Some("fn") => {
                        self.i += 1;
                    }
                    "fn" => {
                        let func = self.fn_item(std::mem::take(&mut attrs), is_pub);
                        is_pub = false;
                        items.push(Item::Fn(func));
                    }
                    "mod" => {
                        let m = self.mod_item(std::mem::take(&mut attrs));
                        is_pub = false;
                        items.push(m);
                    }
                    "impl" => {
                        let line = self.line(self.i);
                        self.i += 1;
                        // Skip to the block opener at paren depth 0.
                        let mut paren = 0i32;
                        while let Some(k) = self.kind(self.i) {
                            match k {
                                TokenKind::Punct('(') => paren += 1,
                                TokenKind::Punct(')') => paren -= 1,
                                TokenKind::Punct('{') if paren == 0 => break,
                                TokenKind::Punct(';') if paren == 0 => break,
                                _ => {}
                            }
                            self.i += 1;
                        }
                        if self.is_punct(self.i, '{') {
                            self.i += 1;
                            let inner = self.items(false);
                            if self.is_punct(self.i, '}') {
                                self.i += 1;
                            }
                            items.push(Item::Impl(ImplItem { line, items: inner }));
                        } else {
                            self.i += 1;
                            items.push(Item::Other {
                                kind: "impl".to_string(),
                                line,
                            });
                        }
                        attrs.clear();
                        is_pub = false;
                    }
                    kw if SKIPPED_ITEMS.contains(&kw) => {
                        let line = self.line(self.i);
                        self.skip_item();
                        items.push(Item::Other {
                            kind: kw.to_string(),
                            line,
                        });
                        attrs.clear();
                        is_pub = false;
                    }
                    _ => {
                        self.i += 1;
                    }
                },
                _ => {
                    self.i += 1;
                }
            }
        }
        items
    }

    /// Parse `#[...]` starting at the current `#`. A bare `#` not followed
    /// by `[` (or `![`, for inner attributes) is consumed alone.
    fn attr(&mut self) -> Option<Attr> {
        let line = self.line(self.i);
        self.i += 1; // '#'
        if self.is_punct(self.i, '!') {
            self.i += 1;
        }
        if !self.is_punct(self.i, '[') {
            return None;
        }
        let mut depth = 0i32;
        let mut idents = Vec::new();
        while let Some(k) = self.kind(self.i) {
            match k {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        break;
                    }
                }
                TokenKind::Ident(s) => idents.push(s.clone()),
                _ => {}
            }
            self.i += 1;
        }
        Some(Attr { line, idents })
    }

    /// Skip an item introduced by a keyword in [`SKIPPED_ITEMS`]: advance
    /// to the `;` terminating it or the balanced `{...}` block it opens,
    /// whichever comes first at bracket depth 0.
    fn skip_item(&mut self) {
        self.i += 1; // the keyword
        let mut depth = 0i32;
        while let Some(k) = self.kind(self.i) {
            match k {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(';') if depth == 0 => {
                    self.i += 1;
                    return;
                }
                TokenKind::Punct('{') if depth == 0 => {
                    self.skip_balanced('{', '}');
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Skip a balanced `open ... close` group starting at the current
    /// token (which must be `open`).
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(k) = self.kind(self.i) {
            match k {
                TokenKind::Punct(c) if *c == open => depth += 1,
                TokenKind::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Parse `fn name ... { body }` starting at `fn`.
    fn fn_item(&mut self, attrs: Vec<Attr>, is_pub: bool) -> FnItem {
        let line = self.line(self.i);
        self.i += 1; // 'fn'
        let name = self.ident(self.i).unwrap_or("").to_string();
        if !name.is_empty() {
            self.i += 1;
        }
        // Signature: scan to the body `{` or the terminating `;` at paren
        // depth 0. Angle brackets in generics/returns need no tracking —
        // neither `{` nor `;` occurs inside them in a signature.
        let mut paren = 0i32;
        loop {
            match self.kind(self.i) {
                None => {
                    return FnItem {
                        name,
                        line,
                        is_pub,
                        attrs,
                        events: Vec::new(),
                        body: None,
                    }
                }
                Some(TokenKind::Punct('(')) | Some(TokenKind::Punct('[')) => paren += 1,
                Some(TokenKind::Punct(')')) | Some(TokenKind::Punct(']')) => paren -= 1,
                Some(TokenKind::Punct(';')) if paren == 0 => {
                    self.i += 1;
                    return FnItem {
                        name,
                        line,
                        is_pub,
                        attrs,
                        events: Vec::new(),
                        body: None,
                    };
                }
                Some(TokenKind::Punct('{')) if paren == 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        // Body: find the matching `}` and extract events from the slice.
        let body_start = self.i;
        self.skip_balanced('{', '}');
        let body_end = self.i; // one past the closing '}'
        let range = (body_start + 1, body_end.saturating_sub(1));
        let events = body_events(self.toks, range.0, range.1);
        FnItem {
            name,
            line,
            is_pub,
            attrs,
            events,
            body: Some(range),
        }
    }

    /// Parse `mod name;` or `mod name { items }` starting at `mod`.
    fn mod_item(&mut self, attrs: Vec<Attr>) -> Item {
        let line = self.line(self.i);
        self.i += 1; // 'mod'
        let name = self.ident(self.i).unwrap_or("").to_string();
        if !name.is_empty() {
            self.i += 1;
        }
        if self.is_punct(self.i, '{') {
            self.i += 1;
            let items = self.items(false);
            if self.is_punct(self.i, '}') {
                self.i += 1;
            }
            Item::Mod(ModItem {
                name,
                line,
                attrs,
                items,
            })
        } else {
            if self.is_punct(self.i, ';') {
                self.i += 1;
            }
            Item::Other {
                kind: "mod".to_string(),
                line,
            }
        }
    }
}

/// Identifiers that can directly precede `[` without the bracket being an
/// index expression (`for x in arr`, `&mut [0; 4]`, `as [u8; 2]`, ...).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "mut", "dyn", "in", "ref", "as", "return", "break", "else", "match", "move", "if",
    "while", "let", "where", "box",
];

/// Extract [`Event`]s from the token range `[start, end)` of a function
/// body.
fn body_events(toks: &[Token], start: usize, end: usize) -> Vec<Event> {
    let end = end.min(toks.len());
    let mut events = Vec::new();
    let mut j = start;
    while j < end {
        let t = &toks[j];
        match &t.kind {
            TokenKind::Str(s) => {
                events.push(Event::Str {
                    value: s.clone(),
                    line: t.line,
                });
                j += 1;
            }
            TokenKind::Ident(s) => {
                // Macro invocation: name ! ( | [ | {
                if matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokenKind::Punct('!')))
                    && matches!(
                        toks.get(j + 2).map(|t| &t.kind),
                        Some(TokenKind::Punct('(' | '[' | '{'))
                    )
                {
                    events.push(Event::Macro {
                        name: s.clone(),
                        line: t.line,
                    });
                    j += 2; // continue inside the macro body: args still scanned
                    continue;
                }
                // Path: name (:: name)*
                let tok = j;
                let line = t.line;
                let mut segments = vec![s.clone()];
                let mut k = j + 1;
                loop {
                    let double_colon = matches!(
                        toks.get(k).map(|t| &t.kind),
                        Some(TokenKind::Punct(':'))
                    ) && matches!(
                        toks.get(k + 1).map(|t| &t.kind),
                        Some(TokenKind::Punct(':'))
                    );
                    if !double_colon {
                        break;
                    }
                    match toks.get(k + 2).map(|t| &t.kind) {
                        Some(TokenKind::Ident(seg)) => {
                            segments.push(seg.clone());
                            k += 3;
                        }
                        // Turbofish in a path (`Vec::<u8>::new`): skip the
                        // generic group and keep going.
                        Some(TokenKind::Punct('<')) => {
                            k += 2;
                            let mut depth = 0i32;
                            while k < end {
                                match &toks[k].kind {
                                    TokenKind::Punct('<') => depth += 1,
                                    TokenKind::Punct('>') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            k += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let called = matches!(toks.get(k).map(|t| &t.kind), Some(TokenKind::Punct('(')));
                events.push(Event::Path {
                    segments,
                    called,
                    line,
                    tok,
                });
                j = k;
            }
            TokenKind::Punct('.') => {
                // Method call or field access: . name [::<...>] (
                if let Some(TokenKind::Ident(name)) = toks.get(j + 1).map(|t| &t.kind) {
                    let line = toks[j + 1].line;
                    let tok = j + 1;
                    let mut k = j + 2;
                    let mut generics = Vec::new();
                    // Turbofish: `::<...>`
                    if matches!(toks.get(k).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                        && matches!(toks.get(k + 1).map(|t| &t.kind), Some(TokenKind::Punct(':')))
                        && matches!(toks.get(k + 2).map(|t| &t.kind), Some(TokenKind::Punct('<')))
                    {
                        k += 2;
                        let mut depth = 0i32;
                        while k < end {
                            match &toks[k].kind {
                                TokenKind::Punct('<') => depth += 1,
                                TokenKind::Punct('>') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                TokenKind::Ident(g) => generics.push(g.clone()),
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    if matches!(toks.get(k).map(|t| &t.kind), Some(TokenKind::Punct('('))) {
                        let first_arg = match toks.get(k + 1).map(|t| &t.kind) {
                            Some(TokenKind::Num(n)) => Some(ArgHead::Num(n.clone())),
                            Some(TokenKind::Ident(i)) => Some(ArgHead::Ident(i.clone())),
                            Some(TokenKind::Punct(')')) => None,
                            Some(_) => Some(ArgHead::Other),
                            None => None,
                        };
                        events.push(Event::Method {
                            name: name.clone(),
                            generics,
                            first_arg,
                            line,
                            tok,
                        });
                        j = k; // the '(' and beyond still scanned (nested calls)
                    } else {
                        // Field access — consume the name so it is not
                        // re-read as a path start.
                        j = k;
                    }
                } else {
                    j += 1;
                }
            }
            TokenKind::Punct('[') => {
                let is_index = match toks.get(j.wrapping_sub(1)).map(|t| &t.kind) {
                    Some(TokenKind::Ident(prev)) => {
                        !NON_INDEX_PRECEDERS.contains(&prev.as_str())
                    }
                    Some(TokenKind::Punct(')')) | Some(TokenKind::Punct(']')) => true,
                    _ => false,
                } && j > start;
                // `name![...]` macro brackets never match: the `!` between
                // the identifier and `[` makes the preceder a Punct('!').
                if is_index {
                    events.push(Event::Index { line: t.line, tok: j });
                }
                j += 1;
            }
            _ => {
                j += 1;
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn find_fn<'a>(items: &'a [Item], name: &str) -> Option<&'a FnItem> {
        for item in items {
            match item {
                Item::Fn(f) if f.name == name => return Some(f),
                Item::Fn(_) | Item::Other { .. } => {}
                Item::Mod(m) => {
                    if let Some(f) = find_fn(&m.items, name) {
                        return Some(f);
                    }
                }
                Item::Impl(i) => {
                    if let Some(f) = find_fn(&i.items, name) {
                        return Some(f);
                    }
                }
            }
        }
        None
    }

    fn fn_named<'a>(file: &'a File, name: &str) -> &'a FnItem {
        find_fn(&file.items, name).expect("function not found")
    }

    #[test]
    fn parses_items_and_bodies() {
        let src = r#"
            pub struct S { x: [u8; 4] }
            impl S {
                pub fn method(&self) -> f32 {
                    let t = Instant::now();
                    self.xs.iter().sum::<f32>()
                }
            }
            mod helpers {
                fn helper() { panic!("no"); }
            }
        "#;
        let file = parse_src(src);
        let method = fn_named(&file, "method");
        assert!(method.is_pub);
        assert!(method.events.iter().any(|e| matches!(
            e,
            Event::Path { segments, called: true, .. }
                if segments == &["Instant".to_string(), "now".to_string()]
        )));
        assert!(method.events.iter().any(|e| matches!(
            e,
            Event::Method { name, generics, .. }
                if name == "sum" && generics == &["f32".to_string()]
        )));
        let helper = fn_named(&file, "helper");
        assert!(helper
            .events
            .iter()
            .any(|e| matches!(e, Event::Macro { name, .. } if name == "panic")));
    }

    #[test]
    fn test_attributes_and_cfg_test_mods_are_flagged() {
        let src = r#"
            #[test]
            fn direct_test() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper_in_tests() { y.unwrap(); }
            }
            fn production() { z.unwrap(); }
        "#;
        let file = parse_src(src);
        let mut in_test = Vec::new();
        walk_fns(&file, |f, t| in_test.push((f.name.clone(), t)));
        assert_eq!(
            in_test,
            vec![
                ("direct_test".to_string(), true),
                ("helper_in_tests".to_string(), true),
                ("production".to_string(), false),
            ]
        );
    }

    #[test]
    fn index_heuristic_skips_attrs_slices_and_macros() {
        let src = r#"
            fn f(xs: &[f32], m: &mut [u8]) -> f32 {
                let v = vec![1, 2, 3];
                let a: [u8; 2] = [0, 1];
                let y = xs[0];
                let z = (g())[1];
                y + z
            }
        "#;
        let file = parse_src(src);
        let f = fn_named(&file, "f");
        let index_lines: Vec<usize> = f
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Index { line, .. } => Some(*line),
                _ => None,
            })
            .collect();
        assert_eq!(index_lines, vec![5, 6], "{:?}", f.events);
    }

    #[test]
    fn uncalled_path_and_fold_arg_are_captured() {
        let src = r#"
            fn f(xs: &[f32]) -> f32 {
                let _clock = cell.get_or_init(Instant::now);
                xs.iter().fold(0.0f32, |a, b| a + b)
            }
        "#;
        let file = parse_src(src);
        let f = fn_named(&file, "f");
        assert!(f.events.iter().any(|e| matches!(
            e,
            Event::Path { segments, called: false, .. }
                if segments == &["Instant".to_string(), "now".to_string()]
        )));
        assert!(f.events.iter().any(|e| matches!(
            e,
            Event::Method { name, first_arg: Some(ArgHead::Num(n)), .. }
                if name == "fold" && n == "0.0f32"
        )));
    }

    #[test]
    fn strings_in_bodies_become_events() {
        let src = r#"
            fn f() -> String {
                std::env::var("OM_THREADS").unwrap_or_default()
            }
        "#;
        let file = parse_src(src);
        let f = fn_named(&file, "f");
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::Str { value, .. } if value == "OM_THREADS")));
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::Method { name, .. } if name == "unwrap_or_default")));
    }
}
