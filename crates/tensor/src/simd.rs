//! Runtime-dispatched AVX2 microkernels behind [`crate::kernels`].
//!
//! Dispatch policy: the mode is decided once per process from `OM_SIMD`
//! (`auto`, the default, enables the vector path when the CPU reports
//! AVX2; `off` forces the portable scalar path) and cached in an atomic.
//! Every public function here is *safe*: it returns `false`/`None` when
//! the vector path is unavailable so the caller runs its scalar twin, and
//! only enters the `unsafe` AVX2 code after the cached CPUID check.
//!
//! Two numeric tiers, enforced by `tests/parity.rs`:
//!
//! * **Bitwise** — kernels whose vector port performs exactly the scalar
//!   operation sequence per output element: the GEMM micro-tile
//!   (separate multiply and add, never FMA, `p` increasing), lanewise
//!   elementwise ops, `pair_rows` copies and int8 dequantisation. These
//!   register `ulp_tolerance` 0.
//! * **ULP-bounded** — kernels that reorder a reduction across the
//!   vector lanes ([`sum_chunk`]) or substitute a polynomial `exp`
//!   ([`log_softmax_row`]). Still deterministic for a fixed input (the
//!   lane shape is fixed), but not bit-equal to the serial twin; each
//!   registers a measured, margin-padded ULP tolerance.
//!
//! All kernels assume finite inputs (no NaN/±Inf), matching the
//! documented contract of the scalar kernels they shadow.

use std::sync::atomic::{AtomicU8, Ordering};

/// Mode not decided yet.
const UNINIT: u8 = 0;
/// Scalar fallback (no AVX2, or `OM_SIMD=off`).
const SCALAR: u8 = 1;
/// AVX2 vector path.
const AVX2: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(UNINIT);

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Decide the mode from `OM_SIMD` + CPUID and cache it. Racing threads
/// compute the same value, so a relaxed store is enough.
#[cold]
fn init_mode() -> u8 {
    let want = std::env::var("OM_SIMD").unwrap_or_default();
    let m = match want.as_str() {
        "" | "auto" => {
            if avx2_available() {
                AVX2
            } else {
                SCALAR
            }
        }
        "off" => SCALAR,
        other => panic!("OM_SIMD: unrecognised value `{other}` (expected `auto` or `off`)"),
    };
    MODE.store(m, Ordering::Relaxed);
    m
}

#[inline]
fn mode() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m == UNINIT {
        init_mode()
    } else {
        m
    }
}

/// Whether the AVX2 path is active (CPU supports it and `OM_SIMD` did not
/// force it off). Exposed so tests and benches can report the mode and
/// pick the right parity tier.
#[inline]
pub fn active() -> bool {
    mode() == AVX2
}

/// Human-readable dispatch label for logs and bench reports.
pub fn mode_label() -> &'static str {
    if active() {
        "avx2"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// Safe dispatch wrappers. Each gates on `active()` and hands the slices to
// the AVX2 implementation; `false`/`None` means "run the scalar twin".
// ---------------------------------------------------------------------------

/// Sum one reduction chunk. Fixed lane shape (4×8 accumulators combined
/// in a fixed order), so the result depends only on the input. Tolerance
/// tier: reordered reduction.
#[inline]
pub fn sum_chunk(x: &[f32]) -> Option<f32> {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        return Some(unsafe { x86::sum_chunk_avx2(x) });
    }
    let _ = x;
    None
}

/// GEMM row block `c_block += a[row0..row0+rows] · b`, same contract as
/// the scalar `gemm_rows`: per output element the accumulation order is
/// `p = 0..k` with separate multiply and add (no FMA), and a four-row
/// group skips `p` only when all four lanes are exactly zero. Bitwise
/// tier.
#[inline]
pub fn gemm_rows(a: &[f32], b: &[f32], c_block: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::gemm_rows_avx2(a, b, c_block, row0, rows, k, n) };
        return true;
    }
    let _ = (a, b, c_block, row0, rows, k, n);
    false
}

/// Lanewise `out[i] = a[i] + b[i]`. Bitwise tier.
#[inline]
pub fn add_chunk(a: &[f32], b: &[f32], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::binop_avx2::<0>(a, b, out) };
        return true;
    }
    let _ = (a, b, out);
    false
}

/// Lanewise `out[i] = a[i] - b[i]`. Bitwise tier.
#[inline]
pub fn sub_chunk(a: &[f32], b: &[f32], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::binop_avx2::<1>(a, b, out) };
        return true;
    }
    let _ = (a, b, out);
    false
}

/// Lanewise `out[i] = a[i] * b[i]`. Bitwise tier.
#[inline]
pub fn mul_chunk(a: &[f32], b: &[f32], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::binop_avx2::<2>(a, b, out) };
        return true;
    }
    let _ = (a, b, out);
    false
}

/// Lanewise `out[i] = x[i] * s`. Bitwise tier.
#[inline]
pub fn scale_chunk(x: &[f32], s: f32, out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::scale_avx2(x, s, out) };
        return true;
    }
    let _ = (x, s, out);
    false
}

/// One log-softmax row: `out[j] = src[j] - (max + ln Σ exp(src - max))`.
/// Uses a polynomial vector `exp` and a lane-parallel exp-sum, so this is
/// the tolerance tier. Finite inputs only.
#[inline]
pub fn log_softmax_row(src: &[f32], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::log_softmax_row_avx2(src, out) };
        return true;
    }
    let _ = (src, out);
    false
}

/// Dequantise one int8 row: `out[j] = q[j] as f32 * scale`. The int→float
/// conversion is exact for |q| ≤ 127 and the multiply is the same single
/// rounding as the scalar loop, so this is the bitwise tier.
#[inline]
pub fn dequant_row(q: &[i8], scale: f32, out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::dequant_row_avx2(q, scale, out) };
        return true;
    }
    let _ = (q, scale, out);
    false
}

/// Fill a block of `pair_rows` output rows `[r0, r0 + block/(du+di))`
/// with `users[r/n] ⊕ items[r%n]` using vector copies. Pure copies —
/// bitwise tier (NaN payloads would even survive; loads/stores never
/// quieten).
#[inline]
pub fn pair_fill(users: &[f32], items: &[f32], du: usize, di: usize, n_items: usize, r0: usize, block: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` implies `is_x86_feature_detected!("avx2")`.
        unsafe { x86::pair_fill_avx2(users, items, du, di, n_items, r0, block) };
        return true;
    }
    let _ = (users, items, du, di, n_items, r0, block);
    false
}

// ---------------------------------------------------------------------------
// AVX2 implementations (x86-64 only).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    // SAFETY: every function in this module requires AVX2; the safe
    // wrappers above only call in after the cached CPUID check. Slice
    // bounds for the raw loads/stores are argued at each site.
    unsafe fn hsum_fixed(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is exactly 8 f32s; unaligned store is allowed.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) };
        // Fixed left-to-right combine so the result is input-deterministic.
        let mut t = 0.0f32;
        for l in lanes {
            t += l;
        }
        t
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (see module contract); loads stay in bounds by
    // the loop conditions.
    pub(super) unsafe fn sum_chunk_avx2(x: &[f32]) -> f32 {
        let n = x.len();
        let p = x.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            // SAFETY: i+32 <= n, so all four 8-wide loads are in bounds.
            unsafe {
                acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(p.add(i)));
                acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(p.add(i + 8)));
                acc2 = _mm256_add_ps(acc2, _mm256_loadu_ps(p.add(i + 16)));
                acc3 = _mm256_add_ps(acc3, _mm256_loadu_ps(p.add(i + 24)));
            }
            i += 32;
        }
        while i + 8 <= n {
            // SAFETY: i+8 <= n keeps the load in bounds.
            unsafe {
                acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(p.add(i)));
            }
            i += 8;
        }
        // Fixed combine tree: (0+1) + (2+3), then lanes left-to-right.
        let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        // SAFETY: AVX2 is enabled for this fn (module contract).
        let mut t = unsafe { hsum_fixed(acc) };
        // Scalar tail, left-to-right.
        for &v in &x[i..] {
            t += v;
        }
        t
    }

    /// `OP`: 0 = add, 1 = sub, 2 = mul (const so each instantiation
    /// compiles to a straight-line lanewise loop).
    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); loads/stores bounded below.
    pub(super) unsafe fn binop_avx2<const OP: u8>(a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), out.len());
        debug_assert_eq!(b.len(), out.len());
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i+8 <= n == len of all three slices.
            unsafe {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                let v = match OP {
                    0 => _mm256_add_ps(va, vb),
                    1 => _mm256_sub_ps(va, vb),
                    _ => _mm256_mul_ps(va, vb),
                };
                _mm256_storeu_ps(po.add(i), v);
            }
            i += 8;
        }
        while i < n {
            out[i] = match OP {
                0 => a[i] + b[i],
                1 => a[i] - b[i],
                _ => a[i] * b[i],
            };
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); loads/stores bounded below.
    pub(super) unsafe fn scale_avx2(x: &[f32], s: f32, out: &mut [f32]) {
        debug_assert_eq!(x.len(), out.len());
        let n = out.len();
        let (px, po) = (x.as_ptr(), out.as_mut_ptr());
        let vs = _mm256_set1_ps(s);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i+8 <= n == x.len() == out.len().
            unsafe {
                _mm256_storeu_ps(po.add(i), _mm256_mul_ps(_mm256_loadu_ps(px.add(i)), vs));
            }
            i += 8;
        }
        while i < n {
            out[i] = x[i] * s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); loads/stores bounded below.
    pub(super) unsafe fn dequant_row_avx2(q: &[i8], scale: f32, out: &mut [f32]) {
        debug_assert_eq!(q.len(), out.len());
        let n = out.len();
        let (pq, po) = (q.as_ptr(), out.as_mut_ptr());
        let vs = _mm256_set1_ps(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i+8 <= n, so the 8-byte load and 8-float store are
            // in bounds; `cvtepi8_epi32` sign-extends the low 8 bytes.
            unsafe {
                let bytes = _mm_loadl_epi64(pq.add(i) as *const __m128i);
                let ints = _mm256_cvtepi8_epi32(bytes);
                let vals = _mm256_cvtepi32_ps(ints);
                _mm256_storeu_ps(po.add(i), _mm256_mul_ps(vals, vs));
            }
            i += 8;
        }
        while i < n {
            out[i] = q[i] as f32 * scale;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); copy bounds argued below.
    unsafe fn copy_avx2(src: &[f32], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let n = dst.len();
        let (ps, pd) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i+8 <= n == src.len() == dst.len().
            unsafe {
                _mm256_storeu_ps(pd.add(i), _mm256_loadu_ps(ps.add(i)));
            }
            i += 8;
        }
        while i < n {
            dst[i] = src[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract). The caller (kernels::pair_rows)
    // guarantees `block` holds whole `du+di` rows starting at global pair
    // row `r0`, with `users`/`items` large enough for every `r/n`, `r%n`
    // in the block.
    pub(super) unsafe fn pair_fill_avx2(
        users: &[f32],
        items: &[f32],
        du: usize,
        di: usize,
        n_items: usize,
        r0: usize,
        block: &mut [f32],
    ) {
        let row = du + di;
        for (dr, orow) in block.chunks_mut(row).enumerate() {
            let r = r0 + dr;
            let (bi, ii) = (r / n_items, r % n_items);
            let (user_part, item_part) = orow.split_at_mut(du);
            // SAFETY: AVX2 enabled for this fn; slice lengths match.
            unsafe {
                copy_avx2(&users[bi * du..(bi + 1) * du], user_part);
                copy_avx2(&items[ii * di..(ii + 1) * di], item_part);
            }
        }
    }

    // -- vector exp (Cephes-style expf) -------------------------------------

    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -87.336_54;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    /// ln 2, split hi/lo for an exact-ish argument reduction.
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_2e-4;
    const P1: f32 = 1.398_2e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_58e-2;
    const P4: f32 = 0.166_666_66;
    const P5: f32 = 0.500_000_1;

    /// Lanewise `exp(x)` for finite inputs, ~2 ULP relative error:
    /// reduce `x = m·ln2 + r`, evaluate a degree-6 polynomial on `r`,
    /// rescale by `2^m` through the exponent bits.
    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); no memory access.
    unsafe fn exp256(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
        let m = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _mm256_set1_ps(0.5),
        ));
        let r = _mm256_sub_ps(x, _mm256_mul_ps(m, _mm256_set1_ps(LN2_HI)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(m, _mm256_set1_ps(LN2_LO)));
        let r2 = _mm256_mul_ps(r, r);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P1));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P2));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P3));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P4));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P5));
        y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, r2), r), _mm256_set1_ps(1.0));
        // 2^m via the exponent field (m is within [-127, 127] after the
        // clamp above, so the biased exponent cannot wrap).
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(m),
            _mm256_set1_epi32(0x7f),
        )));
        _mm256_mul_ps(y, pow2)
    }

    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); loads/stores bounded below.
    pub(super) unsafe fn log_softmax_row_avx2(src: &[f32], out: &mut [f32]) {
        debug_assert_eq!(src.len(), out.len());
        let n = src.len();
        if n == 0 {
            return;
        }
        let ps = src.as_ptr();
        let po = out.as_mut_ptr();
        // Pass 1: row max (exact — max is order-independent for finite
        // inputs).
        let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i+8 <= n keeps the load in bounds.
            unsafe {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(ps.add(i)));
            }
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is exactly 8 f32s.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), vmax) };
        let mut mx = f32::NEG_INFINITY;
        for l in lanes {
            mx = mx.max(l);
        }
        for &v in &src[i..] {
            mx = mx.max(v);
        }
        // Pass 2: Σ exp(x - max); vector lanes accumulate in parallel and
        // combine in a fixed order, the ragged tail uses scalar exp.
        let vmx = _mm256_set1_ps(mx);
        let mut vsum = _mm256_setzero_ps();
        let mut i2 = 0usize;
        while i2 + 8 <= n {
            // SAFETY: i2+8 <= n keeps the load in bounds; exp256 is pure.
            unsafe {
                let e = exp256(_mm256_sub_ps(_mm256_loadu_ps(ps.add(i2)), vmx));
                vsum = _mm256_add_ps(vsum, e);
            }
            i2 += 8;
        }
        // SAFETY: AVX2 enabled for this fn (module contract).
        let mut total = unsafe { hsum_fixed(vsum) };
        for &v in &src[i2..] {
            total += (v - mx).exp();
        }
        let lse = mx + total.ln();
        // Pass 3: out = x - lse, lanewise.
        let vlse = _mm256_set1_ps(lse);
        let mut i3 = 0usize;
        while i3 + 8 <= n {
            // SAFETY: i3+8 <= n == src.len() == out.len().
            unsafe {
                _mm256_storeu_ps(po.add(i3), _mm256_sub_ps(_mm256_loadu_ps(ps.add(i3)), vlse));
            }
            i3 += 8;
        }
        while i3 < n {
            out[i3] = src[i3] - lse;
            i3 += 1;
        }
    }

    // -- GEMM micro-tile -----------------------------------------------------

    /// Single output row `c_row += a_row · b`, vectorised over `j` with
    /// 16-wide then 8-wide tiles and a scalar tail. Per element the order
    /// is `p = 0..k` with separate mul/add, identical to the scalar
    /// kernel; `a_row[p] == 0.0` skips exactly like the scalar kernel.
    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); all loads/stores bounded by
    // the tile loop conditions against `n` and `k`.
    unsafe fn gemm_one_row_avx2(a_row: &[f32], b: &[f32], c_row: &mut [f32], k: usize, n: usize) {
        let pb = b.as_ptr();
        let pc = c_row.as_mut_ptr();
        let mut jt = 0usize;
        while jt + 16 <= n {
            // SAFETY: jt+16 <= n bounds both c tiles; p*n+jt+16 <= k*n
            // bounds the b loads.
            unsafe {
                let mut acc0 = _mm256_loadu_ps(pc.add(jt));
                let mut acc1 = _mm256_loadu_ps(pc.add(jt + 8));
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(a_ip);
                    let b0 = _mm256_loadu_ps(pb.add(p * n + jt));
                    let b1 = _mm256_loadu_ps(pb.add(p * n + jt + 8));
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, b0));
                    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, b1));
                }
                _mm256_storeu_ps(pc.add(jt), acc0);
                _mm256_storeu_ps(pc.add(jt + 8), acc1);
            }
            jt += 16;
        }
        if jt + 8 <= n {
            // SAFETY: jt+8 <= n bounds the c tile and each b load.
            unsafe {
                let mut acc0 = _mm256_loadu_ps(pc.add(jt));
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(a_ip);
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(pb.add(p * n + jt))));
                }
                _mm256_storeu_ps(pc.add(jt), acc0);
            }
            jt += 8;
        }
        if jt < n {
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for j in jt..n {
                    c_row[j] += a_ip * b_row[j];
                }
            }
        }
        let _ = k;
    }

    /// Four-row micro-tile: 16 output columns held in 8 accumulators
    /// across the full `p` loop, `b` streamed once per tile. The skip
    /// condition (all four `a` lanes exactly zero) and the per-element
    /// order match the scalar four-row kernel bit for bit.
    #[target_feature(enable = "avx2")]
    // SAFETY: AVX2 only (module contract); bounds argued per tile below.
    pub(super) unsafe fn gemm_rows_avx2(
        a: &[f32],
        b: &[f32],
        c_block: &mut [f32],
        row0: usize,
        rows: usize,
        k: usize,
        n: usize,
    ) {
        let pb = b.as_ptr();
        let mut i = 0usize;
        while i + 4 <= rows {
            let (r0, r1, r2, r3) = (row0 + i, row0 + i + 1, row0 + i + 2, row0 + i + 3);
            let a0_row = &a[r0 * k..(r0 + 1) * k];
            let a1_row = &a[r1 * k..(r1 + 1) * k];
            let a2_row = &a[r2 * k..(r2 + 1) * k];
            let a3_row = &a[r3 * k..(r3 + 1) * k];
            let (c01, c23) = c_block[i * n..(i + 4) * n].split_at_mut(2 * n);
            let (c0, c1) = c01.split_at_mut(n);
            let (c2, c3) = c23.split_at_mut(n);
            let (pc0, pc1, pc2, pc3) = (c0.as_mut_ptr(), c1.as_mut_ptr(), c2.as_mut_ptr(), c3.as_mut_ptr());
            let mut jt = 0usize;
            while jt + 16 <= n {
                // SAFETY: jt+16 <= n bounds every c tile; p*n+jt+16 <=
                // k*n bounds the b loads.
                unsafe {
                    let mut acc00 = _mm256_loadu_ps(pc0.add(jt));
                    let mut acc01 = _mm256_loadu_ps(pc0.add(jt + 8));
                    let mut acc10 = _mm256_loadu_ps(pc1.add(jt));
                    let mut acc11 = _mm256_loadu_ps(pc1.add(jt + 8));
                    let mut acc20 = _mm256_loadu_ps(pc2.add(jt));
                    let mut acc21 = _mm256_loadu_ps(pc2.add(jt + 8));
                    let mut acc30 = _mm256_loadu_ps(pc3.add(jt));
                    let mut acc31 = _mm256_loadu_ps(pc3.add(jt + 8));
                    for p in 0..k {
                        let a0 = a0_row[p];
                        let a1 = a1_row[p];
                        let a2 = a2_row[p];
                        let a3 = a3_row[p];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm256_loadu_ps(pb.add(p * n + jt));
                        let b1 = _mm256_loadu_ps(pb.add(p * n + jt + 8));
                        let va0 = _mm256_set1_ps(a0);
                        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(va0, b0));
                        acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(va0, b1));
                        let va1 = _mm256_set1_ps(a1);
                        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(va1, b0));
                        acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(va1, b1));
                        let va2 = _mm256_set1_ps(a2);
                        acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(va2, b0));
                        acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(va2, b1));
                        let va3 = _mm256_set1_ps(a3);
                        acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(va3, b0));
                        acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(va3, b1));
                    }
                    _mm256_storeu_ps(pc0.add(jt), acc00);
                    _mm256_storeu_ps(pc0.add(jt + 8), acc01);
                    _mm256_storeu_ps(pc1.add(jt), acc10);
                    _mm256_storeu_ps(pc1.add(jt + 8), acc11);
                    _mm256_storeu_ps(pc2.add(jt), acc20);
                    _mm256_storeu_ps(pc2.add(jt + 8), acc21);
                    _mm256_storeu_ps(pc3.add(jt), acc30);
                    _mm256_storeu_ps(pc3.add(jt + 8), acc31);
                }
                jt += 16;
            }
            if jt + 8 <= n {
                // SAFETY: jt+8 <= n bounds every c tile and b load.
                unsafe {
                    let mut acc00 = _mm256_loadu_ps(pc0.add(jt));
                    let mut acc10 = _mm256_loadu_ps(pc1.add(jt));
                    let mut acc20 = _mm256_loadu_ps(pc2.add(jt));
                    let mut acc30 = _mm256_loadu_ps(pc3.add(jt));
                    for p in 0..k {
                        let a0 = a0_row[p];
                        let a1 = a1_row[p];
                        let a2 = a2_row[p];
                        let a3 = a3_row[p];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm256_loadu_ps(pb.add(p * n + jt));
                        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(_mm256_set1_ps(a0), b0));
                        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(_mm256_set1_ps(a1), b0));
                        acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(_mm256_set1_ps(a2), b0));
                        acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(_mm256_set1_ps(a3), b0));
                    }
                    _mm256_storeu_ps(pc0.add(jt), acc00);
                    _mm256_storeu_ps(pc1.add(jt), acc10);
                    _mm256_storeu_ps(pc2.add(jt), acc20);
                    _mm256_storeu_ps(pc3.add(jt), acc30);
                }
                jt += 8;
            }
            if jt < n {
                for p in 0..k {
                    let a0 = a0_row[p];
                    let a1 = a1_row[p];
                    let a2 = a2_row[p];
                    let a3 = a3_row[p];
                    if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for j in jt..n {
                        let bv = b_row[j];
                        c0[j] += a0 * bv;
                        c1[j] += a1 * bv;
                        c2[j] += a2 * bv;
                        c3[j] += a3 * bv;
                    }
                }
            }
            i += 4;
        }
        // Ragged row tail.
        while i < rows {
            let r = row0 + i;
            // SAFETY: AVX2 enabled for this fn (module contract).
            unsafe {
                gemm_one_row_avx2(&a[r * k..(r + 1) * k], b, &mut c_block[i * n..(i + 1) * n], k, n);
            }
            i += 1;
        }
    }
}
