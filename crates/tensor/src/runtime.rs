//! Global parallel runtime for tensor kernels.
//!
//! A lazily-started pool of persistent worker threads executes contiguous
//! index ranges of data-parallel loops. Design constraints, in order:
//!
//! 1. **Bitwise determinism.** Results must be identical no matter how many
//!    threads run — kernels achieve this by making work partitions either
//!    irrelevant to the result (disjoint output rows) or fixed independently
//!    of the thread count (chunked reductions, see [`crate::kernels`]).
//!    The runtime itself only hands out ranges; it never reorders an
//!    individual range's interior.
//! 2. **Zero cost below threshold.** [`parallel_for`] runs the closure
//!    inline on the calling thread when the pool is disabled, the work is
//!    small, or only one worker is configured. Small tensors never pay a
//!    synchronisation fee.
//! 3. **No new dependencies.** Workers are plain `std::thread`s fed from a
//!    shared injector queue; scoped lifetimes are handled with a completion
//!    latch so borrowed closures stay valid until every worker is done.
//!
//! Observability: with `OM_OBS=1` the dispatch path records spans
//! (`runtime.parallel_for`, per-worker `runtime.task`, `runtime.join`),
//! per-thread busy time and grain/task-count metrics through `om-obs`.
//! Collection only reads clocks and bumps atomics — partitioning is
//! computed before any instrumentation, so results remain bitwise
//! identical with observability on or off, and the disabled path costs a
//! single relaxed atomic load.
//!
//! The pool size is decided once, at first use: the `OM_THREADS`
//! environment variable if set (a value of `1` disables the pool), else
//! [`std::thread::available_parallelism`]. Tests that must compare serial
//! and parallel execution in-process can override the *effective* thread
//! count at any time with [`set_threads`]; the pool itself keeps its
//! workers either way.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Cached `om-obs` metric handles for the dispatch path. Touched only when
/// observability is enabled; the disabled path costs one relaxed load.
struct ObsHandles {
    /// `parallel_for` calls that actually dispatched to the pool.
    dispatches: om_obs::metrics::Counter,
    /// `parallel_for` calls that ran inline (below threshold / 1 thread).
    inline_runs: om_obs::metrics::Counter,
    /// Tasks shipped (including the caller's own range).
    tasks: om_obs::metrics::Counter,
    /// Indices per task — the realised work grain.
    grain: om_obs::metrics::Histogram,
}

fn obs() -> &'static ObsHandles {
    static H: OnceLock<ObsHandles> = OnceLock::new();
    H.get_or_init(|| ObsHandles {
        dispatches: om_obs::metrics::counter("runtime.dispatches"),
        inline_runs: om_obs::metrics::counter("runtime.inline_runs"),
        tasks: om_obs::metrics::counter("runtime.tasks"),
        grain: om_obs::metrics::histogram("runtime.task_indices"),
    })
}

/// A unit of work shipped to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: mpsc::Sender<Job>,
}

static POOL: OnceLock<Option<Pool>> = OnceLock::new();
/// Effective thread count override; 0 means "use the configured maximum".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static MAX_THREADS: OnceLock<usize> = OnceLock::new();

/// The maximum parallelism the runtime was configured with: `OM_THREADS` if
/// set (clamped to at least 1), otherwise the machine's available
/// parallelism. Fixed for the lifetime of the process.
pub fn max_threads() -> usize {
    *MAX_THREADS.get_or_init(|| {
        match std::env::var("OM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => n.max(1),
            None => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// The effective thread count kernels will use right now: the value last
/// passed to [`set_threads`], else [`max_threads`].
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => max_threads(),
        n => n.min(max_threads()),
    }
}

/// Override the effective thread count (clamped to `1..=max_threads`);
/// pass 0 to restore the default. Returns the previous override (0 if none
/// was active). Intended for tests that assert serial/parallel parity
/// within one process.
pub fn set_threads(n: usize) -> usize {
    THREAD_OVERRIDE.swap(n, Ordering::Relaxed)
}

fn pool() -> Option<&'static Pool> {
    POOL.get_or_init(|| {
        let workers = max_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            thread::Builder::new()
                .name(format!("om-worker-{i}"))
                .spawn(move || loop {
                    // Take the lock only long enough to pull one job.
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed: process exit
                    }
                })
                .expect("spawning om-tensor worker thread");
        }
        Some(Pool { sender })
    })
    .as_ref()
}

/// Counts outstanding jobs of one `parallel_for` call and wakes the caller
/// when the last one finishes.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_one();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// Run `body(lo, hi)` over disjoint contiguous ranges covering `0..n`.
///
/// The range boundaries depend only on `n`, `grain` and the *effective*
/// thread count, but callers must not rely on them: a kernel is only
/// allowed through this entry point if its result is independent of the
/// partition (each index writes its own output, or reduction chunking is
/// fixed elsewhere).
///
/// Runs inline (one call, `body(0, n)`) when any of: the pool is disabled,
/// `threads() == 1`, or `n <= grain`. `grain` is the minimum number of
/// indices worth shipping to another thread — pick it so a grain of work
/// costs at least a few microseconds.
///
/// Panics in `body` are propagated to the caller after all ranges finish.
pub fn parallel_for<F>(n: usize, grain: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let grain = grain.max(1);
    let want = threads();
    if n == 0 {
        return;
    }
    let obs_on = om_obs::enabled();
    if want <= 1 || n <= grain {
        if obs_on {
            obs().inline_runs.add(1);
        }
        body(0, n);
        return;
    }
    let Some(pool) = pool() else {
        body(0, n);
        return;
    };

    // At most one range per thread, but never shorter than the grain.
    let tasks = (n / grain).clamp(1, want);
    if tasks <= 1 {
        if obs_on {
            obs().inline_runs.add(1);
        }
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(tasks);

    // Observability (spans, counters, busy time) reads clocks and bumps
    // atomics only — it never influences `chunk`/`tasks`, so results stay
    // bitwise identical with collection on or off.
    let _dispatch_span = om_obs::trace::span_if(obs_on, "runtime.parallel_for");
    if obs_on {
        let h = obs();
        h.dispatches.add(1);
        h.tasks.add(tasks as u64);
        h.grain.record(chunk as u64);
    }

    let latch = Arc::new(Latch::new(tasks - 1));
    let body_ref: &(dyn Fn(usize, usize) + Sync) = &body;
    // SAFETY: the transmute only erases the lifetime of the borrow ('a →
    // 'static); vtable and layout are unchanged. The 'static claim is never
    // relied on: every job that captures `body_static` counts the latch
    // down when it finishes (even on panic, via catch_unwind below), and
    // this frame blocks on `latch.wait()` before returning on every path,
    // so the borrow of `body` strictly outlives all uses of the erased
    // reference. `F: Sync` makes the shared `&F` safe to call from workers.
    let body_static: &'static (dyn Fn(usize, usize) + Sync) = unsafe {
        std::mem::transmute(body_ref)
    };

    for t in 1..tasks {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo >= hi {
            latch.count_down();
            continue;
        }
        let latch = Arc::clone(&latch);
        let job: Job = Box::new(move || {
            let task_span = om_obs::trace::span_if(obs_on, "runtime.task");
            let t0 = if obs_on { om_obs::clock::now_ns() } else { 0 };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body_static(lo, hi)));
            if obs_on {
                om_obs::trace::busy_add(om_obs::clock::now_ns().saturating_sub(t0));
            }
            drop(task_span);
            if result.is_err() {
                latch.panicked.store(true, Ordering::Relaxed);
            }
            latch.count_down();
        });
        pool.sender.send(job).expect("worker pool channel closed");
    }

    // The caller works on the first range, then waits for the rest so the
    // borrow of `body` cannot escape this frame.
    let t0 = if obs_on { om_obs::clock::now_ns() } else { 0 };
    let own = panic::catch_unwind(AssertUnwindSafe(|| body(0, chunk.min(n))));
    if obs_on {
        om_obs::trace::busy_add(om_obs::clock::now_ns().saturating_sub(t0));
    }
    {
        let _join_span = om_obs::trace::span_if(obs_on, "runtime.join");
        latch.wait();
    }
    if let Err(payload) = own {
        panic::resume_unwind(payload);
    }
    if latch.panicked.load(Ordering::Relaxed) {
        panic!("om-tensor worker panicked inside parallel_for");
    }
}

/// Split `out` into row blocks of `row_len` elements and run
/// `body(first_row, rows_block)` on each block in parallel. Blocks are
/// disjoint `&mut` views, so any per-row computation is race-free and
/// bitwise independent of the partition.
///
/// `grain_rows` is the minimum number of rows per shipped block.
pub fn parallel_rows_mut<T, F>(out: &mut [T], row_len: usize, grain_rows: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "parallel_rows_mut: zero row length");
    assert_eq!(out.len() % row_len, 0, "parallel_rows_mut: ragged output");
    let rows = out.len() / row_len;
    let base = SendPtr(out.as_mut_ptr());
    parallel_for(rows, grain_rows, |lo, hi| {
        // SAFETY: `parallel_for` hands out disjoint `[lo, hi)` ranges that
        // together cover `0..rows` exactly once, so `[lo*row_len,
        // hi*row_len)` are non-overlapping in-bounds subranges of `out`
        // (`out.len() == rows * row_len` is asserted above). Each closure
        // invocation therefore materialises a `&mut` view no other thread
        // can alias, and `out` itself is mutably borrowed for the whole
        // call, so no access from outside the pool can race either.
        let block = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(lo * row_len), (hi - lo) * row_len)
        };
        body(lo, block);
    });
}

/// Raw pointer wrapper asserting cross-thread use is safe because ranges
/// handed to each thread never overlap. Accessed through [`SendPtr::get`]
/// so closures capture the whole (Sync) wrapper, not the bare pointer.
struct SendPtr<T>(*mut T);
// SAFETY: sending the wrapper to another thread moves only the pointer
// value; the pointee is `T: Send`, and every dereference site (see
// `parallel_rows_mut`) restricts itself to a range disjoint from all other
// threads', so the exclusive-access rule `&mut T` normally enforces is
// upheld manually per range.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: `&SendPtr<T>` only exposes the raw pointer via `get`; sharing it
// between threads is sound for the same reason as `Send` above — concurrent
// writes through the pointer are confined to disjoint index ranges by the
// single caller (`parallel_rows_mut`), never overlapping.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 10_007; // prime: exercises ragged tails
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn small_inputs_run_inline() {
        let n = 8;
        let tid = std::thread::current().id();
        let same_thread = AtomicBool::new(true);
        parallel_for(n, 64, |_, _| {
            if std::thread::current().id() != tid {
                same_thread.store(false, Ordering::Relaxed);
            }
        });
        assert!(same_thread.load(Ordering::Relaxed));
    }

    #[test]
    fn set_threads_roundtrip() {
        let prev = set_threads(1);
        assert_eq!(threads(), 1);
        set_threads(prev);
    }

    #[test]
    fn parallel_rows_blocks_are_disjoint_and_ordered() {
        let rows = 137;
        let row_len = 13;
        let mut out = vec![0.0f32; rows * row_len];
        parallel_rows_mut(&mut out, row_len, 4, |first_row, block| {
            for (r, row) in block.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v = (first_row + r) as f32;
                }
            }
        });
        for r in 0..rows {
            assert!(out[r * row_len..(r + 1) * row_len].iter().all(|&v| v == r as f32));
        }
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(100_000, 1, |lo, _| {
                if lo == 0 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let total = AtomicUsize::new(0);
        parallel_for(1000, 1, |lo, hi| {
            total.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }
}
