//! Binary checkpointing of parameter sets and training state.
//!
//! Two formats share the `OMCK` magic:
//!
//! **v1** — a bare parameter list (kept for the in-memory best-epoch
//! snapshot and old artifacts):
//!
//! ```text
//! magic "OMCK" | u32 version=1 | u32 tensor count |
//!   per tensor: u32 ndim | u64 dims[ndim] | f32 data[numel]
//! ```
//!
//! **v2** — named sections with integrity checks, the on-disk durable
//! checkpoint format. Every section's CRC32 covers its name *and* payload,
//! so any single-bit corruption anywhere in the file is detected:
//!
//! ```text
//! magic "OMCK" | u32 version=2 | u32 section count |
//!   per section: u32 name_len | name | u64 payload_len | payload |
//!                u32 crc32(name ++ payload)
//! ```
//!
//! Tensor-list payloads (sections like `params`) additionally carry a
//! per-tensor CRC32 so a corrupt tensor is identified by index:
//!
//! ```text
//! u32 count | per tensor: u32 ndim | u64 dims[ndim] | f32 data[numel] |
//!            u32 crc32(data)
//! ```
//!
//! Loading restores *values into* an existing parameter list (shapes must
//! match), which keeps optimizer state and graph wiring intact. Every
//! decode path is **all-or-nothing**: nothing is written into the target
//! parameters until the complete payload has been parsed and verified, so
//! a corrupt checkpoint can never leave a model half-restored.

use bytes::{BufMut, Bytes, BytesMut};
use om_tensor::Tensor;

use crate::optim::{OptSlot, OptState};

const MAGIC: &[u8; 4] = b"OMCK";
const VERSION: u32 = 1;
/// Version tag of the sectioned, checksummed on-disk format.
pub const VERSION_V2: u32 = 2;

/// Errors raised while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer does not start with the `OMCK` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared payload.
    Truncated,
    /// Bytes remain after the declared payload — the file is not what its
    /// header claims (e.g. a torn or concatenated write).
    TrailingBytes,
    /// Checkpoint tensor count differs from the target parameter list.
    CountMismatch { expected: usize, found: usize },
    /// A tensor's shape differs from the corresponding parameter.
    ShapeMismatch { index: usize },
    /// A section's CRC32 does not match its name + payload bytes.
    ChecksumMismatch { section: String },
    /// A tensor's per-tensor CRC32 does not match its data.
    TensorChecksum { index: usize },
    /// A required section is absent from the checkpoint.
    MissingSection(String),
    /// A section name is not valid UTF-8.
    BadSectionName,
    /// Optimizer (or other) state does not fit the target it is being
    /// imported into (wrong kind, slot names, or per-parameter lengths).
    StateMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an OMCK checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::TrailingBytes => {
                write!(f, "trailing bytes after the declared checkpoint payload")
            }
            CheckpointError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} tensors, found {found}")
            }
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "shape mismatch at tensor {index}")
            }
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "CRC32 mismatch in section `{section}`")
            }
            CheckpointError::TensorChecksum { index } => {
                write!(f, "CRC32 mismatch in tensor {index}")
            }
            CheckpointError::MissingSection(name) => {
                write!(f, "checkpoint has no `{name}` section")
            }
            CheckpointError::BadSectionName => write!(f, "section name is not UTF-8"),
            CheckpointError::StateMismatch(what) => {
                write!(f, "state does not fit its target: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// ------------------------------------------------------------------ CRC32

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// gzip/zip use. Table computed once at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------- bounded reader

/// Slice reader whose every read is bounds-checked: corrupt length fields
/// surface as [`CheckpointError::Truncated`] instead of a panic, and
/// declared sizes are validated against the remaining bytes *before* any
/// allocation (a flipped length bit must not trigger a huge `Vec`).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

// ------------------------------------------------------------ v1 format

/// Serialise a parameter list to bytes (v1 layout, no checksums).
pub fn save_params(params: &[Tensor]) -> Bytes {
    let payload: usize = params
        .iter()
        .map(|p| 4 + 8 * p.dims().len() + 4 * p.numel())
        .sum();
    let mut buf = BytesMut::with_capacity(12 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        buf.put_u32_le(p.dims().len() as u32);
        for &d in p.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in p.data().iter() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restore values into `params` from a checkpoint produced by
/// [`save_params`]. Order and shapes must match; trailing bytes after the
/// declared payload are rejected. All-or-nothing: on any error `params`
/// are untouched.
pub fn load_params(params: &[Tensor], bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = r.u32()? as usize;
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    let mut decoded: Vec<Vec<f32>> = Vec::with_capacity(count);
    for (index, p) in params.iter().enumerate() {
        let ndim = r.u32()? as usize;
        if r.remaining() < 8 * ndim {
            return Err(CheckpointError::Truncated);
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(r.u64()? as usize);
        }
        if dims != p.dims() {
            return Err(CheckpointError::ShapeMismatch { index });
        }
        let numel: usize = dims.iter().product();
        decoded.push(r.f32s(numel)?);
    }
    if r.remaining() > 0 {
        return Err(CheckpointError::TrailingBytes);
    }
    commit_tensors(params, &decoded);
    Ok(())
}

/// Overwrite every parameter's values from fully validated decode results.
fn commit_tensors(params: &[Tensor], decoded: &[Vec<f32>]) {
    for (p, values) in params.iter().zip(decoded) {
        p.data_mut().copy_from_slice(values);
    }
}

// --------------------------------------------------- v2 tensor payloads

/// Encode a parameter list as a v2 section payload (per-tensor CRC32).
pub fn encode_tensors(params: &[Tensor]) -> Bytes {
    let payload: usize = params
        .iter()
        .map(|p| 4 + 8 * p.dims().len() + 4 * p.numel() + 4)
        .sum();
    let mut buf = BytesMut::with_capacity(4 + payload);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        buf.put_u32_le(p.dims().len() as u32);
        for &d in p.dims() {
            buf.put_u64_le(d as u64);
        }
        let data = p.data();
        let mut raw = Vec::with_capacity(4 * data.len());
        for &v in data.iter() {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(&raw);
        buf.put_u32_le(crc32(&raw));
    }
    buf.freeze()
}

/// Decode a [`encode_tensors`] payload into `params` (shapes must match).
/// All-or-nothing: every tensor is parsed, shape-checked and CRC-verified
/// before the first value is written.
pub fn decode_tensors_into(params: &[Tensor], payload: &[u8]) -> Result<(), CheckpointError> {
    let mut r = Reader::new(payload);
    let count = r.u32()? as usize;
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    let mut decoded: Vec<Vec<f32>> = Vec::with_capacity(count);
    for (index, p) in params.iter().enumerate() {
        let ndim = r.u32()? as usize;
        if r.remaining() < 8 * ndim {
            return Err(CheckpointError::Truncated);
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(r.u64()? as usize);
        }
        if dims != p.dims() {
            return Err(CheckpointError::ShapeMismatch { index });
        }
        let numel: usize = dims.iter().product();
        let raw = r.take(4 * numel)?;
        let declared = r.u32()?;
        if crc32(raw) != declared {
            return Err(CheckpointError::TensorChecksum { index });
        }
        decoded.push(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    if r.remaining() > 0 {
        return Err(CheckpointError::TrailingBytes);
    }
    commit_tensors(params, &decoded);
    Ok(())
}

// -------------------------------------------------- optimizer payloads

/// Encode an exported optimizer state as a v2 section payload.
pub fn encode_opt_state(state: &OptState) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(state.kind.len() as u32);
    buf.put_slice(state.kind.as_bytes());
    buf.put_u64_le(state.step);
    buf.put_u32_le(state.slots.len() as u32);
    for slot in &state.slots {
        buf.put_u32_le(slot.name.len() as u32);
        buf.put_slice(slot.name.as_bytes());
        buf.put_u32_le(slot.per_param.len() as u32);
        for entry in &slot.per_param {
            match entry {
                None => buf.put_u8(0),
                Some(v) => {
                    buf.put_u8(1);
                    buf.put_u64_le(v.len() as u64);
                    for &x in v {
                        buf.put_f32_le(x);
                    }
                }
            }
        }
    }
    buf.freeze()
}

/// Decode an [`encode_opt_state`] payload.
pub fn decode_opt_state(payload: &[u8]) -> Result<OptState, CheckpointError> {
    let mut r = Reader::new(payload);
    let kind_len = r.u32()? as usize;
    let kind = String::from_utf8(r.take(kind_len)?.to_vec())
        .map_err(|_| CheckpointError::BadSectionName)?;
    let step = r.u64()?;
    let n_slots = r.u32()? as usize;
    if n_slots > r.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let name_len = r.u32()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::BadSectionName)?;
        let n_params = r.u32()? as usize;
        if n_params > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut per_param = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let present = r.take(1)?[0];
            per_param.push(match present {
                0 => None,
                _ => {
                    let len = r.u64()? as usize;
                    if r.remaining() < 4 * len {
                        return Err(CheckpointError::Truncated);
                    }
                    Some(r.f32s(len)?)
                }
            });
        }
        slots.push(OptSlot { name, per_param });
    }
    if r.remaining() > 0 {
        return Err(CheckpointError::TrailingBytes);
    }
    Ok(OptState { kind, step, slots })
}

// ------------------------------------------------------------ v2 format

/// A decoded (or under-construction) v2 checkpoint: ordered named
/// sections. Section names are unique; re-inserting replaces.
#[derive(Debug, Clone, Default)]
pub struct CheckpointV2 {
    sections: Vec<(String, Bytes)>,
}

impl CheckpointV2 {
    /// An empty checkpoint.
    pub fn new() -> CheckpointV2 {
        CheckpointV2::default()
    }

    /// Add (or replace) a named section.
    pub fn insert(&mut self, name: &str, payload: Bytes) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Look up a section's payload.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_ref())
    }

    /// Look up a section or fail with [`CheckpointError::MissingSection`].
    pub fn require(&self, name: &str) -> Result<&[u8], CheckpointError> {
        self.get(name)
            .ok_or_else(|| CheckpointError::MissingSection(name.to_string()))
    }

    /// Section names, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Serialise to the on-disk v2 byte layout.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V2);
        buf.put_u32_le(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(payload.len() as u64);
            buf.put_slice(payload);
            let mut crc_input = Vec::with_capacity(name.len() + payload.len());
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(payload);
            buf.put_u32_le(crc32(&crc_input));
        }
        buf.freeze()
    }

    /// Parse and verify a v2 checkpoint. Every section CRC is checked and
    /// trailing bytes are rejected, so a successfully decoded checkpoint
    /// is bit-exact what [`CheckpointV2::encode`] wrote.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointV2, CheckpointError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION_V2 {
            return Err(CheckpointError::BadVersion(version));
        }
        let n_sections = r.u32()? as usize;
        if n_sections > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name_len = r.u32()? as usize;
            let name_raw = r.take(name_len)?;
            let name = std::str::from_utf8(name_raw)
                .map_err(|_| CheckpointError::BadSectionName)?
                .to_string();
            let payload_len = r.u64()?;
            if payload_len > r.remaining() as u64 {
                return Err(CheckpointError::Truncated);
            }
            let payload = r.take(payload_len as usize)?;
            let declared = r.u32()?;
            let mut crc_input = Vec::with_capacity(name_raw.len() + payload.len());
            crc_input.extend_from_slice(name_raw);
            crc_input.extend_from_slice(payload);
            if crc32(&crc_input) != declared {
                return Err(CheckpointError::ChecksumMismatch { section: name });
            }
            sections.push((name, Bytes::copy_from_slice(payload)));
        }
        if r.remaining() > 0 {
            return Err(CheckpointError::TrailingBytes);
        }
        Ok(CheckpointV2 { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::{init, seeded_rng};

    fn sample_params() -> Vec<Tensor> {
        let mut rng = seeded_rng(11);
        vec![
            init::normal(&[3, 4], 1.0, &mut rng).requires_grad(),
            init::normal(&[4], 1.0, &mut rng).requires_grad(),
        ]
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = sample_params();
        let bytes = save_params(&src);
        let dst = vec![
            Tensor::zeros(&[3, 4]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        load_params(&dst, &bytes).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let dst = sample_params();
        assert_eq!(
            load_params(&dst, b"NOPE________"),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let src = sample_params();
        let bytes = save_params(&src[..1]);
        let err = load_params(&src, &bytes).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::CountMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_params();
        let bytes = save_params(&src);
        let dst = vec![
            Tensor::zeros(&[4, 3]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        assert_eq!(
            load_params(&dst, &bytes),
            Err(CheckpointError::ShapeMismatch { index: 0 })
        );
    }

    #[test]
    fn rejects_truncation() {
        let src = sample_params();
        let bytes = save_params(&src);
        let cut = &bytes[..bytes.len() - 5];
        assert_eq!(load_params(&src, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = sample_params();
        let dst = vec![
            Tensor::zeros(&[3, 4]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        let mut extended = save_params(&src).to_vec();
        extended.extend_from_slice(b"junk");
        assert_eq!(
            load_params(&dst, &extended),
            Err(CheckpointError::TrailingBytes)
        );
        // …and the rejection left the target untouched (all-or-nothing).
        assert!(dst.iter().all(|t| t.to_vec().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn truncated_load_is_all_or_nothing() {
        let src = sample_params();
        let bytes = save_params(&src);
        let dst = vec![
            Tensor::zeros(&[3, 4]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        // Cut inside the *second* tensor: the first tensor's bytes are
        // fully present, but nothing may be committed.
        let cut = &bytes[..bytes.len() - 5];
        assert_eq!(load_params(&dst, cut), Err(CheckpointError::Truncated));
        assert!(dst.iter().all(|t| t.to_vec().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn empty_param_list_roundtrips() {
        let bytes = save_params(&[]);
        load_params(&[], &bytes).unwrap();
    }

    // ------------------------------------------------------------- crc32

    #[test]
    fn crc32_reference_vectors() {
        // Standard check value for "123456789" (IEEE CRC-32).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    // ---------------------------------------------------------------- v2

    #[test]
    fn v2_roundtrip_with_sections() {
        let src = sample_params();
        let mut ck = CheckpointV2::new();
        ck.insert("params", encode_tensors(&src));
        ck.insert("cursor", Bytes::copy_from_slice(b"\x05\x00\x00\x00"));
        let bytes = ck.encode();
        let back = CheckpointV2::decode(&bytes).unwrap();
        assert_eq!(back.section_names(), vec!["params", "cursor"]);
        let dst = vec![
            Tensor::zeros(&[3, 4]).requires_grad(),
            Tensor::zeros(&[4]).requires_grad(),
        ];
        decode_tensors_into(&dst, back.require("params").unwrap()).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
        assert_eq!(
            back.require("missing"),
            Err(CheckpointError::MissingSection("missing".to_string()))
        );
    }

    #[test]
    fn v2_detects_any_flipped_bit() {
        let src = sample_params();
        let mut ck = CheckpointV2::new();
        ck.insert("params", encode_tensors(&src));
        let bytes = ck.encode().to_vec();
        // Flip one bit in every byte position after the 12-byte header and
        // assert the decode (or the tensor restore) always fails.
        for pos in 12..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            let decoded = CheckpointV2::decode(&corrupt);
            if let Ok(ck) = decoded {
                let dst = sample_params();
                let r = ck
                    .require("params")
                    .and_then(|p| decode_tensors_into(&dst, p));
                assert!(r.is_err(), "corruption at byte {pos} went undetected");
            }
        }
    }

    #[test]
    fn v2_rejects_trailing_bytes() {
        let mut ck = CheckpointV2::new();
        ck.insert("a", Bytes::copy_from_slice(b"xyz"));
        let mut bytes = ck.encode().to_vec();
        bytes.push(0);
        assert_eq!(
            CheckpointV2::decode(&bytes).unwrap_err(),
            CheckpointError::TrailingBytes
        );
    }

    #[test]
    fn v2_rejects_wrong_version() {
        let src = save_params(&sample_params());
        // A v1 blob is not a v2 checkpoint.
        assert_eq!(
            CheckpointV2::decode(&src).unwrap_err(),
            CheckpointError::BadVersion(1)
        );
    }

    #[test]
    fn v2_insert_replaces() {
        let mut ck = CheckpointV2::new();
        ck.insert("a", Bytes::copy_from_slice(b"one"));
        ck.insert("a", Bytes::copy_from_slice(b"two"));
        assert_eq!(ck.get("a"), Some(&b"two"[..]));
        assert_eq!(ck.section_names().len(), 1);
    }

    #[test]
    fn per_tensor_checksum_identifies_the_tensor() {
        let src = sample_params();
        let payload = encode_tensors(&src).to_vec();
        // Corrupt the last data byte region of the second tensor: flip a
        // byte inside its f32 data (before its trailing CRC).
        let mut corrupt = payload.clone();
        let n = corrupt.len();
        corrupt[n - 8] ^= 0xFF; // inside tensor 1's data or padding
        let dst = sample_params();
        match decode_tensors_into(&dst, &corrupt) {
            Err(CheckpointError::TensorChecksum { index }) => assert_eq!(index, 1),
            other => panic!("expected tensor checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn opt_state_roundtrips() {
        let state = OptState {
            kind: "adadelta".to_string(),
            step: 7,
            slots: vec![
                OptSlot {
                    name: "sq_avg".to_string(),
                    per_param: vec![Some(vec![1.0, 2.0]), None],
                },
                OptSlot {
                    name: "acc_delta".to_string(),
                    per_param: vec![Some(vec![0.5, -0.5]), None],
                },
            ],
        };
        let bytes = encode_opt_state(&state);
        let back = decode_opt_state(&bytes).unwrap();
        assert_eq!(back.kind, "adadelta");
        assert_eq!(back.step, 7);
        assert_eq!(back.slots.len(), 2);
        assert_eq!(back.slots[0].per_param[0], Some(vec![1.0, 2.0]));
        assert_eq!(back.slots[1].per_param[1], None);
    }

    #[test]
    fn opt_state_rejects_truncation_and_trailing() {
        let state = OptState {
            kind: "sgd".to_string(),
            step: 0,
            slots: vec![OptSlot {
                name: "velocity".to_string(),
                per_param: vec![Some(vec![1.0])],
            }],
        };
        let bytes = encode_opt_state(&state).to_vec();
        assert_eq!(
            decode_opt_state(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(9);
        assert_eq!(
            decode_opt_state(&extended),
            Err(CheckpointError::TrailingBytes)
        );
    }
}
