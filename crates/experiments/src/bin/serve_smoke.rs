//! CI smoke test for the serving engine: train a tiny model, export its
//! checkpoint, reload it through `om_serve::load_model_file` (the real
//! deployment path — fresh process state, corpus views rebuilt from the
//! scenario), then assert:
//!
//! * the engine's batched scores are bitwise identical to
//!   `TrainedOmniMatch::predict` over the same user–item pairs;
//! * the sharded top-K equals a naive full-sort oracle exactly, for every
//!   scenario user (cold and warm);
//! * a microbatched replay returns the same responses as unbatched
//!   serving.
//!
//! Observability is force-enabled; the run's artifact directory is the
//! last stdout line (CI uploads it as a build artifact).
//!
//! Usage: `serve_smoke [checkpoint_path]` (default `serve_smoke.omck`).

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{load_model_file, Microbatcher, Request, ServeEngine, ServeOptions};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

fn main() {
    om_obs::set_enabled(true);
    assert!(om_obs::run_begin("serve_smoke"), "serve_smoke must own the run");
    let ckpt_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("serve_smoke.omck"));

    // ---- train + export -------------------------------------------------
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(7);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    trained.write_checkpoint(&ckpt_path).expect("write checkpoint");
    om_obs::info!("serve smoke: checkpoint at {}", ckpt_path.display());

    // Reference predictions from the training-side code path.
    let users = trained.views().users().to_vec();
    let items = trained.views().items();
    let vocab_size = trained.views().vocab.len();

    // ---- reload through the serving path --------------------------------
    let model = load_model_file(&cfg, vocab_size, &ckpt_path).expect("reload checkpoint");
    let views = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    assert_eq!(views.vocab.len(), vocab_size, "rebuilt vocabulary drifted");
    let warm = scenario.train_users.clone();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    om_obs::manifest_set("serve.catalogue", (engine.catalogue_len() as u64).into());
    om_obs::manifest_set("serve.users", (users.len() as u64).into());

    // ---- engine scores == trainer predict, bitwise ----------------------
    for &u in &users {
        let scores = engine.score_user(u).expect("score user");
        let pairs: Vec<_> = items.iter().map(|&i| (u, i)).collect();
        let preds = trained.predict(&pairs);
        assert_eq!(scores.len(), preds.len());
        for (s, p) in scores.iter().zip(&preds) {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "serving score diverged from training-side predict for user {u:?}"
            );
        }
    }
    om_obs::info!("serve smoke: scores match predict bitwise over {} users", users.len());

    // ---- sharded top-K == full-sort oracle ------------------------------
    let k = engine.options().topk;
    for &u in &users {
        let oracle = engine.oracle_rank(u).expect("oracle rank");
        let resp = engine
            .serve_one(Request { id: 0, user: u, arrive_us: 0 })
            .expect("serve one");
        assert_eq!(resp.top.len(), k.min(oracle.len()));
        for ((ia, sa), (ib, sb)) in resp.top.iter().zip(&oracle) {
            assert_eq!(ia, ib, "sharded top-K diverged from the oracle for {u:?}");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
    om_obs::info!("serve smoke: sharded top-K equals the full-sort oracle");

    // ---- microbatched replay == unbatched serving -----------------------
    let opts = engine.options().clone();
    let mut batcher = Microbatcher::new(opts.batch, opts.wait_us);
    let mut batched = Vec::new();
    for (i, &u) in users.iter().enumerate() {
        let now = i as u64 * 700; // arrivals 700us apart → mixed flush causes
        if let Some(due) = batcher.poll(now) {
            batched.extend(engine.serve_batch(&due).expect("serve batch"));
        }
        let req = Request { id: i as u64, user: u, arrive_us: now };
        if let Some(full) = batcher.submit(req, now) {
            batched.extend(engine.serve_batch(&full).expect("serve batch"));
        }
    }
    if let Some(rest) = batcher.drain() {
        batched.extend(engine.serve_batch(&rest).expect("serve batch"));
    }
    assert_eq!(batched.len(), users.len());
    for (i, (&u, resp)) in users.iter().zip(&batched).enumerate() {
        let solo = engine
            .serve_one(Request { id: i as u64, user: u, arrive_us: 0 })
            .expect("serve one");
        assert_eq!(resp.user, u);
        assert_eq!(solo.top.len(), resp.top.len());
        for ((ia, sa), (ib, sb)) in resp.top.iter().zip(&solo.top) {
            assert_eq!(ia, ib);
            assert_eq!(sa.to_bits(), sb.to_bits(), "microbatched flush diverged for {u:?}");
        }
    }
    om_obs::info!("serve smoke: microbatched replay equals unbatched serving");
    om_obs::manifest_set("serve.smoke_ok", true.into());

    let dir = om_obs::run_finish().expect("run artifacts written");
    // Machine-readable: CI captures this line to locate the artifact.
    println!("{}", dir.display());
}
