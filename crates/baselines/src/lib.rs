//! # om-baselines
//!
//! Every comparator of the paper's §5.3, implemented on two shared
//! substrates:
//!
//! * [`mf`] — biased/unbiased matrix factorisation trained by SGD;
//! * [`graph`] — bipartite interaction graphs with degree-normalised
//!   embedding propagation (the NGCF/LightGCN/HeroGraph machinery).
//!
//! Methods:
//!
//! * [`CMF`] — collective MF with user factors shared across domains
//!   (Singh & Gordon 2008). Classic formulation without bias terms, which
//!   is why it collapses on noisy/sparse corpora exactly as in Tables 2–3.
//! * [`NGCF`] — single-domain graph collaborative filtering with nonlinear
//!   feature transforms.
//! * [`LightGCN`] — NGCF minus transforms/nonlinearities.
//! * [`EMCDR`] — per-domain MF plus an MLP mapping source-user factors to
//!   target-user factors, learned on overlapping users (Man et al. 2017).
//! * [`PTUPCDR`] — a meta-network that produces a *personalised* bridge
//!   per user from their source interaction history (Zhu et al. 2022).
//! * [`HeroGraph`] — a shared cross-domain heterogeneous graph; cold-start
//!   users receive propagated embeddings through their source edges
//!   (Cui et al. 2020).
//! * [`TMCDR`] — extension beyond the paper's lineup (§7.1 related work):
//!   EMCDR's mapping trained with a Reptile meta loop over per-user tasks
//!   (Zhu et al. 2021).
//!
//! All methods implement [`Recommender`] and are trained on exactly the
//! data OmniMatch sees: the full source corpus plus the target corpus with
//! cold-start users' reviews removed.

pub mod cmf;
pub mod emcdr;
pub mod graph;
pub mod herograph;
pub mod mf;
pub mod ngcf;
pub mod ptupcdr;
pub mod tmcdr;

pub use cmf::CMF;
pub use emcdr::EMCDR;
pub use herograph::HeroGraph;
pub use ngcf::{LightGCN, NGCF};
pub use ptupcdr::PTUPCDR;
pub use tmcdr::TMCDR;

use om_data::types::{Interaction, ItemId, UserId};
use om_metrics::Eval;

/// Clamp a raw score into the valid star range.
pub fn clamp_stars(x: f32) -> f32 {
    x.clamp(1.0, 5.0)
}

/// Common interface every baseline (and adapter around OmniMatch) exposes.
pub trait Recommender {
    /// Display name used in the result tables.
    fn name(&self) -> &'static str;

    /// Predicted star rating for a (possibly cold-start) user–item pair.
    fn predict(&self, user: UserId, item: ItemId) -> f32;

    /// RMSE/MAE against gold interactions.
    fn evaluate(&self, gold: &[&Interaction]) -> Eval {
        assert!(!gold.is_empty(), "evaluate: empty gold set");
        let pairs: Vec<(f32, f32)> = gold
            .iter()
            .map(|it| (self.predict(it.user, it.item), it.rating.value()))
            .collect();
        Eval::of(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::types::Rating;

    struct Constant(f32);
    impl Recommender for Constant {
        fn name(&self) -> &'static str {
            "const"
        }
        fn predict(&self, _: UserId, _: ItemId) -> f32 {
            self.0
        }
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp_stars(7.2), 5.0);
        assert_eq!(clamp_stars(-3.0), 1.0);
        assert_eq!(clamp_stars(3.3), 3.3);
    }

    #[test]
    fn default_evaluate_computes_metrics() {
        let gold_own = [
            Interaction::new(UserId(1), ItemId(1), Rating::new(4).unwrap(), "x"),
            Interaction::new(UserId(2), ItemId(2), Rating::new(2).unwrap(), "y"),
        ];
        let gold: Vec<&Interaction> = gold_own.iter().collect();
        let e = Constant(3.0).evaluate(&gold);
        assert!((e.rmse - 1.0).abs() < 1e-5);
        assert!((e.mae - 1.0).abs() < 1e-5);
    }
}
