//! Online graduation differential suite: swap-under-load must be
//! **bitwise** equivalent to a cold rebuild, at any `OM_THREADS`.
//!
//! The live engine streams target-domain interactions (cold users
//! graduating mid-traffic, every post-threshold event hot-swapping a new
//! user-arena generation while scoring continues). The reference engine
//! is trained from the same seed and assembled *from scratch* at the
//! final interaction state, through the same public encode entry points
//! (`CorpusViews::encode_reviews` → `OmniMatchModel::user_target_rows`)
//! the update path uses. Every user's full score row must match bit for
//! bit, across thread counts — the serving determinism contract extended
//! over generation flips.
//!
//! Also pinned here:
//!
//! * graduation semantics — `graduated` fires exactly at `warm_after`,
//!   `is_warm` flips, generations are monotone;
//! * the `UserArena::build` dedupe regression — duplicated warm ids
//!   collapse to one row each, preserving *first-occurrence* order;
//! * `with_row` append/overwrite behaviour on raw arenas.

use std::sync::{Mutex, MutexGuard, OnceLock};

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{ItemArena, ServeEngine, ServeOptions, UserArena, UserEvent};
use om_tensor::runtime;
use omnimatch_core::{OmniMatchConfig, Trainer};

/// Serialise mutations of the global thread count across test threads.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn scenario() -> om_data::CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

/// The streamed form of `user`'s held-back target reviews.
fn events_for(scn: &om_data::CrossDomainScenario, user: UserId) -> Vec<UserEvent> {
    scn.target_full
        .user_records(user)
        .map(|it| UserEvent {
            user,
            item: it.item,
            stars: it.rating.value(),
            text: it.summary.clone(),
        })
        .collect()
}

#[test]
fn post_swap_scores_equal_cold_rebuild_at_any_thread_count() {
    let scn = scenario();
    let cfg = OmniMatchConfig::fast().with_seed(41);
    let warm = scn.train_users.clone();
    // Two independent fits from one seed: training is deterministic, so
    // the engines start bitwise identical — any divergence below is the
    // update path's doing.
    let (model, views, _) = Trainer::new(cfg.clone()).fit(&scn).into_parts();
    let (model2, views2, _) = Trainer::new(cfg.clone()).fit(&scn).into_parts();

    let opts = ServeOptions { warm_after: 2, ..ServeOptions::default() };
    let engine = ServeEngine::new(model, views, &warm, opts.clone());

    // Stream every cold user's reviews, scoring between events so swaps
    // land under load.
    let mut cold: Vec<UserId> = scn.valid_users.clone();
    cold.extend_from_slice(&scn.test_users);
    let mut graduated = Vec::new();
    for &u in &cold {
        let events = events_for(&scn, u);
        for ev in &events {
            engine.apply_event(ev).expect("apply event");
            let _ = engine.score_user(u).expect("mid-stream score");
        }
        if events.len() >= opts.warm_after {
            assert!(engine.is_warm(u), "user {u:?} did not graduate");
            graduated.push(u);
        }
    }
    assert!(!graduated.is_empty(), "tiny world graduated nobody");
    assert!(engine.user_generation() > 0);

    // Cold rebuild at the same interaction state, via the public encode
    // entry points only.
    let live_arena = engine.pin_users();
    let dim = live_arena.arena().dim();
    let mut ids = Vec::new();
    let mut docs_owned: Vec<Vec<usize>> = Vec::new();
    for &u in live_arena.arena().ids() {
        let doc = if graduated.contains(&u) {
            let texts: Vec<String> = events_for(&scn, u).into_iter().map(|ev| ev.text).collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            views2.encode_reviews(&refs)
        } else {
            views2.target_doc(u).to_vec()
        };
        ids.push(u);
        docs_owned.push(doc);
    }
    let docs: Vec<&[usize]> = docs_owned.iter().map(Vec::as_slice).collect();
    let rows = model2.user_target_rows(&docs);
    let rebuilt_users = UserArena::from_raw(ids, rows, dim);
    let items2 = ItemArena::build(&model2, &views2, opts.arena_batch);
    let rebuilt = ServeEngine::with_arenas(model2, views2, items2, rebuilt_users, opts);

    // Bitwise, for every scenario user, across thread counts — including
    // live-at-N-threads vs rebuilt-at-1-thread.
    let mut checked = warm.clone();
    checked.extend_from_slice(&graduated);
    let _g = thread_lock();
    let prev = runtime::set_threads(1);
    let reference: Vec<Vec<f32>> = checked
        .iter()
        .map(|&u| rebuilt.score_user(u).expect("rebuilt score"))
        .collect();
    for threads in [1, 2, 4] {
        runtime::set_threads(threads);
        for (&u, reference_row) in checked.iter().zip(&reference) {
            let live = engine.score_user(u).expect("live score");
            assert_eq!(live.len(), reference_row.len());
            for (a, b) in live.iter().zip(reference_row) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "post-swap score diverged from the cold rebuild \
                     for user {u:?} at {threads} thread(s)"
                );
            }
        }
    }
    runtime::set_threads(prev);
}

#[test]
fn graduation_fires_exactly_at_warm_after_and_generations_are_monotone() {
    let scn = scenario();
    let cfg = OmniMatchConfig::fast().with_seed(43);
    let warm = scn.train_users.clone();
    let (model, views, _) = Trainer::new(cfg).fit(&scn).into_parts();
    let opts = ServeOptions { warm_after: 3, ..ServeOptions::default() };
    let engine = ServeEngine::new(model, views, &warm, opts.clone());

    let u = *scn
        .test_users
        .iter()
        .find(|&&u| events_for(&scn, u).len() >= 4)
        .expect("a test user with 4+ target reviews");
    assert!(!engine.is_warm(u));
    assert_eq!(engine.interactions_seen(u), 0);

    let mut last_generation = 0;
    for (i, ev) in events_for(&scn, u).into_iter().enumerate() {
        let outcome = engine.apply_event(&ev).expect("apply event");
        let seen = i + 1;
        assert_eq!(outcome.user, u);
        assert_eq!(outcome.seen, seen);
        assert_eq!(engine.interactions_seen(u), seen);
        assert_eq!(outcome.graduated, seen == opts.warm_after, "graduated at seen={seen}");
        if seen < opts.warm_after {
            assert_eq!(outcome.generation, None);
            assert!(!engine.is_warm(u), "warm before the threshold at seen={seen}");
        } else {
            let generation = outcome.generation.expect("post-threshold events swap");
            assert!(generation > last_generation, "generations must be monotone");
            last_generation = generation;
            assert!(engine.is_warm(u));
        }
    }
    assert_eq!(engine.user_generation(), last_generation);
}

#[test]
fn duplicated_warm_ids_collapse_preserving_first_occurrence_order() {
    let scn = scenario();
    let cfg = OmniMatchConfig::fast().with_seed(47);
    let (model, views, _) = Trainer::new(cfg).fit(&scn).into_parts();

    // A warm list with heavy duplication, deliberately *not* id-sorted:
    // the arena must keep one row per user in first-occurrence order.
    let base: Vec<UserId> = scn.train_users.iter().rev().copied().collect();
    let mut dup = Vec::new();
    for &u in &base {
        dup.push(u);
        dup.push(base[0]);
        dup.push(u);
    }
    let deduped = UserArena::build(&model, &views, &dup, 16);
    let clean = UserArena::build(&model, &views, &base, 16);
    assert_eq!(deduped.len(), clean.len(), "duplicates inflated the arena");
    assert_eq!(deduped.ids(), clean.ids(), "dedupe broke first-occurrence order");
    for &u in clean.ids() {
        let a = deduped.row(u).expect("row in deduped arena");
        let b = clean.row(u).expect("row in clean arena");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "row bits differ for user {u:?}");
        }
    }
}

#[test]
fn with_row_overwrites_in_place_and_appends_at_the_end() {
    let ids = vec![UserId(3), UserId(1), UserId(2)];
    let data: Vec<f32> = (0..9).map(|i| i as f32).collect();
    let arena = UserArena::from_raw(ids, data, 3);

    let overwritten = arena.with_row(UserId(1), &[9.0, 8.0, 7.0]);
    assert_eq!(overwritten.len(), 3);
    assert_eq!(overwritten.ids(), arena.ids(), "overwrite must not reorder");
    assert_eq!(overwritten.row(UserId(1)), Some(&[9.0f32, 8.0, 7.0][..]));
    assert_eq!(overwritten.row(UserId(3)), Some(&[0.0f32, 1.0, 2.0][..]));

    let appended = arena.with_row(UserId(7), &[5.0, 5.0, 5.0]);
    assert_eq!(appended.len(), 4);
    assert_eq!(
        appended.ids(),
        &[UserId(3), UserId(1), UserId(2), UserId(7)],
        "graduated users append after existing rows"
    );
    assert_eq!(appended.row(UserId(7)), Some(&[5.0f32, 5.0, 5.0][..]));
    // The source arena is untouched — with_row is a shadow build.
    assert_eq!(arena.len(), 3);
    assert_eq!(arena.row(UserId(7)), None);
}
