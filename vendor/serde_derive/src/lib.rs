//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//! Both expand to an empty token stream: the annotated type compiles, and
//! no trait impls are generated (none are used in-tree).

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
