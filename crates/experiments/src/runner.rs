//! Method registry and multi-trial execution.

use om_baselines::{Recommender, CMF, EMCDR, HeroGraph, LightGCN, NGCF, PTUPCDR};
use om_data::split::SplitConfig;
use om_data::SynthWorld;
use om_metrics::{aggregate, Aggregate, Eval};
use omnimatch_core::{OmniMatchConfig, Trainer};

/// Every method the tables compare. `Ours` carries the (possibly ablated)
/// OmniMatch configuration.
#[derive(Clone)]
pub enum Method {
    /// Single-domain NGCF.
    Ngcf,
    /// Single-domain LightGCN.
    LightGcn,
    /// Collective matrix factorisation.
    Cmf,
    /// Embedding-and-mapping.
    Emcdr,
    /// Personalised-bridge meta network.
    Ptupcdr,
    /// Shared cross-domain graph.
    HeroGraph,
    /// OmniMatch with the given configuration (`Ours` and all ablations).
    Ours(OmniMatchConfig),
}

impl Method {
    /// Column label used in the tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Ngcf => "NGCF",
            Method::LightGcn => "LIGHTGCN",
            Method::Cmf => "CMF",
            Method::Emcdr => "EMCDR",
            Method::Ptupcdr => "PTUPCDR",
            Method::HeroGraph => "HeroGraph",
            Method::Ours(_) => "Ours",
        }
    }

    /// The paper's Table 2/3 method order.
    pub fn paper_lineup() -> Vec<Method> {
        vec![
            Method::Ngcf,
            Method::LightGcn,
            Method::Cmf,
            Method::Emcdr,
            Method::Ptupcdr,
            Method::HeroGraph,
            Method::Ours(OmniMatchConfig::default()),
        ]
    }
}

/// Aggregated metrics of one method on one scenario.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// RMSE over the trials that completed.
    pub rmse: Aggregate,
    /// MAE over the trials that completed.
    pub mae: Aggregate,
    /// Mean training seconds per completed trial.
    pub train_seconds: f64,
    /// Trials that failed both attempts and were dropped from the
    /// aggregate. When every trial fails, `rmse`/`mae` are
    /// [`Aggregate::missing`] and the table renders `n/a`.
    pub failed: usize,
}

/// How many times a panicking trial is attempted before its slot is
/// reported missing instead of aborting the whole table run.
const TRIAL_ATTEMPTS: usize = 2;

/// Train + evaluate one method on one concrete scenario split.
pub fn run_once(
    world: &SynthWorld,
    source: &str,
    target: &str,
    method: &Method,
    split_seed: u64,
    model_seed: u64,
    train_fraction: f32,
) -> (Eval, f64) {
    let scenario = world.scenario(
        source,
        target,
        SplitConfig {
            seed: split_seed,
            train_fraction,
            ..SplitConfig::default()
        },
    );
    let pairs = scenario.test_pairs();
    let t0_ns = om_obs::clock::now_ns();
    let eval = match method {
        Method::Ngcf => NGCF::fit(&scenario, model_seed).evaluate(&pairs),
        Method::LightGcn => LightGCN::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Cmf => CMF::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Emcdr => EMCDR::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Ptupcdr => PTUPCDR::fit(&scenario, model_seed).evaluate(&pairs),
        Method::HeroGraph => HeroGraph::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Ours(cfg) => {
            let trained = Trainer::new(cfg.clone().with_seed(model_seed)).fit(&scenario);
            trained.evaluate(&pairs)
        }
    };
    (eval, om_obs::clock::now_ns().saturating_sub(t0_ns) as f64 / 1e9)
}

/// Run `trials` seeded trials (split seed and model seed both vary) and
/// aggregate, mirroring the paper's 5-random-trials protocol (§5.4).
///
/// Trials are independent — each gets its own scenario split and model —
/// so they run on separate OS threads; results land in per-trial slots, so
/// the aggregate is identical to the sequential loop. The per-trial seeds
/// (`100 + t`, `1000 + 17t`) are unchanged from the serial implementation.
pub fn run_trials(
    world: &SynthWorld,
    source: &str,
    target: &str,
    method: &Method,
    trials: usize,
    train_fraction: f32,
) -> TrialResult {
    assert!(trials >= 1, "need at least one trial");
    // Each slot records the trial outcome plus how many attempts it took;
    // `None` after the join means both attempts panicked.
    let mut results: Vec<(Option<(Eval, f64)>, usize)> = vec![(None, 0); trials];
    std::thread::scope(|scope| {
        for (t, slot) in results.iter_mut().enumerate() {
            // Deterministic kill site at the trial boundary: fires on the
            // spawning thread, before the t-th trial starts.
            // om-fault: kill-point
            om_obs::fault::kill_point("trial");
            // om-lint: allow(thread-spawn) — trials must NOT run on the
            // tensor pool: a trial calls `parallel_for` internally, and a
            // pool worker blocking in `latch.wait()` on a nested dispatch
            // (no work-stealing) would deadlock the pool. Scoped OS threads
            // keep trial- and kernel-parallelism on separate executors.
            scope.spawn(move || {
                for attempt in 0..TRIAL_ATTEMPTS {
                    slot.1 = attempt + 1;
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_once(
                            world,
                            source,
                            target,
                            method,
                            100 + t as u64,
                            1000 + t as u64 * 17,
                            train_fraction,
                        )
                    }));
                    if let Ok(r) = run {
                        slot.0 = Some(r);
                        return;
                    }
                }
            });
        }
    });
    let failed = results.iter().filter(|(r, _)| r.is_none()).count();
    if om_obs::enabled() {
        // Emitted after the join, in trial order, so the event stream is
        // deterministic even though the trials themselves raced.
        for (t, (outcome, attempts)) in results.iter().enumerate() {
            match outcome {
                Some((eval, secs)) => om_obs::emit(
                    "trial",
                    &[
                        ("method", method.label().into()),
                        ("source", source.into()),
                        ("target", target.into()),
                        ("trial", (t as u64).into()),
                        ("rmse", eval.rmse.into()),
                        ("mae", eval.mae.into()),
                        ("seconds", (*secs).into()),
                    ],
                ),
                None => {
                    om_obs::warn!(
                        "trial {t} of {} on {source}->{target} failed {attempts} attempts; \
                         reporting the slot as missing",
                        method.label()
                    );
                    om_obs::emit(
                        "trial_failed",
                        &[
                            ("method", method.label().into()),
                            ("source", source.into()),
                            ("target", target.into()),
                            ("trial", (t as u64).into()),
                            ("attempts", (*attempts as u64).into()),
                        ],
                    );
                }
            }
        }
    }
    let ok: Vec<&(Eval, f64)> = results.iter().filter_map(|(r, _)| r.as_ref()).collect();
    let rmses: Vec<f32> = ok.iter().map(|(e, _)| e.rmse).collect();
    let maes: Vec<f32> = ok.iter().map(|(e, _)| e.mae).collect();
    let secs: f64 = ok.iter().map(|(_, s)| s).sum();
    if ok.is_empty() {
        return TrialResult {
            rmse: Aggregate::missing(),
            mae: Aggregate::missing(),
            train_seconds: 0.0,
            failed,
        };
    }
    TrialResult {
        rmse: aggregate(&rmses),
        mae: aggregate(&maes),
        train_seconds: secs / ok.len() as f64,
        failed,
    }
}

/// Parse `--trials N` (default 3) and `--fast` from CLI args.
pub fn cli_trials(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--trials" {
            return w[1].parse().expect("--trials takes an integer");
        }
    }
    if args.iter().any(|a| a == "--fast") {
        1
    } else {
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::SynthConfig;

    #[test]
    fn baseline_trials_aggregate() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let r = run_trials(&world, "Books", "Movies", &Method::Emcdr, 2, 1.0);
        assert_eq!(r.rmse.n, 2);
        assert!(r.rmse.mean.is_finite());
        assert!(r.mae.mean > 0.0);
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn panicking_trials_degrade_to_missing() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        // epochs = 0 fails config validation inside the trial thread, so
        // every attempt panics; the run must degrade, not abort.
        let bad = Method::Ours(OmniMatchConfig {
            epochs: 0,
            ..OmniMatchConfig::fast()
        });
        let r = run_trials(&world, "Books", "Movies", &bad, 2, 1.0);
        assert_eq!(r.failed, 2);
        assert!(r.rmse.is_missing(), "all-failed rmse must be missing");
        assert!(r.mae.is_missing(), "all-failed mae must be missing");
        assert_eq!(r.train_seconds, 0.0);
    }

    #[test]
    fn lineup_has_seven_methods() {
        assert_eq!(Method::paper_lineup().len(), 7);
        assert_eq!(Method::paper_lineup()[6].label(), "Ours");
    }

    #[test]
    fn fraction_is_forwarded() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let full = run_trials(&world, "Books", "Movies", &Method::Cmf, 1, 1.0);
        let sub = run_trials(&world, "Books", "Movies", &Method::Cmf, 1, 0.5);
        // results differ because the training set differs
        assert_ne!(full.rmse.mean, sub.rmse.mean);
    }
}
