//! Machine-readable benchmark emitter: times the hot kernels and a tiny
//! end-to-end training run with plain `Instant` loops (the vendored
//! criterion stub cannot export samples) and writes `BENCH_kernels.json`
//! and `BENCH_train.json` with median/p95/mean per benchmark.
//!
//! Usage: `cargo run --release -p om-bench --bin bench_json [out_dir]`.
//! Keep iteration counts small — this runs in CI's bench-smoke job.

use std::collections::BTreeMap;
use std::time::Instant;

use om_bench::bench_scenario;
use om_obs::json::Json;
use om_tensor::{kernels, Tensor};
use omnimatch_core::{OmniMatchConfig, Trainer};

/// Per-iteration wall times in milliseconds: `warmup` discarded
/// iterations, then `iters` measured ones.
fn time_ms(warmup: usize, iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    out
}

/// Summary of one benchmark's samples (nearest-rank percentiles).
fn summarize(name: &str, mut samples: Vec<f64>) -> Json {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    let pct = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
    let mut o = BTreeMap::new();
    o.insert("name".to_string(), Json::Str(name.to_string()));
    o.insert("iters".to_string(), Json::Num(n as f64));
    o.insert("median_ms".to_string(), Json::Num(pct(0.5)));
    o.insert("p95_ms".to_string(), Json::Num(pct(0.95)));
    o.insert(
        "mean_ms".to_string(),
        Json::Num(samples.iter().sum::<f64>() / n as f64),
    );
    o.insert("min_ms".to_string(), Json::Num(samples[0]));
    o.insert("max_ms".to_string(), Json::Num(samples[n - 1]));
    Json::Obj(o)
}

fn write_report(path: &std::path::Path, group: &str, benches: Vec<Json>) {
    let mut o = BTreeMap::new();
    o.insert("schema".to_string(), Json::Num(1.0));
    o.insert("group".to_string(), Json::Str(group.to_string()));
    o.insert("unit".to_string(), Json::Str("ms".to_string()));
    o.insert("benches".to_string(), Json::Arr(benches));
    std::fs::write(path, format!("{}\n", Json::Obj(o))).expect("write benchmark report");
    println!("wrote {}", path.display());
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create benchmark output dir");

    // ---- kernels -------------------------------------------------------
    let m = 96;
    let a: Vec<f32> = (0..m * m).map(|i| (i % 13) as f32 * 0.1 - 0.6).collect();
    let b: Vec<f32> = (0..m * m).map(|i| (i % 7) as f32 * 0.2 - 0.7).collect();
    let mut c = vec![0.0f32; m * m];
    let gemm = time_ms(3, 30, || kernels::gemm(&a, &b, &mut c, m, m, m));

    let big: Vec<f32> = (0..256 * 1024).map(|i| (i % 31) as f32 * 0.01).collect();
    let sum = time_ms(3, 30, || {
        std::hint::black_box(kernels::sum(&big));
    });

    let logits = Tensor::from_vec(a.clone(), &[m, m]);
    let softmax = time_ms(3, 30, || {
        std::hint::black_box(logits.log_softmax_rows());
    });

    let seq = Tensor::from_vec(b.clone(), &[4, (m * m) / (4 * 8), 8]);
    let unfold = time_ms(3, 30, || {
        std::hint::black_box(seq.unfold_windows(3));
    });

    // The serving score path in kernel form: the `pair_rows` cross join a
    // microbatch runs against an item shard, then the rating-head-shaped
    // GEMM over the pair block — the two kernels that dominate a
    // `ShardedEngine` flush (8 requests × 2048 items, fast-config dims).
    let (b_req, n_items, du, di, hidden) = (8usize, 2048usize, 24usize, 12usize, 64usize);
    let pair_dim = du + di;
    let user_rows: Vec<f32> = (0..b_req * du).map(|i| (i % 17) as f32 * 0.1 - 0.8).collect();
    let item_rows: Vec<f32> = (0..n_items * di).map(|i| (i % 23) as f32 * 0.05 - 0.5).collect();
    let w: Vec<f32> = (0..pair_dim * hidden).map(|i| (i % 11) as f32 * 0.02 - 0.1).collect();
    let mut head_out = vec![0.0f32; b_req * n_items * hidden];
    let serve_score = time_ms(3, 20, || {
        let pairs = kernels::pair_rows(&user_rows, &item_rows, du, di);
        kernels::gemm(&pairs, &w, &mut head_out, b_req * n_items, pair_dim, hidden);
        std::hint::black_box(&head_out);
    });

    write_report(
        &out_dir.join("BENCH_kernels.json"),
        "kernels",
        vec![
            summarize(&format!("gemm_{m}x{m}x{m}"), gemm),
            summarize("sum_256k", sum),
            summarize(&format!("log_softmax_rows_{m}x{m}"), softmax),
            summarize("unfold_windows_k3", unfold),
            summarize(&format!("serve_score_{b_req}x{n_items}"), serve_score),
        ],
    );

    // ---- training ------------------------------------------------------
    let sc = bench_scenario();
    let fit = time_ms(1, 5, || {
        std::hint::black_box(Trainer::new(OmniMatchConfig::fast().with_seed(5)).fit(&sc));
    });
    let sc2 = bench_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(5)).fit(&sc2);
    let pairs: Vec<_> = sc2
        .test_pairs()
        .iter()
        .map(|it| (it.user, it.item))
        .collect();
    let predict = time_ms(1, 10, || {
        std::hint::black_box(trained.predict(&pairs));
    });

    write_report(
        &out_dir.join("BENCH_train.json"),
        "train",
        vec![
            summarize("fit_tiny_fast", fit),
            summarize("predict_test_pairs", predict),
        ],
    );
}
