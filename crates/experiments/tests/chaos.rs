//! Kill-and-resume chaos test: run the `chaos_smoke` binary to completion,
//! kill a second copy mid-checkpoint-write with `OM_FAULT`, resume it from
//! the surviving checkpoints, and require the resumed run's final parameter
//! bytes to be **bitwise identical** to the uninterrupted run's.
//!
//! Fault injection and checkpointing are configured purely through each
//! child's environment, so this test never mutates its own process env and
//! is safe under the parallel test runner.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_chaos_smoke")
}

fn tmp_root() -> PathBuf {
    let d = std::env::temp_dir().join(format!("om-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Recursively collect leftover `*.tmp` files (torn checkpoint writes).
fn tmp_strays(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "tmp") {
                found.push(p);
            }
        }
    }
    found
}

#[test]
fn killed_and_resumed_run_matches_clean_run_bitwise() {
    let root = tmp_root();
    let ckpt_dir = root.join("ckpt");
    let clean_blob = root.join("clean.params");
    let resumed_blob = root.join("resumed.params");

    // 1. Clean reference run: no checkpointing, no faults.
    let status = Command::new(bin())
        .arg(&clean_blob)
        .env_remove("OM_CKPT")
        .env_remove("OM_FAULT")
        .status()
        .expect("spawn clean run");
    assert!(status.success(), "clean run failed: {status:?}");

    // 2. Faulted run: checkpoint every epoch, die on the 2nd checkpoint
    //    save — after the tmp file is written and fsynced, before the
    //    rename. The first epoch's checkpoint survives; the second is torn.
    let status = Command::new(bin())
        .arg(root.join("faulted.params"))
        .env("OM_CKPT", "1")
        .env("OM_CKPT_DIR", &ckpt_dir)
        .env("OM_FAULT", "ckpt-save:2")
        .status()
        .expect("spawn faulted run");
    assert_eq!(
        status.code(),
        Some(om_obs::fault::EXIT_CODE),
        "faulted run must die with the fault-injection exit code"
    );
    assert!(
        !root.join("faulted.params").exists(),
        "a killed run must not produce output"
    );
    assert!(
        !tmp_strays(&ckpt_dir).is_empty(),
        "the kill lands mid-save, so a torn .tmp must be on disk"
    );

    // 3. Resume: same checkpoint directory, fault disarmed. Training picks
    //    up from the surviving epoch-0 checkpoint and runs to completion.
    let status = Command::new(bin())
        .arg(&resumed_blob)
        .env("OM_CKPT", "1")
        .env("OM_CKPT_DIR", &ckpt_dir)
        .env_remove("OM_FAULT")
        .status()
        .expect("spawn resumed run");
    assert!(status.success(), "resumed run failed: {status:?}");

    let clean = std::fs::read(&clean_blob).unwrap();
    let resumed = std::fs::read(&resumed_blob).unwrap();
    assert!(!clean.is_empty());
    assert_eq!(
        clean, resumed,
        "resumed parameters must be bitwise identical to the clean run"
    );
    assert!(
        tmp_strays(&ckpt_dir).is_empty(),
        "the resume scan must clean torn .tmp files"
    );
    let _ = std::fs::remove_dir_all(&root);
}
