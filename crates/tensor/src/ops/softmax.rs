//! Row-wise (log-)softmax and the fused negative-log-likelihood gather used
//! by classification losses.

use super::{acc, wants_grad};
use crate::kernels;
use crate::Tensor;

impl Tensor {
    /// Log-softmax over the last axis of a 2-D view: each row becomes a
    /// log-probability distribution.
    // om-lint: reduction-ok(backward's per-row grad sum runs serially in
    // element order inside a fill_rows row callback — rows never split)
    pub fn log_softmax_rows(&self) -> Tensor {
        let _span = crate::obs_span("ops.softmax");
        let (m, n) = self.shape().as_2d();
        let d = self.data();
        let out = kernels::log_softmax_rows(&d, m, n);
        drop(d);
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    // d log_softmax: dx = g - softmax(x) * sum(g) per row
                    let gp = kernels::fill_rows(m, n, 8, |i, row| {
                        let gi = &g[i * n..(i + 1) * n];
                        let gs: f32 = gi.iter().sum();
                        for (j, o) in row.iter_mut().enumerate() {
                            let sm = saved[i * n + j].exp();
                            *o = gi[j] - sm * gs;
                        }
                    });
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Softmax over the last axis of a 2-D view.
    pub fn softmax_rows(&self) -> Tensor {
        self.log_softmax_rows().exp()
    }

    /// Fused NLL gather: given row-wise log-probabilities `[m, n]` and one
    /// target class per row, return the mean negative log-likelihood as a
    /// scalar. This is the second half of softmax cross-entropy.
    // om-lint: reduction-ok(single serial sum over rows in index order on
    // one thread — the scalar loss has exactly one reduction order)
    pub fn nll_gather(&self, targets: &[usize]) -> Tensor {
        let (m, n) = self.shape().as_2d();
        assert_eq!(targets.len(), m, "nll_gather: one target per row required");
        for (&t, i) in targets.iter().zip(0..) {
            assert!(t < n, "nll_gather: target {t} out of range at row {i}");
        }
        let d = self.data();
        let loss: f32 = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| -d[i * n + t])
            .sum::<f32>()
            / m as f32;
        drop(d);
        let tgts = targets.to_vec();
        Tensor::from_op(
            vec![loss],
            &[1],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let mut gp = vec![0.0f32; m * n];
                    let scale = g[0] / m as f32;
                    for (i, &t) in tgts.iter().enumerate() {
                        gp[i * n + t] = -scale;
                    }
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Softmax cross-entropy with integer class targets; the standard
    /// classification loss (used for both the rating classifier of Eq. 19
    /// and the domain classifiers of Eqs. 15/17).
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        self.log_softmax_rows().nll_gather(targets)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn log_softmax_rows_normalises() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let y = x.log_softmax_rows();
        for i in 0..2 {
            let total: f32 = y.to_vec()[i * 3..(i + 1) * 3].iter().map(|l| l.exp()).sum();
            assert!(close(total, 1.0), "row {i} sums to {total}");
        }
        // uniform row → log(1/3)
        assert!(close(y.to_vec()[3], (1.0f32 / 3.0).ln()));
    }

    #[test]
    fn log_softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = x.log_softmax_rows().to_vec();
        let x2 = Tensor::from_vec(vec![1001.0, 1002.0, 1003.0], &[1, 3]);
        let y2 = x2.log_softmax_rows().to_vec();
        for (a, b) in y.iter().zip(y2.iter()) {
            // f32 ulp at magnitude 1e3 dominates; tolerance accordingly.
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let x = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], &[2, 3]);
        let loss = x.cross_entropy(&[0, 1]);
        assert!(loss.item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_n() {
        let x = Tensor::zeros(&[4, 5]);
        let loss = x.cross_entropy(&[0, 1, 2, 3]);
        assert!(close(loss.item(), (5.0f32).ln()));
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let x = Tensor::from_vec(vec![0.5, -0.5, 1.5], &[1, 3]).requires_grad();
        let loss = x.cross_entropy(&[2]);
        loss.backward();
        let sm = x.softmax_rows().to_vec();
        let g = x.grad_vec().unwrap();
        assert!(close(g[0], sm[0]));
        assert!(close(g[1], sm[1]));
        assert!(close(g[2], sm[2] - 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nll_gather_rejects_bad_target() {
        let x = Tensor::zeros(&[1, 3]);
        let _ = x.nll_gather(&[5]);
    }
}
