//! CI smoke test for online cold→warm graduation: train a tiny model,
//! serve it, stream target-domain interactions, and assert:
//!
//! * streaming `warm_after` interactions graduates a cold user — the
//!   engine flips `is_warm`, the generation number advances, and
//!   `serve.graduations` counts it;
//! * scores served *immediately after* the live generation swaps are
//!   bitwise identical to a **cold rebuild**: a second engine, reloaded
//!   from the same checkpoint, whose user arena is assembled from scratch
//!   at the same interaction state through the same public encode path;
//! * the threaded front-end path works end to end —
//!   `submit_interaction` interleaved with `submit`, every accepted
//!   request served, graduations and swaps visible in the stats snapshot
//!   and in the `/statz` rendering.
//!
//! Chaos variant: with `OM_FAULT=swap:1` the process is killed at the
//! `swap` kill point — after the first shadow arena is built, *before*
//! its generation is installed. The `pre-swap generation 0` marker line
//! is on stdout by then and no `post-swap` line ever is, which is how CI
//! proves a killed swap leaves the old generation serving.
//!
//! Observability is force-enabled; the run's artifact directory is the
//! last stdout line (CI uploads it as a build artifact).
//!
//! Usage: `online_smoke [checkpoint_path]` (default `online_smoke.omck`).

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{
    load_model_file, Frontend, FrontendOptions, ItemArena, Request, ServeEngine, ServeOptions,
    UserArena, UserEvent,
};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

/// Streamed events for `user`: its held-back target-domain reviews, in
/// corpus order (exactly what production would see arriving live).
fn events_for(scenario: &om_data::CrossDomainScenario, user: UserId) -> Vec<UserEvent> {
    scenario
        .target_full
        .user_records(user)
        .map(|it| UserEvent {
            user,
            item: it.item,
            stars: it.rating.value(),
            text: it.summary.clone(),
        })
        .collect()
}

fn main() {
    om_obs::set_enabled(true);
    assert!(om_obs::run_begin("online_smoke"), "online_smoke must own the run");
    let ckpt_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("online_smoke.omck"));

    // ---- train + export -------------------------------------------------
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(7);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    trained.write_checkpoint(&ckpt_path).expect("write checkpoint");
    let vocab_size = trained.views().vocab.len();
    drop(trained);

    let opts = ServeOptions { warm_after: 3, ..ServeOptions::default() };
    let warm = scenario.train_users.clone();

    // Cold users with enough held-back target reviews to graduate.
    let mut cold: Vec<UserId> = scenario.valid_users.clone();
    cold.extend_from_slice(&scenario.test_users);
    let streamers: Vec<UserId> = cold
        .iter()
        .copied()
        .filter(|&u| events_for(&scenario, u).len() >= opts.warm_after)
        .take(3)
        .collect();
    assert!(!streamers.is_empty(), "tiny world produced no streamable cold user");

    // ---- live engine: stream events, graduate, hot-swap -----------------
    let model = load_model_file(&cfg, vocab_size, &ckpt_path).expect("reload checkpoint");
    let views = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    let engine = ServeEngine::new(model, views, &warm, opts.clone());
    println!("online-smoke: pre-swap generation {}", engine.user_generation());
    assert_eq!(engine.user_generation(), 0);

    let mut graduated = Vec::new();
    for &u in &streamers {
        assert!(!engine.is_warm(u), "cold user {u:?} must start cold");
        // Serve mid-stream so swaps land under traffic.
        let _ = engine.score_user(u).expect("cold score");
        for (i, ev) in events_for(&scenario, u).into_iter().enumerate() {
            let outcome = engine.apply_event(&ev).expect("apply event");
            assert_eq!(outcome.seen, i + 1);
            assert_eq!(outcome.graduated, i + 1 == opts.warm_after);
            assert_eq!(outcome.generation.is_some(), i + 1 >= opts.warm_after);
            let _ = engine.score_user(u).expect("mid-stream score");
        }
        assert!(engine.is_warm(u), "user {u:?} did not graduate");
        graduated.push(u);
    }
    let generation = engine.user_generation();
    println!("online-smoke: post-swap generation {generation}");
    assert!(generation > 0, "no generation swap happened");
    let graduations = om_obs::metrics::counter("serve.graduations").get();
    assert_eq!(graduations, graduated.len() as u64, "graduations counter drifted");
    om_obs::manifest_set("serve.catalogue", (engine.catalogue_len() as u64).into());

    // ---- cold rebuild: same checkpoint, same interaction state ----------
    // A second engine assembled from scratch: warm users' rows from their
    // training-time target documents, graduated users' rows from their
    // accumulated live texts — both through the same public encode path
    // the online update uses. Post-swap live scores must match bitwise.
    let model2 = load_model_file(&cfg, vocab_size, &ckpt_path).expect("reload checkpoint");
    let views2 = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    let dim = engine.pin_users().arena().dim();
    let mut ids: Vec<UserId> = Vec::new();
    let mut rows: Vec<f32> = Vec::new();
    for &u in engine.pin_users().arena().ids() {
        let doc: Vec<usize> = if graduated.contains(&u) {
            let texts: Vec<String> = events_for(&scenario, u)
                .into_iter()
                .map(|ev| ev.text)
                .collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            views2.encode_reviews(&refs)
        } else {
            views2.target_doc(u).to_vec()
        };
        ids.push(u);
        rows.extend(model2.user_target_rows(&[&doc]));
    }
    let rebuilt_users = UserArena::from_raw(ids, rows, dim);
    let items2 = ItemArena::build(&model2, &views2, opts.arena_batch);
    let rebuilt = ServeEngine::with_arenas(model2, views2, items2, rebuilt_users, opts.clone());
    let mut checked = warm.clone();
    checked.extend_from_slice(&graduated);
    for &u in &checked {
        let live = engine.score_user(u).expect("live score");
        let cold = rebuilt.score_user(u).expect("rebuilt score");
        assert_eq!(live.len(), cold.len());
        for (a, b) in live.iter().zip(&cold) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "post-swap score diverged from the cold rebuild for user {u:?}"
            );
        }
    }
    println!(
        "online-smoke: post-swap scores equal the cold rebuild bitwise over {} users",
        checked.len()
    );

    // ---- threaded front-end: events interleaved with requests ----------
    let fopts = FrontendOptions::from_serve(&opts).expect("frontend options");
    let (resp_tx, resp_rx) = std::sync::mpsc::channel();
    let f_cfg = cfg.clone();
    let f_scenario = scenario.clone();
    let f_ckpt = ckpt_path.clone();
    let f_opts = opts.clone();
    // om-lint: allow(thread-spawn) — the threaded front-end under test.
    let frontend = Frontend::spawn(
        move || {
            let model = load_model_file(&f_cfg, vocab_size, &f_ckpt).expect("reload in worker");
            let views = CorpusViews::build(&f_scenario, &f_cfg, &mut seeded_rng(f_cfg.seed));
            let warm = f_scenario.train_users.clone();
            ServeEngine::new(model, views, &warm, f_opts)
        },
        fopts,
        resp_tx,
    )
    .expect("spawn front-end");
    let handle = frontend.handle();
    let streamer = streamers[0];
    let mut admitted = 0u64;
    let mut interactions = 0u64;
    for (i, ev) in events_for(&scenario, streamer).into_iter().enumerate() {
        loop {
            match handle.try_send(Request { id: i as u64, user: streamer, arrive_us: 0 }) {
                Ok(()) => break,
                Err(om_serve::SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("request rejected: {e}"),
            }
        }
        admitted += 1;
        loop {
            match handle.submit_interaction(ev.clone()) {
                Ok(()) => break,
                Err(om_serve::SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("interaction rejected: {e}"),
            }
        }
        interactions += 1;
    }
    let stats = frontend.shutdown().expect("front-end shutdown");
    assert_eq!(stats.served, admitted, "front-end lost a request");
    assert_eq!(resp_rx.try_iter().count() as u64, admitted);
    let snap = handle.stats_snapshot();
    assert_eq!(snap.interactions, interactions);
    assert!(snap.graduations >= 1, "front-end streaming graduated nobody");
    assert!(snap.swaps >= 1, "front-end streaming swapped no generation");
    assert_eq!(snap.update_errors, 0);
    println!(
        "online-smoke: front-end served {} requests, {} interactions, {} graduation(s), {} swap(s)",
        snap.served, snap.interactions, snap.graduations, snap.swaps
    );

    // The new series must be visible to /statz without http.rs edits.
    let statz = om_obs::live::render_statz(&om_obs::live::snapshot_all()).to_string();
    for series in ["serve.graduations", "serve.update.swaps", "serve.frontend.interactions"] {
        assert!(statz.contains(series), "{series} missing from /statz");
    }
    om_obs::manifest_set("serve.online_ok", true.into());

    let dir = om_obs::run_finish().expect("run artifacts written");
    // Machine-readable: CI captures this line to locate the artifact.
    println!("{}", dir.display());
}
