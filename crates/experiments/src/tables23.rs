//! Shared driver for Tables 2 and 3 (the binaries differ only by the
//! generator preset and the paper reference rows).

use om_data::{SynthConfig, SynthWorld};
use om_metrics::improvement_pct;

use crate::paper;
use crate::report::{mark_best, Table};
use crate::runner::{cli_trials, run_trials, Method};

/// Shared driver for Tables 2 and 3 (the binaries differ by preset).
pub fn run_table(
    title: &str,
    preset: SynthConfig,
    paper_rows: &[paper::PaperRow; 6],
    tsv: &str,
) {
    let run_name = tsv.trim_end_matches(".tsv");
    let _run = om_obs::run_scope(run_name);
    om_obs::manifest_set("experiment.title", title.into());
    let trials = cli_trials(3);
    om_obs::manifest_set("experiment.trials", (trials as u64).into());
    om_obs::info!("generating world ({trials} trial(s) per cell)…");
    let world = SynthWorld::generate(preset, &["Books", "Movies", "Music"]);
    let methods = Method::paper_lineup();

    let mut header: Vec<&str> = vec!["Scenario", "Metric"];
    header.extend(paper::METHODS);
    header.push("Δ%");
    header.push("paper Δ%");
    let mut table = Table::new(title, &header);

    for (si, (src, tgt)) in paper::SCENARIOS.iter().enumerate() {
        om_obs::info!("scenario {src} -> {tgt}…");
        let results: Vec<_> = methods
            .iter()
            .map(|m| run_trials(&world, src, tgt, m, trials, 1.0))
            .collect();
        let rmse: Vec<f32> = results.iter().map(|r| r.rmse.mean).collect();
        let mae: Vec<f32> = results.iter().map(|r| r.mae.mean).collect();
        let best_other_rmse = rmse[..6].iter().cloned().fold(f32::INFINITY, f32::min);
        let best_other_mae = mae[..6].iter().cloned().fold(f32::INFINITY, f32::min);

        let mut row = vec![format!("{src} -> {tgt}"), "RMSE".to_string()];
        row.extend(mark_best(&rmse));
        row.push(format!("{:+.1}%", improvement_pct(rmse[6], best_other_rmse)));
        row.push(format!("{:+.1}%", paper_rows[si].delta_rmse_pct));
        table.row(row);

        let mut row = vec![String::new(), "MAE".to_string()];
        row.extend(mark_best(&mae));
        row.push(format!("{:+.1}%", improvement_pct(mae[6], best_other_mae)));
        row.push(format!("{:+.1}%", paper_rows[si].delta_mae_pct));
        table.row(row);

        // paper reference rows in the TSV for archival comparison
        let mut row = vec![String::new(), "RMSE(paper)".to_string()];
        row.extend(paper_rows[si].rmse.iter().map(|v| format!("{v:.3}")));
        row.push(String::new());
        row.push(String::new());
        table.row(row);
        let mut row = vec![String::new(), "MAE(paper)".to_string()];
        row.extend(paper_rows[si].mae.iter().map(|v| format!("{v:.3}")));
        row.push(String::new());
        row.push(String::new());
        table.row(row);
    }

    // Final table rendering stays on stdout — it *is* the program's output.
    println!("{}", table.render());
    table.write_tsv(tsv).expect("write results TSV");
    println!("TSV written to results/{tsv}");
}
