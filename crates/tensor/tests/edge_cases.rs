//! Numerical and structural edge cases for the autograd engine: reuse of a
//! tensor in several graph positions, deep chains, degenerate shapes, and
//! gradient accumulation semantics.

use om_tensor::{init, no_grad, seeded_rng, Tensor};

#[test]
fn diamond_graph_accumulates_both_paths() {
    // y = x·x + x  → dy/dx = 2x + 1 (x used twice in one graph)
    let x = Tensor::from_vec(vec![3.0], &[1]).requires_grad();
    let y = x.mul(&x).add(&x).sum_all();
    y.backward();
    assert_eq!(x.grad_vec().unwrap(), vec![7.0]);
}

#[test]
fn tensor_reused_across_two_losses_accumulates() {
    let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
    x.square().sum_all().backward(); // d = 4
    x.scale(3.0).sum_all().backward(); // d = 3
    assert_eq!(x.grad_vec().unwrap(), vec![7.0]);
}

#[test]
fn deep_chain_does_not_overflow_stack() {
    // iterative DFS must survive a 10k-deep linear graph
    let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
    let mut y = x.clone();
    for _ in 0..10_000 {
        y = y.add_scalar(0.0);
    }
    y.sum_all().backward();
    assert_eq!(x.grad_vec().unwrap(), vec![1.0]);
}

#[test]
fn single_element_matmul() {
    let a = Tensor::from_vec(vec![3.0], &[1, 1]).requires_grad();
    let b = Tensor::from_vec(vec![4.0], &[1, 1]).requires_grad();
    let y = a.matmul(&b).sum_all();
    assert_eq!(y.item(), 12.0);
    y.backward();
    assert_eq!(a.grad_vec().unwrap(), vec![4.0]);
    assert_eq!(b.grad_vec().unwrap(), vec![3.0]);
}

#[test]
fn softmax_handles_extreme_logits() {
    let x = Tensor::from_vec(vec![1e4, -1e4, 0.0], &[1, 3]);
    let s = x.softmax_rows().to_vec();
    assert!((s[0] - 1.0).abs() < 1e-4);
    assert!(s[1] >= 0.0 && s[1] < 1e-4);
    assert!(s.iter().all(|v| v.is_finite()));
}

#[test]
fn relu_at_exact_zero_has_zero_gradient() {
    // subgradient choice: relu'(0) = 0 in this implementation (x > 0 mask)
    let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
    x.relu().sum_all().backward();
    assert_eq!(x.grad_vec().unwrap(), vec![0.0]);
}

#[test]
fn no_grad_inside_training_graph_blocks_only_inner() {
    let w = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
    let a = w.scale(3.0); // tracked
    let frozen = {
        let _g = no_grad();
        w.scale(100.0) // untracked constant 200
    };
    let y = a.add(&frozen).sum_all();
    y.backward();
    // only the tracked path contributes gradient
    assert_eq!(w.grad_vec().unwrap(), vec![3.0]);
    assert_eq!(y.item(), 206.0);
}

#[test]
fn embedding_of_repeated_indices_matches_select_rows() {
    let mut rng = seeded_rng(4);
    let table = init::normal(&[5, 3], 1.0, &mut rng);
    let idx = [4usize, 4, 0, 2];
    let a = table.embedding_lookup(&idx).to_vec();
    let b = table.select_rows(&idx).to_vec();
    assert_eq!(a, b);
}

#[test]
fn unfold_full_width_window_is_identity_reshape() {
    let mut rng = seeded_rng(5);
    let x = init::normal(&[2, 4, 3], 1.0, &mut rng);
    let u = x.unfold_windows(4); // one window per document
    assert_eq!(u.dims(), &[2, 12]);
    assert_eq!(u.to_vec(), x.to_vec());
}

#[test]
fn max_over_time_with_single_timestep() {
    let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 1, 3]).requires_grad();
    let m = x.max_over_time();
    assert_eq!(m.to_vec(), vec![1.0, -2.0, 3.0]);
    m.sum_all().backward();
    assert_eq!(x.grad_vec().unwrap(), vec![1.0, 1.0, 1.0]);
}

#[test]
fn backward_with_custom_seed_scales_gradient() {
    let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
    let y = x.scale(2.0);
    y.backward_with(&[10.0, 100.0]);
    assert_eq!(x.grad_vec().unwrap(), vec![20.0, 200.0]);
}

#[test]
fn detached_branch_is_constant_to_autograd() {
    let x = Tensor::from_vec(vec![5.0], &[1]).requires_grad();
    let d = x.scale(2.0).detach(); // value 10, no graph
    let y = x.mul(&d).sum_all(); // dy/dx = d = 10
    y.backward();
    assert_eq!(x.grad_vec().unwrap(), vec![10.0]);
}
