//! Cross-crate integration: the full OmniMatch pipeline from synthetic
//! corpus generation through training to cold-start evaluation.

use omnimatch::core::{AuxMode, OmniMatchConfig, Trainer};
use omnimatch::data::types::{TextField, UserId};
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};
use omnimatch::nn::HasParams;

fn tiny_scenario() -> omnimatch::data::CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

#[test]
fn full_pipeline_trains_and_evaluates() {
    let scenario = tiny_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast()).fit(&scenario);
    let eval = trained.evaluate(&scenario.test_pairs());
    assert!(eval.rmse.is_finite() && eval.rmse > 0.0);
    assert!(eval.mae <= eval.rmse + 1e-6, "MAE must not exceed RMSE");
}

#[test]
fn no_target_leakage_for_cold_users() {
    // The invariant behind the whole evaluation: cold-start users' target
    // reviews are absent from every training-visible structure.
    let scenario = tiny_scenario();
    for u in scenario.cold_start_users() {
        assert!(!scenario.target_train.contains_user(u));
    }
    // and their auxiliary documents only contain donor (train-user) text
    let gen = omnimatch::core::AuxiliaryReviewGenerator::new(&scenario);
    let mut rng = omnimatch::tensor::seeded_rng(3);
    for &u in scenario.test_users.iter().take(5) {
        let doc = gen.generate(u, TextField::Summary, &mut rng);
        for step in &doc.steps {
            assert!(
                scenario.train_users.contains(&step.chosen_user),
                "donor {} is not a training user",
                step.chosen_user
            );
            assert_ne!(step.chosen_user, u, "user donated to themself");
        }
    }
}

#[test]
fn training_is_reproducible_across_full_pipeline() {
    let scenario = tiny_scenario();
    let cfg = OmniMatchConfig::fast().with_seed(99);
    let a = Trainer::new(cfg.clone()).fit(&scenario);
    let b = Trainer::new(cfg).fit(&scenario);
    let pairs: Vec<(UserId, _)> = scenario
        .test_pairs()
        .iter()
        .take(8)
        .map(|it| (it.user, it.item))
        .collect();
    assert_eq!(a.predict(&pairs), b.predict(&pairs));
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let scenario = tiny_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast()).fit(&scenario);
    let pairs: Vec<_> = scenario
        .test_pairs()
        .iter()
        .take(5)
        .map(|it| (it.user, it.item))
        .collect();
    let before = trained.predict(&pairs);

    let bytes = omnimatch::nn::serialize::save_params(&trained.model().params());
    // corrupt all parameters, then restore
    for p in trained.model().params() {
        p.data_mut().fill(0.0);
    }
    let zeroed = trained.predict(&pairs);
    assert_ne!(before, zeroed, "zeroing must change predictions");
    omnimatch::nn::serialize::load_params(&trained.model().params(), &bytes).unwrap();
    assert_eq!(before, trained.predict(&pairs));
}

#[test]
fn source_fallback_differs_from_generated_aux() {
    let scenario = tiny_scenario();
    let a = Trainer::new(OmniMatchConfig::fast()).fit(&scenario);
    let cfg = OmniMatchConfig {
        aux_mode: AuxMode::SourceFallback,
        ..OmniMatchConfig::fast()
    };
    let b = Trainer::new(cfg).fit(&scenario);
    let pairs: Vec<_> = scenario
        .test_pairs()
        .iter()
        .take(5)
        .map(|it| (it.user, it.item))
        .collect();
    assert_ne!(a.predict(&pairs), b.predict(&pairs));
}

#[test]
fn validation_selection_never_worse_than_last_epoch_on_validation() {
    let scenario = tiny_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast()).fit(&scenario);
    let report = trained.report();
    let best = report.valid_rmse[report.best_epoch];
    for &r in &report.valid_rmse {
        assert!(best <= r + 1e-6, "best epoch was not minimal: {report:?}");
    }
}

#[test]
fn three_domain_world_supports_all_six_scenarios() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies", "Music"]);
    for (s, t) in [
        ("Books", "Movies"),
        ("Movies", "Books"),
        ("Books", "Music"),
        ("Music", "Books"),
        ("Movies", "Music"),
        ("Music", "Movies"),
    ] {
        let sc = world.scenario(s, t, SplitConfig::default());
        assert!(!sc.test_pairs().is_empty(), "{s}->{t} has no test pairs");
    }
}
