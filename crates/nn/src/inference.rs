//! Inference-only forward mode for serving.
//!
//! [`inference_mode`] returns an RAII guard that, while alive on the
//! current thread,
//!
//! * disables autograd tape allocation (it holds an
//!   [`om_tensor::NoGradGuard`], so every op severs its graph edges), and
//! * forces [`crate::Dropout`] to the identity **even if a caller passes
//!   `training = true`** — a serving path must never be able to draw a
//!   dropout mask, both for determinism and so inference consumes nothing
//!   from any RNG a later training run might reuse.
//!
//! The flag is thread-local, like the no-grad flag it extends: worker
//! threads of `om_tensor::runtime` only ever execute closed kernels (no
//! layer forwards), so a guard on the calling thread covers the whole
//! forward pass. Guards nest; dropping restores the previous state.

use std::cell::Cell;

use om_tensor::{no_grad, NoGradGuard};

thread_local! {
    static INFERENCE: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread inside an [`inference_mode`] scope?
pub fn is_inference() -> bool {
    INFERENCE.with(|c| c.get())
}

/// RAII scope for inference-only forwards: no tape, no dropout masks.
/// Dropping restores the previous thread-local state, so scopes nest.
pub struct InferenceGuard {
    prev: bool,
    _no_grad: NoGradGuard,
}

/// Enter inference mode on the current thread (see module docs).
pub fn inference_mode() -> InferenceGuard {
    InferenceGuard {
        prev: INFERENCE.with(|c| c.replace(true)),
        _no_grad: no_grad(),
    }
}

impl Drop for InferenceGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        INFERENCE.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dropout;
    use om_tensor::{grad_enabled, seeded_rng, Tensor};

    #[test]
    fn guard_sets_and_restores_flag() {
        assert!(!is_inference());
        {
            let _g = inference_mode();
            assert!(is_inference());
            assert!(!grad_enabled(), "inference implies no-grad");
            {
                let _inner = inference_mode();
                assert!(is_inference());
            }
            assert!(is_inference(), "inner drop must not clear outer scope");
        }
        assert!(!is_inference());
        assert!(grad_enabled());
    }

    #[test]
    fn dropout_is_identity_even_with_training_true() {
        let d = Dropout::new(0.4);
        let x = Tensor::ones(&[64]);
        let _g = inference_mode();
        let mut rng = seeded_rng(1);
        let state_before = rng.state();
        let y = d.forward(&x, true, &mut rng);
        assert_eq!(y.to_vec(), vec![1.0; 64]);
        assert_eq!(rng.state(), state_before, "inference dropout must not draw from the RNG");
    }

    #[test]
    fn no_tape_is_allocated_under_inference() {
        let _g = inference_mode();
        let x = Tensor::ones(&[4]).requires_grad();
        let y = x.relu().sum_all();
        // Graph edges were severed, so backward is a no-op and no gradient
        // ever reaches the leaf.
        y.backward();
        assert!(x.grad_vec().is_none(), "ops under inference must sever graph edges");
    }
}
