//! Offline, dependency-free subset of the `proptest` API.
//!
//! Supports the patterns this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))]
//!   #[test] fn name(a in strategy, ...) { body } ... }`
//! * range strategies (`-2.0f32..2.0`, `0u64..500`, `1..20`)
//! * `proptest::collection::vec(strategy, len)` with a fixed or ranged
//!   length
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! immediately with the assertion message. Case generation is seeded per
//! test by `PROPTEST_SEED` (default 0), so runs are reproducible.

use rand::{RngExt, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Seed for the per-test generator, from `PROPTEST_SEED` (default 0).
pub fn env_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Build the generator for one test function.
pub fn test_rng(test_name: &str) -> TestRng {
    // Mix the test name in so sibling tests draw distinct streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(env_seed() ^ h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Acceptable length specifications for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    pub trait IntoLenRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `element` and whose length comes from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Assert inside a property test; failure panics with the message (no
/// shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` test-harness macro: expands each contained function into
/// a `#[test]` that samples its arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f32..2.0, n in 1usize..9) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0.0f32..1.0, 5usize), w in collection::vec(0i32..3, 2..6)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }

    #[test]
    fn just_returns_value() {
        let mut rng = crate::test_rng("just");
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
