//! Regenerates **Table 2**: RMSE/MAE of all seven methods on the six
//! Amazon-preset cross-domain scenarios, with the Δ% improvement of Ours
//! over the best competitor. Pass `--trials 5` to match the paper's
//! protocol exactly (default 3; `--fast` = 1).

use om_data::SynthConfig;
use om_experiments::paper;
use om_experiments::tables23::run_table;

fn main() {
    run_table(
        "Table 2 — Amazon preset (measured; paper reference rows inline)",
        SynthConfig::amazon(),
        &paper::TABLE2,
        "table2.tsv",
    );
}
