//! The TextCNN feature extractor of §4.2: parallel 1-D convolutions with
//! kernel widths (3, 4, 5) over embedded review documents, ReLU, and
//! max-over-time pooling (Eqs. 4–7). Output width = `kernels × filters`.
//!
//! Each branch lowers to unfold (im2col) + GEMM + bias + ReLU + pooling;
//! every one of those kernels is multithreaded inside `om_tensor` (see
//! `om_tensor::runtime`), so the whole extractor scales with cores while
//! staying bitwise deterministic.

use om_tensor::{init, Rng, Tensor};

use crate::module::HasParams;

/// One convolution branch of a given kernel width.
struct ConvBranch {
    width: usize,
    /// `[width * emb_dim, filters]` — convolution expressed as unfold+matmul.
    weight: Tensor,
    bias: Tensor,
}

/// Multi-width text convolution with max-over-time pooling.
pub struct TextCnn {
    emb_dim: usize,
    filters: usize,
    branches: Vec<ConvBranch>,
}

impl TextCnn {
    /// Build with the paper's kernel widths `(3, 4, 5)` by default; any
    /// non-empty width set is accepted.
    pub fn new(emb_dim: usize, kernel_widths: &[usize], filters: usize, rng: &mut Rng) -> TextCnn {
        assert!(!kernel_widths.is_empty(), "TextCnn: need at least one kernel width");
        assert!(filters > 0, "TextCnn: need at least one filter");
        let branches = kernel_widths
            .iter()
            .map(|&w| ConvBranch {
                width: w,
                weight: init::he(w * emb_dim, filters, rng).requires_grad(),
                bias: Tensor::zeros(&[filters]).requires_grad(),
            })
            .collect();
        TextCnn {
            emb_dim,
            filters,
            branches,
        }
    }

    /// Output feature width: `kernel_widths.len() * filters`.
    pub fn out_dim(&self) -> usize {
        self.branches.len() * self.filters
    }

    /// Minimum document length this extractor accepts (the widest kernel).
    pub fn min_len(&self) -> usize {
        self.branches.iter().map(|b| b.width).max().unwrap_or(1)
    }

    /// Forward pass over a batch of embedded documents `[batch, len, emb]`
    /// → pooled features `[batch, out_dim]` (Eqs. 4–7).
    pub fn forward(&self, embedded: &Tensor) -> Tensor {
        let dims = embedded.dims();
        assert_eq!(dims.len(), 3, "TextCnn expects [batch, len, emb]");
        let (b, l, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.emb_dim, "TextCnn: embedding width mismatch");
        assert!(
            l >= self.min_len(),
            "TextCnn: document length {l} shorter than widest kernel {}",
            self.min_len()
        );
        let pooled: Vec<Tensor> = self
            .branches
            .iter()
            .map(|br| {
                let t = l - br.width + 1;
                let windows = embedded.unfold_windows(br.width); // [b*t, w*d]
                let z = windows
                    .matmul(&br.weight)
                    .add_row(&br.bias)
                    .relu()
                    .reshape(&[b, t, self.filters]);
                z.max_over_time() // [b, filters]
            })
            .collect();
        let refs: Vec<&Tensor> = pooled.iter().collect();
        Tensor::concat_cols(&refs)
    }
}

impl HasParams for TextCnn {
    fn params(&self) -> Vec<Tensor> {
        self.branches
            .iter()
            .flat_map(|b| [b.weight.clone(), b.bias.clone()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn paper_configuration_shapes() {
        let mut rng = seeded_rng(1);
        let cnn = TextCnn::new(16, &[3, 4, 5], 20, &mut rng);
        assert_eq!(cnn.out_dim(), 60);
        assert_eq!(cnn.min_len(), 5);
        let x = Tensor::zeros(&[2, 12, 16]);
        assert_eq!(cnn.forward(&x).dims(), &[2, 60]);
    }

    #[test]
    fn single_kernel_matches_manual_conv() {
        // kernel width 1 over a single 1-d "embedding": conv == matmul.
        let mut rng = seeded_rng(2);
        let cnn = TextCnn::new(1, &[1], 1, &mut rng);
        cnn.branches[0].weight.data_mut()[0] = 2.0;
        cnn.branches[0].bias.data_mut()[0] = 0.5;
        // doc [1, 3, 1] = [1, -1, 4] → relu(2x + .5) per pos → max = 8.5
        let x = Tensor::from_vec(vec![1.0, -1.0, 4.0], &[1, 3, 1]);
        let y = cnn.forward(&x);
        assert_eq!(y.to_vec(), vec![8.5]);
    }

    #[test]
    fn gradients_flow_through_all_branches() {
        let mut rng = seeded_rng(3);
        let cnn = TextCnn::new(4, &[2, 3], 5, &mut rng);
        let x = om_tensor::init::normal(&[2, 6, 4], 1.0, &mut rng);
        cnn.forward(&x).sum_all().backward();
        for p in cnn.params() {
            assert!(p.grad_vec().is_some(), "missing grad on {p:?}");
        }
    }

    #[test]
    fn params_count() {
        let mut rng = seeded_rng(4);
        let cnn = TextCnn::new(8, &[3, 4, 5], 10, &mut rng);
        // per branch: w*8*10 weights + 10 bias
        let expected = (3 * 8 * 10 + 10) + (4 * 8 * 10 + 10) + (5 * 8 * 10 + 10);
        assert_eq!(cnn.num_params(), expected);
    }

    #[test]
    #[should_panic(expected = "shorter than widest kernel")]
    fn short_document_panics() {
        let mut rng = seeded_rng(5);
        let cnn = TextCnn::new(4, &[5], 2, &mut rng);
        let x = Tensor::zeros(&[1, 3, 4]);
        let _ = cnn.forward(&x);
    }
}
