//! End-to-end training and cold-start evaluation (Eq. 21, §5.2, §5.4).
//!
//! Each mini-batch of target-domain training interactions drives all three
//! losses of the joint objective:
//!
//! * `L_rating` — softmax cross-entropy of the rating classifier over
//!   `r_target ⊕ r_item` (Eq. 19);
//! * `L_SCL` — supervised contrastive loss over both projected views
//!   (`x̂_source` and `x̂_target`, Eq. 13), labelled by rating — which pulls
//!   each user's source and target representations together *and* groups
//!   same-rating pairs (Fig. 3);
//! * `L_domain` — domain cross-entropy of the invariant features behind
//!   the GRL plus the specific features classified normally (Eqs. 15/17).
//!
//! `L_total = L_rating + α·L_SCL + β·L_domain` is minimised with Adadelta
//! (lr 0.02, ρ 0.95 — §5.4).

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, Rating, UserId};
use om_metrics::Eval;
use om_nn::serialize::{encode_tensors, CheckpointV2};
use om_nn::{Adadelta, HasParams, Optimizer, SupConBatch};
use om_tensor::{no_grad, seeded_rng, Rng, Tensor};
use om_text::pretrain::subword_hash_init;
use rand::seq::SliceRandom;
use rand::RngExt as _;

use crate::ckpt::{self, CkptConfig};
use crate::config::OmniMatchConfig;
use crate::corpus::CorpusViews;
use crate::model::{DomainSide, OmniMatchModel};

/// Mean per-batch losses of one epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Mean total loss (Eq. 21).
    pub total: f32,
    /// Mean rating classification loss.
    pub rating: f32,
    /// Mean supervised contrastive loss (0 when disabled).
    pub scl: f32,
    /// Mean domain classification loss (0 when disabled).
    pub domain: f32,
}

/// Summary of a completed training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch loss means.
    pub epochs: Vec<EpochStats>,
    /// Wall-clock training time in seconds (Table 6's measurement).
    pub train_seconds: f64,
    /// Number of training interactions.
    pub samples: usize,
    /// Validation RMSE per epoch (cold-start validation users, §5.2).
    pub valid_rmse: Vec<f32>,
    /// Epoch whose parameters were kept (best validation RMSE).
    pub best_epoch: usize,
}

/// Configured-but-unfitted OmniMatch.
pub struct Trainer {
    cfg: OmniMatchConfig,
    ckpt: Option<CkptConfig>,
}

impl Trainer {
    /// Wrap a configuration. Checkpointing follows the environment
    /// (`OM_CKPT` / `OM_CKPT_DIR` / `OM_CKPT_EVERY`) unless
    /// [`Trainer::with_ckpt`] sets it explicitly.
    pub fn new(cfg: OmniMatchConfig) -> Trainer {
        cfg.validate();
        Trainer { cfg, ckpt: None }
    }

    /// Enable durable checkpointing into an explicit directory,
    /// independent of the `OM_CKPT` environment gate.
    pub fn with_ckpt(mut self, ckpt: CkptConfig) -> Trainer {
        self.ckpt = Some(ckpt);
        self
    }

    /// Train on a scenario and return the fitted model.
    ///
    /// When observability is enabled (`OM_OBS=1`) this opens a run scope
    /// named `fit` (a no-op if an outer caller — e.g. a table binary —
    /// already owns the run), records per-batch and per-epoch telemetry
    /// events, and annotates the run manifest with the training
    /// configuration. Telemetry only *reads* values the training loop
    /// already computes; results are bitwise identical with it on or off.
    pub fn fit(&self, scenario: &CrossDomainScenario) -> TrainedOmniMatch {
        let _run = om_obs::run_scope("fit");
        let obs_on = om_obs::enabled();
        let _fit_span = om_obs::trace::span_if(obs_on, "trainer.fit");
        let cold_users: Vec<UserId> = scenario.cold_start_users();
        let cfg = &self.cfg;
        if obs_on {
            om_obs::manifest_set("cfg.seed", cfg.seed.into());
            om_obs::manifest_set("cfg.epochs", (cfg.epochs as u64).into());
            om_obs::manifest_set("cfg.batch_size", (cfg.batch_size as u64).into());
            om_obs::manifest_set("cfg.lr", (cfg.lr as f64).into());
            om_obs::manifest_set("cfg.rho", (cfg.rho as f64).into());
            om_obs::manifest_set("cfg.alpha", (cfg.alpha as f64).into());
            om_obs::manifest_set("cfg.beta", (cfg.beta as f64).into());
            om_obs::manifest_set("cfg.use_scl", cfg.use_scl.into());
            om_obs::manifest_set("cfg.use_da", cfg.use_da.into());
            om_obs::manifest_set("data.cold_users", (cold_users.len() as u64).into());
        }
        let mut rng = seeded_rng(cfg.seed);
        let views = CorpusViews::build(scenario, cfg, &mut rng);

        // Static shape/graph check *before* any parameter is allocated:
        // rejects inconsistent configurations with the offending layer's
        // name, and guards against miswirings that would silently starve a
        // head of gradient (ablations legitimately orphan their own heads).
        let shape = crate::shapecheck::shape_check(cfg, views.vocab.len())
            .unwrap_or_else(|e| panic!("{e}"));
        if cfg.use_scl && cfg.alpha != 0.0 && cfg.use_da && cfg.beta != 0.0 {
            assert!(
                shape.unreachable_params.is_empty(),
                "miswired model: no gradient path from L_total to {:?}",
                shape.unreachable_params
            );
        }

        let embedding_init = if cfg.pretrain_embeddings {
            Some(subword_hash_init(&views.vocab, cfg.emb_dim))
        } else {
            None
        };
        let model = OmniMatchModel::new(cfg, views.vocab.len(), embedding_init, &mut rng);

        // Training samples: the target-domain interactions of the training
        // users (target_train contains exactly those, §5.2).
        let samples: Vec<(UserId, ItemId, usize)> = scenario
            .target_train
            .interactions()
            .iter()
            .map(|it| (it.user, it.item, it.rating.label()))
            .collect();
        assert!(
            samples.len() >= 2,
            "scenario provides too few training interactions"
        );

        let mut opt = Adadelta::new(model.params(), cfg.lr, cfg.rho);
        let mut epochs = Vec::with_capacity(cfg.epochs);
        let mut valid_rmse = Vec::with_capacity(cfg.epochs);
        let mut best = (f32::INFINITY, 0usize, None::<bytes::Bytes>);
        let valid_pairs = scenario.validation_pairs();

        // Durable checkpointing: explicit config wins, else the OM_CKPT
        // environment gate. Resume restores parameters, optimizer state,
        // RNG and the loss/validation history, so the continued run is
        // bitwise identical to an uninterrupted one (wall-clock
        // `train_seconds` is the single documented exception).
        let ckpt_cfg = self
            .ckpt
            .clone()
            .or_else(|| CkptConfig::from_env(&format!("seed{}", cfg.seed)));
        let digest = ckpt::config_digest(cfg, samples.len(), views.vocab.len(), &model.params());
        let mut start_epoch = 0usize;
        if let Some(ck) = &ckpt_cfg {
            match ckpt::load_latest(&ck.dir, digest, &model.params(), &mut opt) {
                Some(snap) => {
                    start_epoch = snap.next_epoch;
                    epochs = snap.stats;
                    valid_rmse = snap.valid_rmse;
                    best = (snap.best_rmse, snap.best_epoch, snap.best_params);
                    rng = om_tensor::Rng::from_state(snap.rng);
                }
                None => {
                    // A failed restore may have imported optimizer state
                    // before detecting corruption; rebuild so a fresh run
                    // truly starts fresh.
                    opt = Adadelta::new(model.params(), cfg.lr, cfg.rho);
                }
            }
        }

        let start_ns = om_obs::clock::now_ns();
        for epoch in start_epoch..cfg.epochs {
            let _epoch_span = om_obs::trace::span_if(obs_on, "trainer.epoch");
            // Shuffle a fresh copy of the canonical sample order, so each
            // epoch's batch composition is a pure function of the RNG state
            // at the epoch boundary — an in-place shuffle would make it
            // depend on every previous epoch's ordering, which a resumed
            // run cannot replay.
            let mut epoch_samples = samples.clone();
            epoch_samples.shuffle(&mut rng);
            // All of the epoch's randomness that shapes the *data* (aux
            // augmentation, cold-user alignment picks) is drawn here,
            // sequentially; the per-batch document assembly then fans out
            // over the tensor runtime's pool. See [`plan_epoch`].
            let inputs = {
                let _plan_span = om_obs::trace::span_if(obs_on, "trainer.plan_epoch");
                plan_epoch(&views, cfg, &epoch_samples, &cold_users, &mut rng)
            };
            let mut sums = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let mut batches = 0usize;
            // Running means of the per-step optimizer summaries, reported
            // once per epoch (per-batch values also go to the event stream).
            // om-lint: reduction-ok(observability-only running means over a
            // fixed batch order; never feeds a parameter or a score)
            let mut grad_norm = 0.0f64;
            let mut update_norm = 0.0f64; // om-lint: reduction-ok(see above)
            let mut last_step: Option<om_nn::StepStats> = None;
            for input in &inputs {
                let _batch_span = om_obs::trace::span_if(obs_on, "trainer.batch");
                let stats = train_batch(&model, &views, cfg, input, &mut rng);
                opt.step();
                opt.zero_grad();
                sums.0 += stats.total;
                sums.1 += stats.rating;
                sums.2 += stats.scl;
                sums.3 += stats.domain;
                batches += 1;
                if obs_on {
                    let step = opt.step_stats();
                    if let Some(s) = step {
                        grad_norm += s.grad_norm;
                        update_norm += s.update_norm;
                        last_step = Some(s);
                    }
                    om_obs::emit(
                        "batch",
                        &[
                            ("epoch", (epoch as u64).into()),
                            ("batch", ((batches - 1) as u64).into()),
                            ("total", stats.total.into()),
                            ("rating", stats.rating.into()),
                            ("scl", stats.scl.into()),
                            ("domain", stats.domain.into()),
                            ("grad_norm", step.map_or(0.0, |s| s.grad_norm).into()),
                            ("update_norm", step.map_or(0.0, |s| s.update_norm).into()),
                        ],
                    );
                }
            }
            let b = batches.max(1) as f32;
            epochs.push(EpochStats {
                total: sums.0 / b,
                rating: sums.1 / b,
                scl: sums.2 / b,
                domain: sums.3 / b,
            });
            // Model selection on the cold-start validation users (§5.2):
            // keep the parameters of the best validation epoch.
            if !valid_pairs.is_empty() {
                let _valid_span = om_obs::trace::span_if(obs_on, "trainer.validate");
                let r = validation_rmse(&model, &views, cfg, &valid_pairs);
                valid_rmse.push(r);
                if r < best.0 {
                    best = (
                        r,
                        epoch,
                        Some(om_nn::serialize::save_params(&model.params())),
                    );
                }
            }
            if obs_on {
                let e = epochs.last().expect("epoch stats just pushed");
                let bd = batches.max(1) as f64;
                om_obs::emit(
                    "epoch",
                    &[
                        ("epoch", (epoch as u64).into()),
                        ("total", e.total.into()),
                        ("rating", e.rating.into()),
                        ("scl", e.scl.into()),
                        ("domain", e.domain.into()),
                        ("valid_rmse", valid_rmse.last().copied().unwrap_or(f32::NAN).into()),
                        ("grad_norm", (grad_norm / bd).into()),
                        ("update_norm", (update_norm / bd).into()),
                        ("param_norm", last_step.map_or(0.0, |s| s.param_norm).into()),
                        ("sq_avg_mean", last_step.map_or(0.0, |s| s.sq_avg_mean).into()),
                        (
                            "acc_delta_mean",
                            last_step.map_or(0.0, |s| s.acc_delta_mean).into(),
                        ),
                    ],
                );
                om_obs::info!(
                    "epoch {epoch}: total {:.4} rating {:.4} scl {:.4} domain {:.4} valid_rmse {:.4}",
                    e.total,
                    e.rating,
                    e.scl,
                    e.domain,
                    valid_rmse.last().copied().unwrap_or(f32::NAN)
                );
            }
            if let Some(ck) = &ckpt_cfg {
                if (epoch + 1) % ck.every == 0 || epoch + 1 == cfg.epochs {
                    let snap = ckpt::Snapshot {
                        next_epoch: epoch + 1,
                        stats: epochs.clone(),
                        valid_rmse: valid_rmse.clone(),
                        best_rmse: best.0,
                        best_epoch: best.1,
                        best_params: best.2.clone(),
                        rng: rng.state(),
                    };
                    if let Err(e) = ckpt::save(ck, digest, epoch, &model.params(), &opt, &snap) {
                        om_obs::warn!("checkpoint save failed at epoch {epoch}: {e}");
                    }
                }
            }
        }
        // Restore the best validation epoch's parameters. A failed restore
        // degrades gracefully (keep the final epoch) instead of aborting a
        // finished training run.
        if let (_, _, Some(ckpt_blob)) = &best {
            if let Err(e) = om_nn::serialize::load_params(&model.params(), ckpt_blob) {
                om_obs::error!(
                    "best-epoch (epoch {}) restore failed: {e}; keeping final-epoch parameters",
                    best.1
                );
            }
        }
        let report = TrainReport {
            epochs,
            train_seconds: om_obs::clock::now_ns().saturating_sub(start_ns) as f64 / 1e9,
            samples: samples.len(),
            valid_rmse,
            best_epoch: best.1,
        };
        if obs_on {
            om_obs::manifest_set("train.seconds", report.train_seconds.into());
            om_obs::manifest_set("train.samples", (report.samples as u64).into());
            om_obs::manifest_set("train.best_epoch", (report.best_epoch as u64).into());
        }
        TrainedOmniMatch {
            cfg: cfg.clone(),
            model,
            views,
            report,
        }
    }
}

/// Cold-start validation RMSE of the current parameters.
fn validation_rmse(
    model: &OmniMatchModel,
    views: &CorpusViews,
    cfg: &OmniMatchConfig,
    pairs: &[&Interaction],
) -> f32 {
    let _guard = no_grad();
    let mut rng = seeded_rng(cfg.seed ^ 0xBA11);
    let mut scored = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(cfg.batch_size.max(2)) {
        let tgt_docs: Vec<&[usize]> = chunk.iter().map(|it| views.target_doc(it.user)).collect();
        let item_docs: Vec<&[usize]> = chunk.iter().map(|it| views.item_doc(it.item)).collect();
        let f_tgt = model.user_features(&tgt_docs, DomainSide::Target, false, &mut rng);
        let items = model.item_features(&item_docs, false, &mut rng);
        let logits = model.rating_logits(&f_tgt.combined, &items, false, &mut rng);
        for (p, it) in OmniMatchModel::expected_stars(&logits).into_iter().zip(chunk) {
            scored.push((p, it.rating.value()));
        }
    }
    om_metrics::rmse(&scored)
}

/// One mini-batch's fully resolved training input: every document choice
/// (including aux-consistency augmentation) and the cold-user alignment
/// picks, decided ahead of the optimisation loop.
#[derive(Default)]
struct BatchInput<'a> {
    src_docs: Vec<&'a [usize]>,
    tgt_docs: Vec<&'a [usize]>,
    item_docs: Vec<&'a [usize]>,
    labels: Vec<usize>,
    /// Cold-start users joining the alignment losses (empty when disabled).
    align_users: Vec<UserId>,
}

/// Resolve every mini-batch of one epoch into a [`BatchInput`].
///
/// Runs in two phases so training stays bitwise identical at any thread
/// count: (1) all data-shaping randomness — the per-sample aux-augmentation
/// coin flips and the per-batch cold-user picks — is drawn sequentially from
/// `rng`; (2) the document gathering itself, now pure, fans out over the
/// tensor runtime's worker pool, one task per block of batches.
fn plan_epoch<'a>(
    views: &'a CorpusViews,
    cfg: &OmniMatchConfig,
    samples: &[(UserId, ItemId, usize)],
    cold_users: &[UserId],
    rng: &mut Rng,
) -> Vec<BatchInput<'a>> {
    /// One batch's sequential plan: its samples, the per-sample
    /// aux-augmentation coin flips, and the cold users picked for alignment.
    type BatchPlan<'a> = (&'a [(UserId, ItemId, usize)], Vec<bool>, Vec<UserId>);
    let align = cfg.align_cold_users && (cfg.use_scl || cfg.use_da) && !cold_users.is_empty();
    let mut plans: Vec<BatchPlan<'_>> = Vec::new();
    for chunk in samples.chunks(cfg.batch_size) {
        if chunk.len() < 2 {
            continue; // SupCon and batch statistics need ≥ 2
        }
        // Aux-consistency augmentation: with probability `aux_augment_prob`
        // a training user is represented by their Algorithm 1 auxiliary
        // document instead of their real reviews, so the rating classifier
        // trains on the exact document distribution cold-start serving
        // produces.
        let use_aux: Vec<bool> = chunk
            .iter()
            .map(|(u, _, _)| {
                let aux = views.aux_doc(*u);
                cfg.aux_augment_prob > 0.0
                    && !aux.iter().all(|&t| t == 0)
                    && rng.random::<f32>() < cfg.aux_augment_prob
            })
            .collect();
        let picks = if align {
            let k = (chunk.len() / 2).clamp(2, cold_users.len());
            let mut picks: Vec<UserId> = cold_users.to_vec();
            picks.shuffle(rng);
            picks.truncate(k);
            picks
        } else {
            Vec::new()
        };
        plans.push((chunk, use_aux, picks));
    }

    let mut inputs: Vec<BatchInput<'a>> = plans.iter().map(|_| BatchInput::default()).collect();
    om_tensor::runtime::parallel_rows_mut(&mut inputs, 1, 4, |i0, block| {
        for (d, slot) in block.iter_mut().enumerate() {
            let (chunk, use_aux, picks) = &plans[i0 + d];
            *slot = BatchInput {
                src_docs: chunk.iter().map(|(u, _, _)| views.source_doc(*u)).collect(),
                tgt_docs: chunk
                    .iter()
                    .zip(use_aux)
                    .map(|((u, _, _), &aux)| {
                        if aux {
                            views.aux_doc(*u)
                        } else {
                            views.target_doc(*u)
                        }
                    })
                    .collect(),
                item_docs: chunk.iter().map(|(_, i, _)| views.item_doc(*i)).collect(),
                labels: chunk.iter().map(|(_, _, l)| *l).collect(),
                align_users: picks.clone(),
            };
        }
    });
    inputs
}

/// One optimisation step; returns the batch's loss components.
fn train_batch(
    model: &OmniMatchModel,
    views: &CorpusViews,
    cfg: &OmniMatchConfig,
    input: &BatchInput<'_>,
    rng: &mut Rng,
) -> EpochStats {
    let labels = &input.labels;

    let f_src = model.user_features(&input.src_docs, DomainSide::Source, true, rng);
    let f_tgt = model.user_features(&input.tgt_docs, DomainSide::Target, true, rng);
    let items = model.item_features(&input.item_docs, true, rng);

    // L_rating (Eq. 19)
    let logits = model.rating_logits(&f_tgt.combined, &items, true, rng);
    let l_rating = logits.cross_entropy(labels);
    let mut loss = l_rating.scale(1.0);

    // L_SCL (Eq. 13) over both projected views
    let mut scl_value = 0.0f32;
    if cfg.use_scl {
        let x_src = model.project_pairs(&f_src.combined, &items, true, rng);
        let x_tgt = model.project_pairs(&f_tgt.combined, &items, true, rng);
        let mut batch = SupConBatch::new();
        batch.push(x_src, labels);
        batch.push(x_tgt, labels);
        let l_scl = batch.loss(cfg.temperature);
        scl_value = l_scl.item();
        loss = loss.add(&l_scl.scale(cfg.alpha));
    }

    // L_domain (Eqs. 15 + 17)
    let mut domain_value = 0.0f32;
    if cfg.use_da {
        let n = labels.len();
        let mut domain_labels = vec![DomainSide::Source.label(); n];
        domain_labels.extend(std::iter::repeat_n(DomainSide::Target.label(), n));

        let invariant = Tensor::concat_rows(&[&f_src.invariant, &f_tgt.invariant]);
        let l_inv = model
            .domain_logits_invariant(&invariant, true, rng)
            .cross_entropy(&domain_labels);
        let specific = Tensor::concat_rows(&[&f_src.specific, &f_tgt.specific]);
        let l_spec = model
            .domain_logits_specific(&specific, true, rng)
            .cross_entropy(&domain_labels);
        let l_domain = l_inv.add(&l_spec);
        domain_value = l_domain.item();
        loss = loss.add(&l_domain.scale(cfg.beta));
    }

    // Cold-start alignment (§4.1): cold users' auxiliary target documents
    // join the contrastive and adversarial modules so the extractors learn
    // to align exactly the representations used at serving time. No rating
    // labels are involved — only the users' source-domain documents and
    // generated auxiliary documents.
    if !input.align_users.is_empty() {
        let picks = &input.align_users;
        let k = picks.len();
        let src_docs: Vec<&[usize]> = picks.iter().map(|u| views.source_doc(*u)).collect();
        let aux_docs: Vec<&[usize]> = picks.iter().map(|u| views.aux_doc(*u)).collect();
        let f_src = model.user_features(&src_docs, DomainSide::Source, true, rng);
        let f_tgt = model.user_features(&aux_docs, DomainSide::Target, true, rng);

        if cfg.use_scl {
            // Per-user positive pairs: each user's source and aux-target
            // projections attract (Fig. 3, top). The neutral all-padding
            // item makes the pair a pure user-representation projection.
            let empty_items: Vec<&[usize]> = picks.iter().map(|_| views.empty_doc()).collect();
            let items = model.item_features(&empty_items, true, rng);
            let x_src = model.project_pairs(&f_src.combined, &items, true, rng);
            let x_tgt = model.project_pairs(&f_tgt.combined, &items, true, rng);
            let labels: Vec<usize> = (0..k).collect();
            let mut batch = SupConBatch::new();
            batch.push(x_src, &labels);
            batch.push(x_tgt, &labels);
            let l_align = batch.loss(cfg.temperature);
            loss = loss.add(&l_align.scale(cfg.alpha));
        }
        if cfg.use_da {
            let mut domain_labels = vec![DomainSide::Source.label(); k];
            domain_labels.extend(std::iter::repeat_n(DomainSide::Target.label(), k));
            let invariant = Tensor::concat_rows(&[&f_src.invariant, &f_tgt.invariant]);
            let l_inv = model
                .domain_logits_invariant(&invariant, true, rng)
                .cross_entropy(&domain_labels);
            let specific = Tensor::concat_rows(&[&f_src.specific, &f_tgt.specific]);
            let l_spec = model
                .domain_logits_specific(&specific, true, rng)
                .cross_entropy(&domain_labels);
            loss = loss.add(&l_inv.add(&l_spec).scale(cfg.beta));
        }
    }

    loss.backward();
    EpochStats {
        total: loss.item(),
        rating: l_rating.item(),
        scl: scl_value,
        domain: domain_value,
    }
}

/// A fitted OmniMatch model bound to its corpus views.
pub struct TrainedOmniMatch {
    cfg: OmniMatchConfig,
    model: OmniMatchModel,
    views: CorpusViews,
    report: TrainReport,
}

impl TrainedOmniMatch {
    /// The fitted network.
    pub fn model(&self) -> &OmniMatchModel {
        &self.model
    }

    /// The corpus views (vocabulary, documents) used in training.
    pub fn views(&self) -> &CorpusViews {
        &self.views
    }

    /// Training statistics.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Predict expected star ratings for user–item pairs. Cold-start users
    /// are served through their auxiliary target documents; unknown items
    /// fall back to an all-padding document.
    pub fn predict(&self, pairs: &[(UserId, ItemId)]) -> Vec<f32> {
        assert!(!pairs.is_empty(), "predict: empty batch");
        let _guard = no_grad();
        let mut rng = seeded_rng(self.cfg.seed ^ 0xE7A1);
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(self.cfg.batch_size.max(2)) {
            let tgt_docs: Vec<&[usize]> = chunk
                .iter()
                .map(|(u, _)| self.views.target_doc(*u))
                .collect();
            let item_docs: Vec<&[usize]> = chunk
                .iter()
                .map(|(_, i)| self.views.item_doc(*i))
                .collect();
            let f_tgt = self
                .model
                .user_features(&tgt_docs, DomainSide::Target, false, &mut rng);
            let items = self.model.item_features(&item_docs, false, &mut rng);
            let logits = self
                .model
                .rating_logits(&f_tgt.combined, &items, false, &mut rng);
            out.extend(OmniMatchModel::expected_stars(&logits));
        }
        out
    }

    /// RMSE/MAE against gold interactions (Eqs. 22–23).
    pub fn evaluate(&self, gold: &[&Interaction]) -> Eval {
        assert!(!gold.is_empty(), "evaluate: empty gold set");
        let pairs: Vec<(UserId, ItemId)> = gold.iter().map(|it| (it.user, it.item)).collect();
        let preds = self.predict(&pairs);
        let scored: Vec<(f32, f32)> = preds
            .into_iter()
            .zip(gold.iter().map(|it| it.rating.value()))
            .collect();
        Eval::of(&scored)
    }

    /// Rank a candidate item set for one user by predicted rating and
    /// report top-K quality against a relevant set — the extension protocol
    /// (HR@K / NDCG@K) beyond the paper's RMSE/MAE.
    pub fn rank_items(&self, user: UserId, candidates: &[ItemId]) -> Vec<(ItemId, f32)> {
        self.rank_items_topk(user, candidates, candidates.len())
    }

    /// Partial top-`k` ranking of a candidate set — `om_metrics::topk`
    /// selection instead of a full sort, the same code path `om-serve`
    /// and [`om_metrics::RankedList`] use. NaN scores (diverged model)
    /// rank last instead of panicking; ties keep candidate order, exactly
    /// as the previous stable full sort did.
    pub fn rank_items_topk(
        &self,
        user: UserId,
        candidates: &[ItemId],
        k: usize,
    ) -> Vec<(ItemId, f32)> {
        assert!(!candidates.is_empty(), "rank_items: no candidates");
        let pairs: Vec<(UserId, ItemId)> = candidates.iter().map(|&i| (user, i)).collect();
        let scores = self.predict(&pairs);
        om_metrics::top_k_indices(&scores, k)
            .into_iter()
            .map(|i| (candidates[i], scores[i]))
            .collect()
    }

    /// Decompose into the owned parts a serving engine takes over
    /// (`om_serve::ServeEngine` holds the model and the corpus views for
    /// the lifetime of the process).
    pub fn into_parts(self) -> (OmniMatchModel, CorpusViews, TrainReport) {
        (self.model, self.views, self.report)
    }

    /// Export the fitted parameters as a minimal OMCK v2 checkpoint (one
    /// `params` section, CRC-protected) — the format `om_serve::load_model`
    /// consumes. The trainer's durable epoch checkpoints (`ckpt` module)
    /// carry the same `params` section plus optimizer/RNG state, so both
    /// kinds of file feed the serving loader.
    pub fn export_checkpoint(&self) -> bytes::Bytes {
        let mut v2 = CheckpointV2::new();
        v2.insert("params", encode_tensors(&self.model.params()));
        v2.encode()
    }

    /// Write [`TrainedOmniMatch::export_checkpoint`] to a file.
    pub fn write_checkpoint(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_checkpoint())
    }

    /// Diagnostic: supervised-contrastive alignment between a user's
    /// source and target projections for a given item (cosine in
    /// projection space). Used by tests to verify the SCL module moves
    /// representations the way Fig. 3 depicts.
    pub fn source_target_alignment(&self, user: UserId, item: ItemId) -> f32 {
        let _guard = no_grad();
        let mut rng = seeded_rng(0);
        let src = [self.views.source_doc(user)];
        let tgt = [self.views.target_doc(user)];
        let itm = [self.views.item_doc(item)];
        let f_src = self.model.user_features(&src, DomainSide::Source, false, &mut rng);
        let f_tgt = self.model.user_features(&tgt, DomainSide::Target, false, &mut rng);
        let items = self.model.item_features(&itm, false, &mut rng);
        let a = self
            .model
            .project_pairs(&f_src.combined, &items, false, &mut rng)
            .l2_normalize_rows();
        let b = self
            .model
            .project_pairs(&f_tgt.combined, &items, false, &mut rng)
            .l2_normalize_rows();
        a.mul(&b).sum_all().item()
    }
}

/// Predict the global rating mean — the trivial baseline used by tests to
/// confirm the model beats it.
pub fn mean_rating_baseline(scenario: &CrossDomainScenario) -> f32 {
    let interactions = scenario.target_train.interactions();
    if interactions.is_empty() {
        return (Rating::MIN + Rating::MAX) as f32 / 2.0;
    }
    // om-lint: reduction-ok(serial sum in interaction-slice order — one
    // thread, fixed iteration, deterministic by construction)
    interactions.iter().map(|it| it.rating.value()).sum::<f32>() / interactions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};
    use om_metrics::rmse;

    fn quick_scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn training_reduces_loss() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast().with_seed(3)).fit(&sc);
        let e = &trained.report().epochs;
        assert_eq!(e.len(), 3);
        assert!(
            e.last().unwrap().total < e.first().unwrap().total,
            "loss must decrease: {:?}",
            e
        );
    }

    #[test]
    fn predictions_are_in_star_range() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast()).fit(&sc);
        let pairs: Vec<(UserId, ItemId)> = sc
            .test_pairs()
            .iter()
            .map(|it| (it.user, it.item))
            .collect();
        for p in trained.predict(&pairs) {
            assert!((1.0..=5.0).contains(&p), "prediction {p} out of range");
        }
    }

    #[test]
    fn beats_global_mean_baseline() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast()).fit(&sc);
        let eval = trained.evaluate(&sc.test_pairs());
        let mean = mean_rating_baseline(&sc);
        let mean_pairs: Vec<(f32, f32)> = sc
            .test_pairs()
            .iter()
            .map(|it| (mean, it.rating.value()))
            .collect();
        let mean_rmse = rmse(&mean_pairs);
        // The fast() config is deliberately tiny (3 epochs, 12-d embeddings)
        // so this is a sanity bound, not a performance claim — the release
        // experiments (EXPERIMENTS.md) show the real margins.
        assert!(
            eval.rmse < mean_rmse * 1.25,
            "model rmse {} should not be far above mean-baseline {}",
            eval.rmse,
            mean_rmse
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = quick_scenario();
        let a = Trainer::new(OmniMatchConfig::fast().with_seed(11)).fit(&sc);
        let b = Trainer::new(OmniMatchConfig::fast().with_seed(11)).fit(&sc);
        let pairs: Vec<(UserId, ItemId)> = sc
            .test_pairs()
            .iter()
            .take(5)
            .map(|it| (it.user, it.item))
            .collect();
        assert_eq!(a.predict(&pairs), b.predict(&pairs));
    }

    #[test]
    fn ablations_all_train() {
        let sc = quick_scenario();
        for cfg in [
            OmniMatchConfig::fast().without_scl(),
            OmniMatchConfig::fast().without_da(),
            OmniMatchConfig::fast().without_aux_reviews(),
        ] {
            let trained = Trainer::new(cfg).fit(&sc);
            let eval = trained.evaluate(&sc.test_pairs());
            assert!(eval.rmse.is_finite() && eval.rmse < 3.0, "rmse {}", eval.rmse);
        }
    }

    #[test]
    fn scl_disabled_reports_zero_scl_loss() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast().without_scl()).fit(&sc);
        for e in &trained.report().epochs {
            assert_eq!(e.scl, 0.0);
        }
    }

    #[test]
    fn da_disabled_reports_zero_domain_loss() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast().without_da()).fit(&sc);
        for e in &trained.report().epochs {
            assert_eq!(e.domain, 0.0);
        }
    }

    #[test]
    fn report_tracks_time_and_samples() {
        let sc = quick_scenario();
        let trained = Trainer::new(OmniMatchConfig::fast()).fit(&sc);
        assert!(trained.report().train_seconds > 0.0);
        assert_eq!(trained.report().samples, sc.target_train.len());
    }
}
