//! Backpressure contract of the threaded front-end, pinned with a
//! gated stub scorer (no model in the loop):
//!
//! * a full queue is a **typed rejection** (`SubmitError::QueueFull`) —
//!   never a panic, never a blocked producer;
//! * shutdown drains: every accepted request gets a response before the
//!   worker exits;
//! * a slow consumer bounds queue memory — accepted-but-unserved requests
//!   never exceed the queue bound plus the one batch in flight;
//! * a handle outliving the front-end reports `SubmitError::Shutdown`;
//! * interleaved `submit` / `submit_interaction` streams never lose a
//!   request, never serve a mixed-generation batch, and order flips
//!   before the requests admitted after them (property-tested with a
//!   stub scorer tagging every flush by generation).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use om_data::types::{ItemId, UserId};
use om_serve::{
    BatchScorer, Frontend, FrontendOptions, Request, Response, ServeError, SubmitError,
    UpdateOutcome, UserEvent,
};
use proptest::prelude::*;

/// A scorer that blocks inside `serve_batch` until the test releases it:
/// `entered` fires once per flush as the worker goes busy; each flush
/// then waits on `gate` (released wholesale by dropping the sender).
struct GatedScorer {
    entered: Sender<usize>,
    gate: Mutex<Receiver<()>>,
}

impl BatchScorer for GatedScorer {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        // The test may have stopped listening for entry signals.
        let _ = self.entered.send(reqs.len());
        // Err means the test dropped the gate: everything is released.
        let _ = self.gate.lock().expect("gate").recv();
        Ok(reqs
            .iter()
            .map(|r| Response { id: r.id, user: r.user, top: Vec::new() })
            .collect())
    }
}

fn req(id: u64) -> Request {
    Request { id, user: UserId(id as u32), arrive_us: 0 }
}

/// Spawn a front-end around a gated scorer. Returns the front-end, the
/// response stream, the per-flush entry signal, and the gate's sender
/// (drop it to release every blocked flush).
fn gated_frontend(
    opts: FrontendOptions,
) -> (Frontend, Receiver<Response>, Receiver<usize>, Sender<()>) {
    let (entered_tx, entered_rx) = channel();
    let (gate_tx, gate_rx) = channel();
    let (resp_tx, resp_rx) = channel();
    // om-lint: allow(thread-spawn) — spawning the front-end consumer is
    // the behaviour under test.
    let fe = Frontend::spawn(
        move || GatedScorer { entered: entered_tx, gate: Mutex::new(gate_rx) },
        opts,
        resp_tx,
    )
    .expect("spawn front-end");
    (fe, resp_rx, entered_rx, gate_tx)
}

#[test]
fn full_queue_is_a_typed_rejection_not_a_panic_or_a_block() {
    let cap = 3usize;
    let (fe, resp_rx, entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: cap,
        batch: 1,
        wait_us: 0,
    });
    let handle = fe.handle();

    // First request: the worker takes it and blocks inside the scorer.
    handle.try_send(req(0)).expect("first submit");
    let first_flush = entered_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker entered the scorer");
    assert_eq!(first_flush, 1);

    // The worker is stuck, so the next `cap` submits fill the queue...
    for id in 1..=cap as u64 {
        handle.try_send(req(id)).expect("queue has room");
    }
    // ...and the one after that is rejected, typed, immediately.
    let err = handle.try_send(req(99)).expect_err("queue is full");
    assert_eq!(err, SubmitError::QueueFull { capacity: cap });
    assert_eq!(handle.rejected(), 1);
    // Rejection is stateless: still rejecting, still counting.
    assert!(handle.try_send(req(100)).is_err());
    assert_eq!(handle.rejected(), 2);

    // The live snapshot sees the same world, mid-run, without shutdown.
    let snap = handle.stats_snapshot();
    assert_eq!(snap.admitted, 1 + cap as u64);
    assert_eq!(snap.rejected_full, 2);
    assert_eq!(snap.in_flight, 1 + cap as u64, "accepted but not yet replied");
    assert!(snap.worker_alive, "worker is alive (blocked in the scorer)");
    assert!(snap.queue_hwm >= cap as u64, "queue reached its bound");

    // Release the scorer; every *accepted* request is served.
    drop(gate_tx);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 1 + cap as u64);
    assert_eq!(stats.rejected, 2);
    let mut got: Vec<u64> = resp_rx.iter().map(|r| r.id).collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);

    // The handle outlives the front-end; its post-shutdown snapshot must
    // agree with the shutdown stats *exactly* — both read the same
    // atomics, so disagreement is impossible by construction.
    let after = handle.stats_snapshot();
    assert_eq!(after.stats(), stats);
    assert_eq!(after.in_flight, 0, "everything accepted was replied to");
    assert_eq!(after.queue_depth, 0);
    assert!(!after.worker_alive, "worker exited at shutdown");
}

#[test]
fn shutdown_drains_every_accepted_request() {
    // Huge batch and a huge deadline: nothing would flush on its own —
    // only the shutdown drain can produce these responses.
    let (fe, resp_rx, _entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: 64,
        batch: 1_000,
        wait_us: u64::MAX,
    });
    drop(gate_tx); // scorer never blocks in this test
    let handle = fe.handle();
    for id in 0..10 {
        handle.try_send(req(id)).expect("submit");
    }
    let snapshot = fe.stats_snapshot();
    assert_eq!(snapshot.admitted, 10);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 10, "shutdown must drain accepted requests");
    assert_eq!(stats.flushes, 1, "a single drain flush");
    let mut got: Vec<u64> = resp_rx.iter().map(|r| r.id).collect();
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn slow_consumer_bounds_accepted_backlog_to_queue_plus_in_flight() {
    let cap = 2usize;
    let (fe, resp_rx, entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: cap,
        batch: 1,
        wait_us: 0,
    });
    let handle = fe.handle();

    // Hammer the front-end with far more work than the stuck consumer
    // can hold. Memory stays bounded: accepted ≤ queue_cap + the single
    // batch the worker may have already pulled out of the queue.
    let total = 500u64;
    let mut accepted = 0u64;
    for id in 0..total {
        if handle.try_send(req(id)).is_ok() {
            accepted += 1;
        }
    }
    assert!(
        accepted <= (cap + 1) as u64,
        "accepted {accepted} requests against a queue bound of {cap}"
    );
    assert_eq!(handle.rejected(), total - accepted);

    // Every accepted request still completes once the consumer recovers.
    drop(gate_tx);
    drop(entered_rx);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, accepted);
    assert_eq!(resp_rx.iter().count() as u64, accepted);
}

#[test]
fn handles_outliving_the_frontend_get_a_shutdown_error() {
    let (fe, resp_rx, _entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: 4,
        batch: 1,
        wait_us: 0,
    });
    drop(gate_tx);
    let handle = fe.handle();
    handle.try_send(req(1)).expect("submit while alive");
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 1);
    assert_eq!(
        handle.try_send(req(2)).expect_err("front-end is gone"),
        SubmitError::Shutdown
    );
    assert_eq!(resp_rx.iter().count(), 1);
}

/// A scorer whose `apply_event` *is* a generation flip: each event bumps
/// a shared counter, the way the engine installs a new user-arena
/// generation. Each flush records the generation it observed entering
/// and leaving `serve_batch` plus the request ids it served — the
/// property test's evidence for single-generation batches and
/// event-before-request ordering.
/// Per flush: (generation at entry, generation at exit, request ids).
type FlushLog = Arc<Mutex<Vec<(u64, u64, Vec<u64>)>>>;

struct FlipScorer {
    generation: Arc<AtomicU64>,
    flushes: FlushLog,
}

impl BatchScorer for FlipScorer {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        // One generation read per batch, like the engine's single pin.
        let entry = self.generation.load(Ordering::SeqCst);
        let resps = reqs
            .iter()
            .map(|r| Response { id: r.id, user: r.user, top: Vec::new() })
            .collect();
        let exit = self.generation.load(Ordering::SeqCst);
        self.flushes
            .lock()
            .expect("flush log")
            .push((entry, exit, reqs.iter().map(|r| r.id).collect()));
        Ok(resps)
    }

    fn apply_event(&self, ev: &UserEvent) -> Result<Option<UpdateOutcome>, ServeError> {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Some(UpdateOutcome {
            user: ev.user,
            seen: generation as usize,
            graduated: generation == 1,
            generation: Some(generation),
        }))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of request submits and interaction submits:
    /// every accepted request is served exactly once, every flush sees
    /// exactly one generation, generations never run backwards across
    /// flushes, and a request admitted after `k` events is never served
    /// from a generation older than `k` (events ride the same FIFO).
    #[test]
    fn interleaved_requests_and_flips_lose_nothing_and_never_mix_generations(
        ops in proptest::collection::vec(0u8..2, 1..48),
        batch in 1usize..4,
    ) {
        let generation = Arc::new(AtomicU64::new(0));
        let flushes = Arc::new(Mutex::new(Vec::new()));
        let (resp_tx, resp_rx) = channel();
        let scorer_generation = Arc::clone(&generation);
        let scorer_flushes = Arc::clone(&flushes);
        // om-lint: allow(thread-spawn) — spawning the front-end consumer
        // is the behaviour under test.
        let fe = Frontend::spawn(
            move || FlipScorer { generation: scorer_generation, flushes: scorer_flushes },
            FrontendOptions { queue_cap: 4, batch, wait_us: 0 },
            resp_tx,
        )
        .expect("spawn front-end");
        let handle = fe.handle();

        // Drive the script; retry on QueueFull only (the scorer never
        // blocks, so the worker always drains).
        let mut events_admitted = 0u64;
        let mut next_id = 0u64;
        let mut floor: BTreeMap<u64, u64> = BTreeMap::new();
        for &op in &ops {
            let is_event = op == 1;
            if is_event {
                let ev = UserEvent {
                    user: UserId(7),
                    item: ItemId(events_admitted as u32),
                    stars: 5.0,
                    text: String::from("loved it"),
                };
                loop {
                    match handle.submit_interaction(ev.clone()) {
                        Ok(()) => break,
                        Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("interaction rejected: {e}"),
                    }
                }
                events_admitted += 1;
            } else {
                loop {
                    match handle.try_send(req(next_id)) {
                        Ok(()) => break,
                        Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("request rejected: {e}"),
                    }
                }
                floor.insert(next_id, events_admitted);
                next_id += 1;
            }
        }

        let stats = fe.shutdown().expect("shutdown");
        prop_assert_eq!(stats.served, next_id, "front-end lost a request");
        let mut got: Vec<u64> = resp_rx.iter().map(|r| r.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, (0..next_id).collect::<Vec<_>>());

        let snap = handle.stats_snapshot();
        prop_assert_eq!(snap.interactions, events_admitted, "front-end lost an event");
        prop_assert_eq!(snap.swaps, events_admitted);
        prop_assert_eq!(snap.graduations, u64::from(events_admitted > 0));
        prop_assert_eq!(snap.update_errors, 0);
        prop_assert_eq!(generation.load(Ordering::SeqCst), events_admitted);

        let log = flushes.lock().expect("flush log");
        let mut last_generation = 0u64;
        let mut served_ids = Vec::new();
        for (entry, exit, ids) in log.iter() {
            prop_assert_eq!(entry, exit, "a generation flip landed mid-batch");
            prop_assert!(*entry >= last_generation, "generations ran backwards across flushes");
            last_generation = *entry;
            for id in ids {
                prop_assert!(
                    *entry >= floor[id],
                    "request {} admitted after {} event(s) served from generation {}",
                    id, floor[id], entry
                );
                prop_assert!(*entry <= events_admitted);
                served_ids.push(*id);
            }
        }
        served_ids.sort_unstable();
        prop_assert_eq!(served_ids, (0..next_id).collect::<Vec<_>>());
    }
}
