//! The Auxiliary Reviews Generation Module (§4.1, Algorithm 1).
//!
//! For every cold-start user `u ∈ U^cs` and every purchase record of `u`
//! in the source domain, find the *like-minded* users — overlapping users
//! who gave the same item the same rating — pick one at random, pick one of
//! their target-domain reviews at random, and append it to `u`'s auxiliary
//! document. One review per source record keeps the aggregate broad, which
//! §4.1 argues mitigates single-review bias.
//!
//! With the two preprocessed dictionaries held by [`om_data::Domain`], every
//! lookup is O(1), so the whole pass is `O(N·M + L·M·Q)` as analysed in
//! §4.1 — the Criterion bench `algorithm1` in `om-bench` demonstrates this
//! empirically.

use std::collections::BTreeSet;

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, Rating, TextField, UserId};
use om_data::Domain;
use om_tensor::Rng;
use rand::seq::IndexedRandom;
use rand::RngExt as _;

/// One iteration of Algorithm 1's inner loop, kept for the §5.10-style
/// case-study trace.
#[derive(Debug, Clone)]
pub struct AuxiliaryStep {
    /// The item the cold-start user reviewed in the source domain.
    pub source_item: ItemId,
    /// The shared rating.
    pub rating: Rating,
    /// The cold-start user's own source review text.
    pub source_review: String,
    /// How many like-minded training users were available.
    pub like_minded_pool: usize,
    /// The randomly selected like-minded user.
    pub chosen_user: UserId,
    /// The auxiliary review taken from that user's target history.
    pub aux_review: String,
}

/// The auxiliary document generated for one cold-start user: the reviews
/// (concatenated downstream with `<sp>`, §5.10) plus the per-record trace.
#[derive(Debug, Clone)]
pub struct AuxiliaryDocument {
    /// The cold-start user.
    pub user: UserId,
    /// Auxiliary reviews, one per matched source record.
    pub reviews: Vec<String>,
    /// The full generation trace.
    pub steps: Vec<AuxiliaryStep>,
}

impl AuxiliaryDocument {
    /// Render the §5.10 concatenation: reviews joined by ` <sp> `.
    pub fn concatenated(&self) -> String {
        self.reviews.join(" <sp> ")
    }

    /// Whether Algorithm 1 found at least one like-minded review.
    pub fn is_empty(&self) -> bool {
        self.reviews.is_empty()
    }
}

/// Generator bound to one cross-domain scenario.
pub struct AuxiliaryReviewGenerator<'a> {
    source: &'a Domain,
    target_train: &'a Domain,
    train_users: BTreeSet<UserId>,
}

impl<'a> AuxiliaryReviewGenerator<'a> {
    /// Bind to a scenario: like-minded candidates are restricted to the
    /// scenario's *training* users (Algorithm 1 line 10 — the candidate
    /// must be in `U°`, i.e. have visible target-domain history).
    pub fn new(scenario: &'a CrossDomainScenario) -> Self {
        AuxiliaryReviewGenerator {
            source: &scenario.source,
            target_train: &scenario.target_train,
            train_users: scenario.train_users.iter().copied().collect(),
        }
    }

    /// Construct directly from domains (for tests / custom pipelines).
    pub fn from_parts(
        source: &'a Domain,
        target_train: &'a Domain,
        train_users: impl IntoIterator<Item = UserId>,
    ) -> Self {
        AuxiliaryReviewGenerator {
            source,
            target_train,
            train_users: train_users.into_iter().collect(),
        }
    }

    /// Algorithm 1 for a single cold-start user.
    pub fn generate(&self, user: UserId, field: TextField, rng: &mut Rng) -> AuxiliaryDocument {
        let mut reviews = Vec::new();
        let mut steps = Vec::new();
        // line 4: u's purchase records in the source domain
        let records: Vec<&Interaction> = self.source.user_records(user).collect();
        for record in records {
            // line 7: like-minded users — same item, same rating
            let like_minded_s = self.source.like_minded(record.item, record.rating);
            // lines 8–11: keep those in the (visible) overlapping set,
            // never the cold-start user themself
            let like_minded_t: Vec<UserId> = like_minded_s
                .iter()
                .copied()
                .filter(|lm| *lm != user && self.train_users.contains(lm))
                .collect();
            // line 12: random like-minded user (skip when none exists —
            // `random(∅)` is undefined in the paper's pseudocode)
            let Some(&aux_user) = like_minded_t.choose(rng) else {
                continue;
            };
            // line 13: that user's target-domain purchase records
            let aux_records: Vec<&Interaction> =
                self.target_train.user_records(aux_user).collect();
            // line 14–15: random record → its review
            let Some(aux_record) = aux_records.choose(rng) else {
                continue;
            };
            let aux_review = aux_record.text(field).to_owned();
            steps.push(AuxiliaryStep {
                source_item: record.item,
                rating: record.rating,
                source_review: record.text(field).to_owned(),
                like_minded_pool: like_minded_t.len(),
                chosen_user: aux_user,
                aux_review: aux_review.clone(),
            });
            reviews.push(aux_review);
        }
        AuxiliaryDocument {
            user,
            reviews,
            steps,
        }
    }

    /// Algorithm 1 over a user set (`U_AUX_DOC` of the pseudocode).
    ///
    /// Runs in two phases so the result is a pure function of `rng`'s state
    /// at any thread count: one derived seed per user is drawn sequentially,
    /// then the per-user generations — now independent — fan out over the
    /// tensor runtime's worker pool.
    pub fn generate_all(
        &self,
        users: &[UserId],
        field: TextField,
        rng: &mut Rng,
    ) -> Vec<AuxiliaryDocument> {
        let seeds: Vec<u64> = users.iter().map(|_| rng.random()).collect();
        let mut docs: Vec<AuxiliaryDocument> = users
            .iter()
            .map(|&u| AuxiliaryDocument {
                user: u,
                reviews: Vec::new(),
                steps: Vec::new(),
            })
            .collect();
        om_tensor::runtime::parallel_rows_mut(&mut docs, 1, 2, |i0, block| {
            for (d, slot) in block.iter_mut().enumerate() {
                let mut local = om_tensor::seeded_rng(seeds[i0 + d]);
                *slot = self.generate(users[i0 + d], field, &mut local);
            }
        });
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    fn r(stars: u8) -> Rating {
        Rating::new(stars).unwrap()
    }

    /// Source: cold user 1 rated items 10 (5★) and 11 (4★).
    /// User 2 is train and like-minded on both; user 3 only on item 10 but
    /// with a different rating; user 4 is like-minded but not a train user.
    fn fixture() -> (Domain, Domain) {
        let source = Domain::new(
            "Books",
            vec![
                Interaction::new(UserId(1), ItemId(10), r(5), "vampire romance"),
                Interaction::new(UserId(2), ItemId(10), r(5), "fang tastic"),
                Interaction::new(UserId(3), ItemId(10), r(2), "boring"),
                Interaction::new(UserId(4), ItemId(10), r(5), "undead love"),
                Interaction::new(UserId(1), ItemId(11), r(4), "adventure"),
                Interaction::new(UserId(2), ItemId(11), r(4), "great quest"),
            ],
        );
        let target_train = Domain::new(
            "Movies",
            vec![
                Interaction::new(UserId(2), ItemId(50), r(5), "sexy vampire movie"),
                Interaction::new(UserId(2), ItemId(51), r(4), "boogeyman scares"),
                Interaction::new(UserId(3), ItemId(50), r(1), "fell asleep"),
            ],
        );
        (source, target_train)
    }

    #[test]
    fn generates_one_review_per_matched_record() {
        let (s, t) = fixture();
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(2), UserId(3)]);
        let doc = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(1));
        // both source records match like-minded train user 2
        assert_eq!(doc.reviews.len(), 2);
        assert_eq!(doc.steps.len(), 2);
        for step in &doc.steps {
            assert_eq!(step.chosen_user, UserId(2));
            assert!(
                step.aux_review.contains("vampire") || step.aux_review.contains("boogeyman")
            );
        }
    }

    #[test]
    fn rating_must_match_exactly() {
        let (s, t) = fixture();
        // user 3 rated item 10 with 2★, not 5★ — never like-minded for it
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(3)]);
        let doc = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(2));
        assert!(doc.is_empty(), "2★ rater must not match a 5★ record");
    }

    #[test]
    fn non_train_users_are_excluded() {
        let (s, t) = fixture();
        // user 4 is like-minded on item 10 but not in the training set
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(4)]);
        let doc = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(3));
        assert!(doc.is_empty());
    }

    #[test]
    fn self_is_never_like_minded() {
        let (s, t) = fixture();
        // even if the cold user were in the train set, they must not donate
        // reviews to themselves
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(1)]);
        let doc = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(4));
        assert!(doc.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t) = fixture();
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(2), UserId(3)]);
        let a = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(7));
        let b = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(7));
        assert_eq!(a.reviews, b.reviews);
    }

    #[test]
    fn concatenated_uses_sp_separator() {
        let (s, t) = fixture();
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(2)]);
        let doc = g.generate(UserId(1), TextField::Summary, &mut seeded_rng(5));
        assert_eq!(doc.reviews.len(), 2);
        assert!(doc.concatenated().contains(" <sp> "));
    }

    #[test]
    fn generate_all_covers_every_user() {
        let (s, t) = fixture();
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(2)]);
        let docs = g.generate_all(&[UserId(1), UserId(3)], TextField::Summary, &mut seeded_rng(6));
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].user, UserId(1));
        assert_eq!(docs[1].user, UserId(3));
    }

    #[test]
    fn user_without_source_history_yields_empty_doc() {
        let (s, t) = fixture();
        let g = AuxiliaryReviewGenerator::from_parts(&s, &t, [UserId(2)]);
        let doc = g.generate(UserId(999), TextField::Summary, &mut seeded_rng(8));
        assert!(doc.is_empty());
    }
}
