//! Million-scale serving load harness: synthesizes a large warm-user /
//! item catalogue from an `om_data` arena preset, persists it through the
//! blob → mmap path, scores it with the sharded engine, and writes
//! `BENCH_serve_load.json`.
//!
//! Two load shapes run against the same catalogue:
//!
//! * **open loop** — the shared virtual-clock replay of `om_bench::replay`
//!   (arrivals never wait for responses): Zipfian user popularity over a
//!   configurable arrival process, flush compute and queue-wait latency
//!   measured exactly like `serve_bench`, so the two reports gate with the
//!   same machinery;
//! * **closed loop** — a bounded in-flight window of real requests through
//!   the threaded [`om_serve::Frontend`] (bounded queue, admission
//!   control), wall-clock end-to-end latency per request.
//!
//! The model is a real trained-then-checkpointed rating head (fast
//! config); the catalogue rows are counter-mode synthetic features —
//! semantically garbage, computationally the exact production shape.
//!
//! Usage:
//!   cargo run --release -p om-bench --bin load_bench -- \
//!     [--preset small|million] [--requests N] [--replays N] [--zipf S] \
//!     [--arrival poisson|uniform] [--mean-gap-us U] [--mode open|closed|both] \
//!     [--shard N] [--topk K] [--batch B] [--wait-us U] \
//!     [--queue-cap N] [--inflight W] [--out DIR]

use std::collections::BTreeMap;
use std::time::Instant;

use om_bench::bench_scenario;
use om_bench::replay::{build_trace, replay_trace, summarize, zipf_pick, Arrival};
use om_data::types::UserId;
use om_data::ArenaPreset;
use om_obs::json::Json;
use om_serve::{
    load_model, Frontend, FrontendOptions, ItemArena, Request, ServeEngine, ServeOptions,
    ShardedEngine, UserArena, Verify,
};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

struct Flags {
    preset: ArenaPreset,
    requests: usize,
    replays: usize,
    zipf: f64,
    arrival: Arrival,
    mode: String,
    queue_cap: usize,
    inflight: usize,
    out: std::path::PathBuf,
    opts: ServeOptions,
}

fn parse_flags() -> Result<Flags, String> {
    let mut f = Flags {
        preset: ArenaPreset::small(),
        requests: 400,
        replays: 2,
        zipf: 1.1,
        arrival: Arrival::Poisson { mean_gap_us: 650 },
        mode: "both".to_string(),
        queue_cap: 256,
        inflight: 32,
        out: std::path::PathBuf::from("."),
        opts: ServeOptions::from_env().map_err(|e| e.to_string())?,
    };
    let mut mean_gap_us = 650u64;
    let mut poisson = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let num = |flag: &str, v: String| {
            v.parse::<usize>().map_err(|e| format!("{flag}: {e}"))
        };
        match a.as_str() {
            "--preset" => {
                let name = val("--preset")?;
                f.preset = ArenaPreset::by_name(&name)
                    .ok_or_else(|| format!("unknown preset '{name}' (small|million)"))?;
            }
            "--requests" => f.requests = num("--requests", val("--requests")?)?,
            "--replays" => f.replays = num("--replays", val("--replays")?)?,
            "--zipf" => {
                f.zipf = val("--zipf")?.parse().map_err(|e| format!("--zipf: {e}"))?
            }
            "--arrival" => {
                poisson = match val("--arrival")?.as_str() {
                    "poisson" => true,
                    "uniform" => false,
                    other => return Err(format!("unknown arrival '{other}'")),
                }
            }
            "--mean-gap-us" => {
                mean_gap_us = num("--mean-gap-us", val("--mean-gap-us")?)? as u64
            }
            "--mode" => {
                f.mode = val("--mode")?;
                if !matches!(f.mode.as_str(), "open" | "closed" | "both") {
                    return Err(format!("unknown mode '{}'", f.mode));
                }
            }
            "--shard" => f.opts.shard_items = num("--shard", val("--shard")?)?.max(1),
            "--topk" => f.opts.topk = num("--topk", val("--topk")?)?.max(1),
            "--batch" => f.opts.batch = num("--batch", val("--batch")?)?.max(1),
            "--wait-us" => f.opts.wait_us = num("--wait-us", val("--wait-us")?)? as u64,
            "--queue-cap" => f.queue_cap = num("--queue-cap", val("--queue-cap")?)?.max(1),
            "--inflight" => f.inflight = num("--inflight", val("--inflight")?)?.max(1),
            "--out" => f.out = std::path::PathBuf::from(val("--out")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    f.arrival = if poisson {
        Arrival::Poisson { mean_gap_us }
    } else {
        Arrival::Jittered { mean_gap_us }
    };
    Ok(f)
}

fn main() {
    let f = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("load_bench: {e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&f.out).expect("create benchmark output dir");

    // ---- a real trained rating head, checkpointed ------------------------
    let cfg = OmniMatchConfig::fast().with_seed(5);
    let scenario = bench_scenario();
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let ckpt: Vec<u8> = trained.export_checkpoint().to_vec();
    let (model, views, _) = trained.into_parts();
    let vocab_size = views.vocab.len();
    let user_dim = cfg.invariant_dim + cfg.specific_dim;
    let item_dim = cfg.item_dim;

    // ---- synthesize the catalogue, persist it, map it back ---------------
    let preset = f.preset;
    println!(
        "load_bench: preset '{}' — {} users × {} items",
        preset.name, preset.users, preset.items
    );
    let t0 = Instant::now();
    let items = ItemArena::from_raw(preset.item_ids(), preset.item_rows(item_dim), item_dim);
    let users = UserArena::from_raw(preset.user_ids(), preset.user_rows(user_dim), user_dim);
    let synth_ms = t0.elapsed().as_secs_f64() * 1e3;

    let blob_dir = f.out.join("arenas");
    std::fs::create_dir_all(&blob_dir).expect("create arena blob dir");
    let item_path = blob_dir.join(format!("{}-items.omab", preset.name));
    let user_path = blob_dir.join(format!("{}-users.omab", preset.name));
    let t0 = Instant::now();
    items.write_blob(&item_path).expect("write item blob");
    users.write_blob(&user_path).expect("write user blob");
    let blob_write_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop((items, users));

    // Server cold start: map the blobs back under Quick verification —
    // O(pages touched), the regime the mmap layer exists for.
    let t0 = Instant::now();
    let items = ItemArena::load_blob(&item_path, Verify::Quick).expect("map item blob");
    let users = UserArena::load_blob(&user_path, Verify::Quick).expect("map user blob");
    let cold_start_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "load_bench: arenas synth {synth_ms:.0} ms, write {blob_write_ms:.0} ms, \
         map {cold_start_ms:.2} ms"
    );

    let engine = ShardedEngine::new(ServeEngine::with_arenas(
        model,
        views,
        items,
        users,
        f.opts.clone(),
    ));
    let shards = engine.shard_count();

    // ---- Zipfian trace ---------------------------------------------------
    let n_users = preset.users;
    let zipf = f.zipf;
    let trace = build_trace(f.requests, f.arrival, |h| {
        UserId(zipf_pick(n_users, zipf, h) as u32)
    });

    let mut o = BTreeMap::new();
    let mut load = BTreeMap::new();
    let mut benches = Vec::new();

    // ---- open loop -------------------------------------------------------
    if f.mode == "open" || f.mode == "both" {
        let outcome = replay_trace(
            &engine,
            &trace,
            f.opts.batch,
            f.opts.wait_us,
            f.replays,
            "load.request_latency_ns",
        );
        let qps = outcome.served as f64 / outcome.compute_s;
        let lat = om_obs::metrics::histogram("load.request_latency_ns");
        let q = |p: f64| lat.quantile(p).unwrap_or(0) as f64 / 1e6;
        println!(
            "load_bench: open loop — {} served, {qps:.0} qps, p50 {:.3} ms, p99 {:.3} ms",
            outcome.served,
            q(0.50),
            q(0.99)
        );
        load.insert("qps".to_string(), Json::Num(qps));
        load.insert("p50_ms".to_string(), Json::Num(q(0.50)));
        load.insert("p95_ms".to_string(), Json::Num(q(0.95)));
        load.insert("p99_ms".to_string(), Json::Num(q(0.99)));
        load.insert("requests".to_string(), Json::Num(outcome.served as f64));
        load.insert("flushes".to_string(), Json::Num(outcome.flush_ms.len() as f64));
        benches.push(summarize("load_flush_compute", outcome.flush_ms));
        benches.push(summarize("load_request_latency", outcome.latency_ms));
    }

    // ---- closed loop: the threaded front-end under a real window ---------
    if f.mode == "closed" || f.mode == "both" {
        let fopts = FrontendOptions {
            queue_cap: f.queue_cap,
            batch: f.opts.batch,
            wait_us: f.opts.wait_us,
        };
        // Engines hold Rc tensors (not Send): the worker rebuilds the whole
        // stack from Send parts — checkpoint bytes, blob paths, the
        // deterministic scenario recipe — exactly as a server process would.
        let opts = f.opts.clone();
        let (cfg2, item_path2, user_path2) = (cfg.clone(), item_path.clone(), user_path.clone());
        let (tx, rx) = std::sync::mpsc::channel();
        // om-lint: allow(thread-spawn) — the closed loop measures the real
        // front-end consumer thread; that is the subject under test.
        let fe = Frontend::spawn(
            move || {
                let model =
                    load_model(&cfg2, vocab_size, &ckpt).expect("decode checkpoint");
                let scenario = bench_scenario();
                let views = CorpusViews::build(&scenario, &cfg2, &mut seeded_rng(cfg2.seed));
                let items =
                    ItemArena::load_blob(&item_path2, Verify::Quick).expect("map item blob");
                let users =
                    UserArena::load_blob(&user_path2, Verify::Quick).expect("map user blob");
                ShardedEngine::new(ServeEngine::with_arenas(model, views, items, users, opts))
            },
            fopts,
            tx,
        )
        .expect("spawn front-end worker");
        let handle = fe.handle();
        let n = trace.len();
        // Warmup: the worker is still building its engine when the first
        // submit lands; don't let that cold construction pollute the
        // measured latencies.
        handle
            .try_send(Request { id: u64::MAX, user: trace[0].user, arrive_us: 0 })
            .expect("warmup submit");
        let warm = rx.recv().expect("warmup response");
        assert_eq!(warm.id, u64::MAX);
        let mut sent_at: Vec<Option<Instant>> = vec![None; n];
        let mut closed_lat_ms: Vec<f64> = Vec::with_capacity(n);
        let (mut sent, mut done) = (0usize, 0usize);
        let t0 = Instant::now();
        while done < n {
            while sent < n && sent - done < f.inflight {
                let req = Request { id: sent as u64, user: trace[sent].user, arrive_us: 0 };
                match handle.try_send(req) {
                    Ok(()) => {
                        sent_at[sent] = Some(Instant::now());
                        sent += 1;
                    }
                    Err(om_serve::SubmitError::QueueFull { .. }) => break,
                    Err(e) => panic!("front-end refused a request: {e}"),
                }
            }
            let resp = rx.recv().expect("front-end dropped a response");
            let t_sent = sent_at[resp.id as usize].expect("response for unsent request");
            closed_lat_ms.push(t_sent.elapsed().as_secs_f64() * 1e3);
            done += 1;
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let stats = fe.shutdown().expect("front-end worker panicked");
        // +1 for the warmup request.
        assert_eq!(stats.served, n as u64 + 1, "closed loop dropped requests");
        closed_lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let pct = |q: f64| closed_lat_ms[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let closed_qps = n as f64 / wall_s;
        println!(
            "load_bench: closed loop — {} served in {wall_s:.2} s ({closed_qps:.0} qps), \
             p50 {:.3} ms, p99 {:.3} ms, {} rejected",
            stats.served,
            pct(0.50),
            pct(0.99),
            stats.rejected
        );
        let mut closed = BTreeMap::new();
        closed.insert("qps".to_string(), Json::Num(closed_qps));
        closed.insert("p50_ms".to_string(), Json::Num(pct(0.50)));
        closed.insert("p99_ms".to_string(), Json::Num(pct(0.99)));
        closed.insert("inflight".to_string(), Json::Num(f.inflight as f64));
        closed.insert("queue_cap".to_string(), Json::Num(f.queue_cap as f64));
        closed.insert("rejected".to_string(), Json::Num(stats.rejected as f64));
        closed.insert("flushes".to_string(), Json::Num(stats.flushes as f64));
        load.insert("closed".to_string(), Json::Obj(closed));
    }

    // ---- per-stage latency attribution -----------------------------------
    // The serving layers record per-request stage timings into the live
    // plane as they run (the same series `/metrics` scrapes): score/merge
    // from every engine flush, queue/batch-wait/e2e from the front-end.
    // Report them as an informational block — outside `benches`, so the
    // regression gate keys on end-to-end medians only.
    let mut stages = BTreeMap::new();
    for (key, series) in [
        ("queue_wait", "serve.queue_wait"),
        ("batch_wait", "serve.batch_wait"),
        ("score", "serve.score"),
        ("merge", "serve.merge"),
        ("e2e", "serve.e2e"),
    ] {
        let snap = om_obs::live::histogram(series).snapshot();
        if snap.count == 0 {
            continue;
        }
        let q = |p: f64| snap.quantile(p).unwrap_or(0) as f64 / 1e6;
        let mut s = BTreeMap::new();
        s.insert("count".to_string(), Json::Num(snap.count as f64));
        s.insert("p50_ms".to_string(), Json::Num(q(0.50)));
        s.insert("p95_ms".to_string(), Json::Num(q(0.95)));
        s.insert("p99_ms".to_string(), Json::Num(q(0.99)));
        stages.insert(key.to_string(), Json::Obj(s));
    }
    if !stages.is_empty() {
        load.insert("stages".to_string(), Json::Obj(stages));
    }

    // ---- report ----------------------------------------------------------
    load.insert("preset".to_string(), Json::Str(preset.name.to_string()));
    load.insert("users".to_string(), Json::Num(preset.users as f64));
    load.insert("catalogue".to_string(), Json::Num(preset.items as f64));
    load.insert("shard_items".to_string(), Json::Num(f.opts.shard_items as f64));
    load.insert("shards".to_string(), Json::Num(shards as f64));
    load.insert("topk".to_string(), Json::Num(f.opts.topk as f64));
    load.insert("batch".to_string(), Json::Num(f.opts.batch as f64));
    load.insert("wait_us".to_string(), Json::Num(f.opts.wait_us as f64));
    load.insert("zipf".to_string(), Json::Num(f.zipf));
    load.insert(
        "arrival".to_string(),
        Json::Str(
            match f.arrival {
                Arrival::Poisson { .. } => "poisson",
                Arrival::Jittered { .. } => "uniform",
            }
            .to_string(),
        ),
    );
    load.insert("synth_ms".to_string(), Json::Num(synth_ms));
    load.insert("blob_write_ms".to_string(), Json::Num(blob_write_ms));
    load.insert("cold_start_ms".to_string(), Json::Num(cold_start_ms));

    o.insert("schema".to_string(), Json::Num(1.0));
    o.insert("group".to_string(), Json::Str("serve_load".to_string()));
    o.insert("unit".to_string(), Json::Str("ms".to_string()));
    o.insert("benches".to_string(), Json::Arr(benches));
    o.insert("load".to_string(), Json::Obj(load));

    let path = f.out.join("BENCH_serve_load.json");
    std::fs::write(&path, format!("{}\n", Json::Obj(o))).expect("write benchmark report");
    println!("wrote {}", path.display());
}
