//! Loaders for real review corpora, so the pipeline runs unchanged on the
//! genuine Amazon Review / Douban datasets when the user supplies them.
//!
//! Two formats are supported:
//!
//! * **JSON lines** — the Amazon Review dump format: one flat JSON object
//!   per line with `reviewerID`, `asin`, `overall`, `summary` and
//!   (optionally) `reviewText` fields. A minimal, well-tested flat-object
//!   field extractor is used because `serde_json` is not on the dependency
//!   allowlist (see DESIGN.md).
//! * **TSV** — `user \t item \t rating \t summary [\t full_text]`.

use std::collections::HashMap;

use crate::domain::Domain;
use crate::types::{Interaction, ItemId, Rating, UserId};

/// Errors raised while parsing a corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A line could not be parsed; carries the 1-based line number.
    BadLine(usize, String),
    /// A rating was outside 1–5.
    BadRating(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadLine(n, why) => write!(f, "line {n}: {why}"),
            LoadError::BadRating(n, raw) => write!(f, "line {n}: bad rating {raw:?}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Interns external string ids (e.g. `reviewerID` / `asin`) into dense
/// numeric ids, shared across domains so user overlap is preserved.
#[derive(Debug, Default, Clone)]
pub struct IdInterner {
    map: HashMap<String, u32>,
}

impl IdInterner {
    /// Fresh empty interner.
    pub fn new() -> IdInterner {
        IdInterner::default()
    }

    /// Id for `key`, allocating the next dense id when unseen.
    pub fn intern(&mut self, key: &str) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(key.to_owned()).or_insert(next)
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys have been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Extract the string value of `"key": "value"` from a flat JSON object.
/// Handles escaped quotes/backslashes inside the value; returns `None` if
/// the key is absent.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = &line[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let mut chars = rest.chars();
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    let mut escaped = false;
    for ch in chars {
        if escaped {
            match ch {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                other => out.push(other),
            }
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == '"' {
            return Some(out);
        } else {
            out.push(ch);
        }
    }
    None // unterminated string
}

/// Extract a numeric field like `"overall": 5.0` from a flat JSON object.
fn json_num_field(line: &str, key: &str) -> Option<f32> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = &line[at + needle.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse an Amazon-style JSON-lines corpus into a [`Domain`]. `users` is
/// shared across domains so overlapping `reviewerID`s map to the same
/// [`UserId`]; `items` should be fresh per domain.
pub fn load_amazon_json_lines(
    name: &str,
    content: &str,
    users: &mut IdInterner,
    items: &mut IdInterner,
) -> Result<Domain, LoadError> {
    let mut interactions = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let user = json_str_field(line, "reviewerID")
            .ok_or_else(|| LoadError::BadLine(lineno, "missing reviewerID".into()))?;
        let item = json_str_field(line, "asin")
            .ok_or_else(|| LoadError::BadLine(lineno, "missing asin".into()))?;
        let overall = json_num_field(line, "overall")
            .ok_or_else(|| LoadError::BadLine(lineno, "missing overall".into()))?;
        let rating = Rating::new(overall.round() as u8)
            .ok_or_else(|| LoadError::BadRating(lineno, overall.to_string()))?;
        // The paper removes records without review text (§5.2).
        let summary = match json_str_field(line, "summary") {
            Some(s) if !s.trim().is_empty() => s,
            _ => continue,
        };
        let full = json_str_field(line, "reviewText").unwrap_or_else(|| summary.clone());
        let mut it = Interaction::new(
            UserId(users.intern(&user)),
            ItemId(items.intern(&item)),
            rating,
            summary,
        );
        it.full_text = full;
        interactions.push(it);
    }
    Ok(Domain::new(name, interactions))
}

/// Parse a TSV corpus: `user \t item \t rating \t summary [\t full_text]`.
pub fn load_tsv(
    name: &str,
    content: &str,
    users: &mut IdInterner,
    items: &mut IdInterner,
) -> Result<Domain, LoadError> {
    let mut interactions = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 4 {
            return Err(LoadError::BadLine(lineno, "need ≥4 tab-separated columns".into()));
        }
        let stars: f32 = cols[2]
            .trim()
            .parse()
            .map_err(|_| LoadError::BadRating(lineno, cols[2].into()))?;
        let rating = Rating::new(stars.round() as u8)
            .ok_or_else(|| LoadError::BadRating(lineno, cols[2].into()))?;
        if cols[3].trim().is_empty() {
            continue; // no review text → dropped, per §5.2
        }
        let mut it = Interaction::new(
            UserId(users.intern(cols[0])),
            ItemId(items.intern(cols[1])),
            rating,
            cols[3],
        );
        if let Some(full) = cols.get(4) {
            it.full_text = (*full).to_owned();
        }
        interactions.push(it);
    }
    Ok(Domain::new(name, interactions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction() {
        let line = r#"{"reviewerID": "AKOHBSPLTYBYZ", "asin": "B00640YZ1U", "overall": 5.0, "summary": "Vampire Romance"}"#;
        assert_eq!(json_str_field(line, "reviewerID").unwrap(), "AKOHBSPLTYBYZ");
        assert_eq!(json_num_field(line, "overall").unwrap(), 5.0);
        assert_eq!(json_str_field(line, "summary").unwrap(), "Vampire Romance");
        assert!(json_str_field(line, "missing").is_none());
    }

    #[test]
    fn json_escapes_are_decoded() {
        let line = r#"{"summary": "she said \"wow\" \\ ok"}"#;
        assert_eq!(json_str_field(line, "summary").unwrap(), "she said \"wow\" \\ ok");
    }

    #[test]
    fn loads_amazon_lines() {
        let content = concat!(
            r#"{"reviewerID": "A1", "asin": "B1", "overall": 5.0, "summary": "great", "reviewText": "really great stuff"}"#,
            "\n",
            r#"{"reviewerID": "A2", "asin": "B1", "overall": 3.0, "summary": "meh"}"#,
            "\n",
        );
        let mut users = IdInterner::new();
        let mut items = IdInterner::new();
        let d = load_amazon_json_lines("Books", content, &mut users, &mut items).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(users.len(), 2);
        assert_eq!(items.len(), 1);
        assert_eq!(d.interactions()[0].full_text, "really great stuff");
        assert_eq!(d.interactions()[1].full_text, "meh"); // falls back to summary
    }

    #[test]
    fn records_without_summary_are_dropped() {
        let content = r#"{"reviewerID": "A1", "asin": "B1", "overall": 4.0, "summary": ""}"#;
        let mut u = IdInterner::new();
        let mut i = IdInterner::new();
        let d = load_amazon_json_lines("Books", content, &mut u, &mut i).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn shared_interner_preserves_overlap() {
        let books = r#"{"reviewerID": "A1", "asin": "B1", "overall": 5.0, "summary": "x"}"#;
        let movies = r#"{"reviewerID": "A1", "asin": "M1", "overall": 4.0, "summary": "y"}"#;
        let mut users = IdInterner::new();
        let db = load_amazon_json_lines("Books", books, &mut users, &mut IdInterner::new()).unwrap();
        let dm = load_amazon_json_lines("Movies", movies, &mut users, &mut IdInterner::new()).unwrap();
        assert_eq!(db.overlapping_users(&dm), vec![UserId(0)]);
    }

    #[test]
    fn tsv_roundtrip() {
        let content = "u1\ti1\t5\tgreat read\tthe full text here\n# comment\nu2\ti1\t2\tboring\n";
        let mut u = IdInterner::new();
        let mut i = IdInterner::new();
        let d = load_tsv("Books", content, &mut u, &mut i).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.interactions()[0].full_text, "the full text here");
        assert_eq!(d.interactions()[1].rating.stars(), 2);
    }

    #[test]
    fn tsv_bad_rating_errors() {
        let mut u = IdInterner::new();
        let mut i = IdInterner::new();
        let e = load_tsv("X", "u\ti\tnine\ttext\n", &mut u, &mut i).unwrap_err();
        assert!(matches!(e, LoadError::BadRating(1, _)));
        let e2 = load_tsv("X", "u\ti\t9\ttext\n", &mut u, &mut i).unwrap_err();
        assert!(matches!(e2, LoadError::BadRating(1, _)));
    }

    #[test]
    fn tsv_short_line_errors() {
        let mut u = IdInterner::new();
        let mut i = IdInterner::new();
        let e = load_tsv("X", "u\ti\t5\n", &mut u, &mut i).unwrap_err();
        assert!(matches!(e, LoadError::BadLine(1, _)));
    }
}
