//! Finite-difference gradient checking.
//!
//! Every differentiable op in this crate is validated against a central
//! finite difference by property tests. f32 arithmetic limits attainable
//! precision; a relative tolerance around `1e-2` with an absolute floor is
//! the standard working regime.

use crate::Tensor;

/// Outcome of a gradient check for a single parameter tensor.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum relative error over all coordinates.
    pub max_rel_err: f32,
    /// Coordinate where the maximum occurred.
    pub worst_index: usize,
    /// Analytic gradient at the worst coordinate.
    pub analytic: f32,
    /// Numeric gradient at the worst coordinate.
    pub numeric: f32,
}

impl GradCheckReport {
    /// Whether the check passed at the given tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compare the analytic gradient of `f` with central finite differences.
///
/// `f` must build a fresh graph from `param` each call and return a scalar
/// loss tensor. `param` must be a parameter (requires_grad). Returns the
/// worst-coordinate report.
pub fn gradcheck<F>(param: &Tensor, f: F, eps: f32) -> GradCheckReport
where
    F: Fn(&Tensor) -> Tensor,
{
    assert!(param.is_parameter(), "gradcheck target must be a parameter");
    // Analytic pass.
    param.zero_grad();
    let loss = f(param);
    assert_eq!(loss.numel(), 1, "gradcheck requires a scalar loss");
    loss.backward();
    let analytic = param
        .grad_vec()
        .unwrap_or_else(|| vec![0.0; param.numel()]);

    // Numeric pass, coordinate by coordinate.
    let mut max_rel = 0.0f32;
    let mut worst = 0usize;
    let mut worst_pair = (0.0f32, 0.0f32);
    for (i, &a_i) in analytic.iter().enumerate() {
        let orig = param.at(i);
        param.data_mut()[i] = orig + eps;
        let plus = f(param).item();
        param.data_mut()[i] = orig - eps;
        let minus = f(param).item();
        param.data_mut()[i] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        let denom = a_i.abs().max(numeric.abs()).max(1e-3);
        let rel = (a_i - numeric).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
            worst = i;
            worst_pair = (a_i, numeric);
        }
    }
    GradCheckReport {
        max_rel_err: max_rel,
        worst_index: worst,
        analytic: worst_pair.0,
        numeric: worst_pair.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, seeded_rng, Tensor};

    const TOL: f32 = 2e-2;
    const EPS: f32 = 1e-2;

    fn param(dims: &[usize], seed: u64) -> Tensor {
        init::uniform(dims, -1.0, 1.0, &mut seeded_rng(seed)).requires_grad()
    }

    #[test]
    fn gradcheck_matmul() {
        let w = param(&[3, 4], 10);
        let x = init::uniform(&[2, 3], -1.0, 1.0, &mut seeded_rng(11));
        let r = gradcheck(&w, |w| x.matmul(w).square().mean_all(), EPS);
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_relu_chain() {
        let w = param(&[4, 4], 12);
        let x = init::uniform(&[3, 4], -1.0, 1.0, &mut seeded_rng(13));
        let r = gradcheck(&w, |w| x.matmul(w).relu().mean_all(), EPS);
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_log_softmax_nll() {
        let w = param(&[4, 5], 14);
        let x = init::uniform(&[3, 4], -1.0, 1.0, &mut seeded_rng(15));
        let r = gradcheck(&w, |w| x.matmul(w).cross_entropy(&[0, 3, 2]), EPS);
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_l2_normalize() {
        let w = param(&[3, 6], 16);
        let m = init::uniform(&[3, 6], -1.0, 1.0, &mut seeded_rng(17));
        let r = gradcheck(&w, |w| w.l2_normalize_rows().mul(&m).sum_all(), EPS);
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_unfold_maxpool() {
        let w = param(&[1, 5, 3], 18);
        let r = gradcheck(
            &w,
            |w| {
                let u = w.unfold_windows(2); // [4, 6]
                u.reshape(&[1, 4, 6]).max_over_time().square().mean_all()
            },
            EPS,
        );
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_embedding() {
        let table = param(&[6, 3], 19);
        let r = gradcheck(
            &table,
            |t| t.embedding_lookup(&[0, 2, 2, 5]).square().mean_all(),
            EPS,
        );
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_concat_sigmoid() {
        let w = param(&[2, 3], 20);
        let other = init::uniform(&[2, 2], -1.0, 1.0, &mut seeded_rng(21));
        let r = gradcheck(
            &w,
            |w| Tensor::concat_cols(&[w, &other]).sigmoid().mean_all(),
            EPS,
        );
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_tanh_exp_log_chain() {
        let w = param(&[2, 2], 22);
        let r = gradcheck(
            &w,
            |w| w.tanh_act().exp().log().square().mean_all(),
            EPS,
        );
        assert!(r.passes(TOL), "{r:?}");
    }
}
