//! Offline, dependency-free subset of the `rand` crate API.
//!
//! Provides exactly what this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`RngExt`] sampling extension trait,
//! and the slice helpers in [`seq`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality and fast, though its stream differs
//! from upstream `rand`'s ChaCha12 (everything in-tree only requires
//! seeded determinism, not stream compatibility).

/// Core random source: a stream of `u64`s.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers, fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly; mirrors `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of one 64-bit draw is irrelevant for span << 2^64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience sampling methods on any [`Rng`]; mirrors `rand::Rng`'s
/// `random`/`random_range`/`random_bool` (the 0.9+ method names).
pub trait RngExt: Rng {
    /// Sample a value over its standard domain.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion — the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot the full generator state (checkpointing: a generator
        /// rebuilt with [`StdRng::from_state`] continues the exact stream).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers: random element choice and shuffling.

    use super::{Rng, RngExt};

    /// Random element access on slices (`rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random permutation (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    fn rng(seed: u64) -> super::rngs::StdRng {
        super::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut r = rng(99);
        for _ in 0..17 {
            r.random::<u64>();
        }
        let mut resumed = super::rngs::StdRng::from_state(r.state());
        let a: Vec<u64> = (0..32).map(|_| r.random::<u64>()).collect();
        let b: Vec<u64> = (0..32).map(|_| resumed.random::<u64>()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<f32> = (0..32).map(|_| rng(7).random::<f32>()).collect();
        let b: Vec<f32> = (0..32).map(|_| rng(7).random::<f32>()).collect();
        assert_eq!(a, b);
        let mut r1 = rng(1);
        let mut r2 = rng(2);
        assert_ne!(r1.random::<f32>(), r2.random::<f32>());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = rng(3);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = rng(4);
        for _ in 0..10_000 {
            let i = r.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = r.random_range(2..=5usize);
            assert!((2..=5).contains(&j));
            let f = r.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut r = rng(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = rng(6);
        let v = [10, 20, 30];
        assert!(v.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());

        let mut s: Vec<usize> = (0..50).collect();
        let orig = s.clone();
        s.shuffle(&mut r);
        assert_ne!(s, orig, "50-element shuffle virtually never identity");
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }

    #[test]
    fn mean_of_unit_draws_is_centred() {
        let mut r = rng(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
