//! # om-metrics
//!
//! Evaluation metrics (RMSE / MAE, Eqs. 22–23 of the paper) plus the
//! aggregation helpers the experiment harness uses: mean ± std over random
//! trials and the percentage-improvement (Δ%) column of Tables 2–3.
//! The [`ranking`] module adds HR@K / NDCG@K / MRR for top-K evaluation,
//! built on the [`topk`] sharded partial-selection module that offline
//! tables and the `om-serve` engine share.

pub mod ranking;
pub mod stats;
pub mod topk;

pub use ranking::{hit_rate_at_k, mrr, ndcg_at_k, RankedList};
pub use stats::{paired_t, PairedComparison};
pub use topk::{merge_top_k, rank_desc_indices, top_k_indices};

/// Total order on `f32` with **NaN sorted last** (ascending). A model that
/// diverges can emit NaN scores; evaluation must degrade (NaN ranks worst)
/// rather than panic mid-experiment. Built on [`f32::total_cmp`] so the
/// order is total and stable sorts preserve ties.
pub fn cmp_nan_last(a: f32, b: f32) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Descending counterpart of [`cmp_nan_last`]: higher values first, NaN
/// still last (a plain reversed `total_cmp` would rank +NaN *first*).
pub fn cmp_nan_last_desc(a: f32, b: f32) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Root mean squared error over `(predicted, gold)` pairs (Eq. 22).
pub fn rmse(pairs: &[(f32, f32)]) -> f32 {
    assert!(!pairs.is_empty(), "rmse: empty evaluation set");
    let sq: f32 = pairs.iter().map(|(p, y)| (p - y) * (p - y)).sum();
    (sq / pairs.len() as f32).sqrt()
}

/// Mean absolute error over `(predicted, gold)` pairs (Eq. 23).
pub fn mae(pairs: &[(f32, f32)]) -> f32 {
    assert!(!pairs.is_empty(), "mae: empty evaluation set");
    let abs: f32 = pairs.iter().map(|(p, y)| (p - y).abs()).sum();
    abs / pairs.len() as f32
}

/// One method's evaluation on one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// Root mean squared error.
    pub rmse: f32,
    /// Mean absolute error.
    pub mae: f32,
}

impl Eval {
    /// Compute both metrics in one pass.
    pub fn of(pairs: &[(f32, f32)]) -> Eval {
        Eval {
            rmse: rmse(pairs),
            mae: mae(pairs),
        }
    }
}

/// Mean and sample standard deviation of a series of trial results.
#[derive(Debug, Clone, Copy)]
pub struct Aggregate {
    /// Mean over trials.
    pub mean: f32,
    /// Sample standard deviation (0 for a single trial).
    pub std: f32,
    /// Number of trials aggregated.
    pub n: usize,
}

impl Aggregate {
    /// Placeholder for a result that could not be produced (every trial of
    /// a method failed): NaN mean over zero trials. Table renderers show
    /// it as a missing cell; [`best_and_second`] ranks it last.
    pub fn missing() -> Aggregate {
        Aggregate {
            mean: f32::NAN,
            std: 0.0,
            n: 0,
        }
    }

    /// Did any trial actually contribute?
    pub fn is_missing(&self) -> bool {
        self.n == 0
    }
}

/// Aggregate repeated trials (the paper reports the average of 5 random
/// trials, §5.4).
pub fn aggregate(values: &[f32]) -> Aggregate {
    assert!(!values.is_empty(), "aggregate: no trials");
    let n = values.len();
    let mean = values.iter().sum::<f32>() / n as f32;
    let std = if n > 1 {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (n - 1) as f32).sqrt()
    } else {
        0.0
    };
    Aggregate { mean, std, n }
}

/// The Δ% improvement of `ours` over the best competitor `best_other`,
/// as reported in the rightmost column of Tables 2–3: positive when ours
/// is lower (better) on an error metric.
pub fn improvement_pct(ours: f32, best_other: f32) -> f32 {
    assert!(best_other > 0.0, "improvement_pct: non-positive baseline");
    (best_other - ours) / best_other * 100.0
}

/// Identify the best (minimum) and second-best values in a row of error
/// metrics; returns their indices. Used to bold/underline table cells the
/// way the paper does. NaN entries (missing results) rank last instead of
/// panicking, so one failed method cannot take down table rendering.
pub fn best_and_second(values: &[f32]) -> (usize, usize) {
    assert!(values.len() >= 2, "need at least two methods");
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| cmp_nan_last(values[a], values[b]));
    (idx[0], idx[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn rmse_reference() {
        // errors 1 and -1 → rmse 1
        assert!(close(rmse(&[(4.0, 3.0), (2.0, 3.0)]), 1.0));
        // perfect predictions
        assert!(close(rmse(&[(5.0, 5.0)]), 0.0));
    }

    #[test]
    fn mae_reference() {
        assert!(close(mae(&[(4.0, 3.0), (1.0, 3.0)]), 1.5));
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let pairs = [(1.0, 3.0), (4.5, 3.0), (2.8, 3.0), (3.0, 3.0)];
        assert!(rmse(&pairs) >= mae(&pairs));
    }

    #[test]
    fn eval_of_computes_both() {
        let e = Eval::of(&[(4.0, 3.0), (2.0, 3.0)]);
        assert!(close(e.rmse, 1.0));
        assert!(close(e.mae, 1.0));
    }

    #[test]
    fn aggregate_mean_and_std() {
        let a = aggregate(&[1.0, 2.0, 3.0]);
        assert!(close(a.mean, 2.0));
        assert!(close(a.std, 1.0));
        assert_eq!(a.n, 3);
    }

    #[test]
    fn aggregate_single_trial_has_zero_std() {
        let a = aggregate(&[1.5]);
        assert!(close(a.std, 0.0));
    }

    #[test]
    fn improvement_pct_reference() {
        // paper's Books→Movies Douban row: 0.838 vs 1.131 → 25.9 %
        let pct = improvement_pct(0.838, 1.131);
        assert!((pct - 25.9).abs() < 0.1, "{pct}");
        // worse model → negative
        assert!(improvement_pct(1.2, 1.0) < 0.0);
    }

    #[test]
    fn best_and_second_indices() {
        let (b, s) = best_and_second(&[1.15, 1.124, 1.558, 1.031]);
        assert_eq!(b, 3);
        assert_eq!(s, 1);
    }

    #[test]
    fn best_and_second_ranks_nan_last() {
        // A diverged method (NaN) must never be best or second.
        let (b, s) = best_and_second(&[f32::NAN, 1.2, 1.1]);
        assert_eq!(b, 2);
        assert_eq!(s, 1);
        // All-NaN still returns indices instead of panicking.
        let (b, s) = best_and_second(&[f32::NAN, f32::NAN]);
        assert_eq!((b, s), (0, 1), "stable ties keep insertion order");
    }

    #[test]
    fn cmp_nan_last_orderings() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_nan_last(1.0, 2.0), Less);
        assert_eq!(cmp_nan_last(f32::NAN, 2.0), Greater);
        assert_eq!(cmp_nan_last(2.0, f32::NAN), Less);
        assert_eq!(cmp_nan_last(f32::NAN, f32::NAN), Equal);
        assert_eq!(cmp_nan_last_desc(1.0, 2.0), Greater);
        assert_eq!(cmp_nan_last_desc(f32::NAN, 2.0), Greater, "NaN last even descending");
        let mut v = [0.5, f32::NAN, 0.9, 0.1];
        v.sort_by(|a, b| cmp_nan_last_desc(*a, *b));
        assert_eq!(&v[..3], &[0.9, 0.5, 0.1]);
        assert!(v[3].is_nan());
    }

    #[test]
    fn missing_aggregate_is_nan_and_flagged() {
        let m = Aggregate::missing();
        assert!(m.mean.is_nan());
        assert!(m.is_missing());
        assert_eq!(m.n, 0);
        assert!(!aggregate(&[1.0]).is_missing());
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn empty_rmse_panics() {
        let _ = rmse(&[]);
    }
}
