//! Review-document assembly and fixed-length encoding.
//!
//! §4.2 concatenates a user's reviews into one document `R^u` (Eq. 1),
//! tokenises it to `D^u` (Eq. 2), and truncates/pads to a fixed length
//! before the embedding lookup (Eq. 3). The `<sp>` separator between
//! reviews mirrors the case study of §5.10.

use crate::preprocess::tokenize;
use crate::vocab::{Vocab, PAD_TOKEN};

/// Separator inserted between concatenated reviews (§5.10).
pub const SEPARATOR: &str = "<sp>";

/// Encodes review collections into fixed-length id sequences.
#[derive(Debug, Clone)]
pub struct DocumentEncoder {
    max_len: usize,
}

impl DocumentEncoder {
    /// Build an encoder producing documents of exactly `max_len` ids.
    pub fn new(max_len: usize) -> DocumentEncoder {
        assert!(max_len >= 1, "document length must be positive");
        DocumentEncoder { max_len }
    }

    /// The fixed document length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Concatenate raw review texts into one normalised token stream with
    /// `<sp>` separators (Eq. 1 + §5.10).
    pub fn concat_reviews(&self, reviews: &[&str]) -> Vec<String> {
        let mut tokens = Vec::new();
        for (i, review) in reviews.iter().enumerate() {
            if i > 0 {
                tokens.push(SEPARATOR.to_owned());
            }
            tokens.extend(tokenize(review));
        }
        tokens
    }

    /// Encode reviews to exactly `max_len` vocabulary ids: truncate if
    /// longer, pad with `PAD_TOKEN` if shorter (Eqs. 2–3).
    pub fn encode(&self, vocab: &Vocab, reviews: &[&str]) -> Vec<usize> {
        let tokens = self.concat_reviews(reviews);
        let mut ids: Vec<usize> = tokens
            .iter()
            .take(self.max_len)
            .map(|t| vocab.id(t))
            .collect();
        ids.resize(self.max_len, PAD_TOKEN);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::UNK_TOKEN;

    fn vocab() -> Vocab {
        let docs = [vec![
            "vampire", "romance", "action", "great", "<sp>", "fun",
        ]];
        Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 100)
    }

    #[test]
    fn concatenation_inserts_separator() {
        let enc = DocumentEncoder::new(16);
        let toks = enc.concat_reviews(&["Vampire Romance", "great fun"]);
        assert_eq!(toks, vec!["vampire", "romance", "<sp>", "great", "fun"]);
    }

    #[test]
    fn encode_pads_to_length() {
        let enc = DocumentEncoder::new(6);
        let v = vocab();
        let ids = enc.encode(&v, &["vampire"]);
        assert_eq!(ids.len(), 6);
        assert_ne!(ids[0], PAD_TOKEN);
        assert!(ids[1..].iter().all(|&i| i == PAD_TOKEN));
    }

    #[test]
    fn encode_truncates_to_length() {
        let enc = DocumentEncoder::new(2);
        let v = vocab();
        let ids = enc.encode(&v, &["vampire romance action great"]);
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&i| i != PAD_TOKEN));
    }

    #[test]
    fn unknown_words_become_unk() {
        let enc = DocumentEncoder::new(3);
        let v = vocab();
        let ids = enc.encode(&v, &["xylophone"]);
        assert_eq!(ids[0], UNK_TOKEN);
    }

    #[test]
    fn empty_reviews_are_all_padding() {
        let enc = DocumentEncoder::new(4);
        let v = vocab();
        assert_eq!(enc.encode(&v, &[]), vec![PAD_TOKEN; 4]);
    }

    #[test]
    fn separator_is_a_token() {
        let enc = DocumentEncoder::new(8);
        let v = vocab();
        let ids = enc.encode(&v, &["vampire", "fun"]);
        assert_eq!(ids[1], v.id(SEPARATOR));
    }
}
