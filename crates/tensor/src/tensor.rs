//! The core [`Tensor`] type and the reverse-mode autograd engine.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shape::Shape;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static NO_GRAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII guard disabling graph construction on this thread (see [`no_grad`]).
pub struct NoGradGuard {
    prev: bool,
}

/// Disable autograd graph construction until the returned guard drops.
/// Evaluation passes use this to skip node bookkeeping entirely.
pub fn no_grad() -> NoGradGuard {
    let prev = NO_GRAD.with(|c| c.replace(true));
    NoGradGuard { prev }
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        NO_GRAD.with(|c| c.set(prev));
    }
}

/// Is autograd graph construction currently enabled on this thread?
/// `false` inside a [`no_grad`] scope (and thus inside om-nn's inference
/// mode, which holds a [`NoGradGuard`]).
pub fn grad_enabled() -> bool {
    NO_GRAD.with(|c| !c.get())
}

/// A backward closure: receives the upstream gradient of this node's output
/// and the node's parent tensors, and accumulates gradients into them.
/// Parents are passed as arguments (never captured) so a dropped graph
/// frees without reference cycles through closures, and [`Inner`]'s
/// iterative `Drop` can tear down arbitrarily deep chains without
/// recursion.
pub(crate) type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

impl Drop for Inner {
    fn drop(&mut self) {
        // Iterative teardown: a naive recursive drop of `parents` overflows
        // the stack on deep graphs (e.g. 10k chained ops). Claim the whole
        // ancestor chain into a flat worklist first.
        let mut stack: Vec<Tensor> = std::mem::take(&mut self.parents);
        while let Some(mut t) = stack.pop() {
            if let Some(inner) = Rc::get_mut(&mut t.0) {
                stack.append(&mut inner.parents);
            }
        }
    }
}

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    /// True for leaf parameters the user asked gradients for.
    pub(crate) requires_grad: bool,
    /// True if this node or any ancestor requires a gradient; interior nodes
    /// with `needs_grad` receive gradient buffers during the backward sweep.
    pub(crate) needs_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// An n-dimensional f32 tensor participating in a dynamically-built
/// computation graph.
///
/// `Tensor` is a cheap handle (`Rc` clone). Data lives behind a `RefCell` so
/// optimizers can update parameters in place between graph constructions.
#[derive(Clone)]
pub struct Tensor(pub(crate) Rc<Inner>);

impl Tensor {
    // ---------------------------------------------------------------- ctor

    /// Build a leaf tensor from raw data. Panics if `data.len()` does not
    /// match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad: false,
            needs_grad: false,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Tensor {
        let n = Shape::new(dims).numel();
        Tensor::from_vec(vec![0.0; n], dims)
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Tensor {
        let n = Shape::new(dims).numel();
        Tensor::from_vec(vec![1.0; n], dims)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Tensor {
        let n = Shape::new(dims).numel();
        Tensor::from_vec(vec![value; n], dims)
    }

    /// A scalar (shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![value], &[1])
    }

    /// Mark this leaf as a trainable parameter. Consumes and returns the
    /// handle for builder-style construction. Panics when called on a
    /// non-leaf (interior) node, where the flag would have no effect.
    pub fn requires_grad(self) -> Tensor {
        assert!(
            self.0.backward.is_none(),
            "requires_grad() must be set on leaf tensors before use in ops"
        );
        // Rebuild the inner with the flag set; the Rc may be shared, so we
        // only do this when uniquely owned (typical for freshly created
        // parameters).
        match Rc::try_unwrap(self.0) {
            Ok(mut inner) => {
                inner.requires_grad = true;
                inner.needs_grad = true;
                Tensor(Rc::new(inner))
            }
            Err(rc) => {
                // Shared handle: clone the data into a fresh parameter.
                let data = rc.data.borrow().clone();
                let mut t = Tensor::from_vec(data, rc.shape.dims());
                let inner = Rc::get_mut(&mut t.0).expect("fresh tensor is unique");
                inner.requires_grad = true;
                inner.needs_grad = true;
                t
            }
        }
    }

    /// Internal: build an interior node produced by an op.
    pub(crate) fn from_op(
        data: Vec<f32>,
        dims: &[usize],
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        let needs_grad = grad_enabled() && parents.iter().any(|p| p.0.needs_grad);
        let shape = Shape::new(dims);
        assert_eq!(data.len(), shape.numel(), "op output length mismatch");
        if !needs_grad {
            // No ancestor wants gradients: drop the graph edges entirely so
            // inference never retains memory.
            return Tensor::from_vec(data, dims);
        }
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad: false,
            needs_grad: true,
            parents,
            backward: Some(backward),
        }))
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.0.shape
    }

    /// The dims as a slice.
    pub fn dims(&self) -> &[usize] {
        self.0.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.shape.numel()
    }

    /// Unique node id (useful for debugging graphs).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Whether this is a trainable leaf.
    pub fn is_parameter(&self) -> bool {
        self.0.requires_grad
    }

    /// Immutable view of the data.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.0.data.borrow()
    }

    /// Mutable view of the data (used by optimizers; never call while a
    /// graph referencing this tensor is mid-backward).
    pub fn data_mut(&self) -> RefMut<'_, Vec<f32>> {
        self.0.data.borrow_mut()
    }

    /// Copy of the data as a `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.0.data.borrow().clone()
    }

    /// The single value of a scalar tensor. Panics if `numel() != 1`.
    pub fn item(&self) -> f32 {
        let d = self.0.data.borrow();
        assert_eq!(d.len(), 1, "item() requires a scalar tensor");
        d[0]
    }

    /// Element at a flat index.
    pub fn at(&self, idx: usize) -> f32 {
        self.0.data.borrow()[idx]
    }

    /// Copy of the accumulated gradient, if any.
    pub fn grad_vec(&self) -> Option<Vec<f32>> {
        self.0.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Detach: a new leaf sharing a *copy* of the data, outside any graph.
    pub fn detach(&self) -> Tensor {
        Tensor::from_vec(self.to_vec(), self.dims())
    }

    /// Accumulate `g` into this node's gradient buffer.
    pub fn accumulate_grad(&self, g: &[f32]) {
        debug_assert_eq!(g.len(), self.numel());
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                crate::runtime::parallel_rows_mut(buf, 1, 16 * 1024, |i0, block| {
                    for (d, b) in block.iter_mut().enumerate() {
                        *b += g[i0 + d];
                    }
                });
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    // ------------------------------------------------------------- backward

    /// Run reverse-mode differentiation from this (scalar) output.
    ///
    /// Seeds the output gradient with 1 and sweeps the graph in reverse
    /// topological order, accumulating into every tensor on a path to a
    /// parameter. Panics if the output is not a scalar; use
    /// [`Tensor::backward_with`] to seed an arbitrary gradient.
    pub fn backward(&self) {
        assert_eq!(self.numel(), 1, "backward() requires a scalar output");
        self.backward_with(&[1.0]);
    }

    /// Run reverse-mode differentiation seeding the output gradient with
    /// `seed` (same length as `numel()`).
    pub fn backward_with(&self, seed: &[f32]) {
        assert_eq!(seed.len(), self.numel(), "seed length mismatch");
        if !self.0.needs_grad {
            return; // nothing on the graph requires gradients
        }
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.0.id);
        while let Some((node, child_idx)) = stack.pop() {
            if child_idx < node.0.parents.len() {
                let parent = node.0.parents[child_idx].clone();
                stack.push((node, child_idx + 1));
                if parent.0.needs_grad && visited.insert(parent.0.id) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(node);
            }
        }
        // `order` is post-order: parents before children; reverse it so the
        // output comes first.
        self.accumulate_grad(seed);
        for node in order.iter().rev() {
            if let Some(backward) = &node.0.backward {
                let grad = node
                    .0
                    .grad
                    .borrow()
                    .clone()
                    .unwrap_or_else(|| vec![0.0; node.numel()]);
                backward(&grad, &node.0.parents);
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0.data.borrow();
        let preview: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={}, data≈{:?}{})",
            self.0.id,
            self.0.shape,
            self.0.requires_grad,
            preview,
            if d.len() > 8 { "…" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.at(3), 4.0);
        assert!(!t.is_parameter());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0; 3], &[2, 2]);
    }

    #[test]
    fn requires_grad_marks_parameter() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(t.is_parameter());
        assert!(t.0.needs_grad);
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros(&[2, 2]).to_vec(), vec![0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).to_vec(), vec![1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).to_vec(), vec![7.5, 7.5]);
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn grad_accumulates_across_calls() {
        let t = Tensor::zeros(&[2]).requires_grad();
        t.accumulate_grad(&[1.0, 2.0]);
        t.accumulate_grad(&[0.5, 0.5]);
        assert_eq!(t.grad_vec().unwrap(), vec![1.5, 2.5]);
        t.zero_grad();
        assert!(t.grad_vec().is_none());
    }

    #[test]
    fn detach_breaks_graph() {
        let t = Tensor::ones(&[2]).requires_grad();
        let d = t.detach();
        assert!(!d.is_parameter());
        assert_eq!(d.to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    fn backward_on_non_graph_is_noop() {
        let t = Tensor::ones(&[1]);
        t.backward(); // must not panic
        assert!(t.grad_vec().is_none());
    }
}

#[cfg(test)]
mod no_grad_tests {
    use super::*;

    #[test]
    fn no_grad_skips_graph() {
        let w = Tensor::ones(&[2]).requires_grad();
        let guard = no_grad();
        let y = w.scale(2.0);
        drop(guard);
        y.backward_with(&[1.0, 1.0]);
        assert!(w.grad_vec().is_none(), "no_grad must sever the graph");
    }

    #[test]
    fn no_grad_restores_on_drop() {
        let w = Tensor::ones(&[1]).requires_grad();
        {
            let _g = no_grad();
        }
        w.scale(3.0).sum_all().backward();
        assert_eq!(w.grad_vec().unwrap(), vec![3.0]);
    }

    #[test]
    fn no_grad_nests() {
        let w = Tensor::ones(&[1]).requires_grad();
        let g1 = no_grad();
        {
            let _g2 = no_grad();
        }
        // still disabled after inner guard drops
        let y = w.scale(2.0);
        drop(g1);
        y.backward_with(&[1.0]);
        assert!(w.grad_vec().is_none());
    }
}
