//! Cross-domain scenario construction following §5.2:
//!
//! * keep only users with records in both domains (the overlapping set);
//! * 80% of overlapping users become training users;
//! * the remaining 20% are the *cold-start* users — their target-domain
//!   reviews are hidden from the model — split half/half into validation
//!   and test;
//! * optionally subsample the training users (Table 4's 100/80/50/20%).

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::domain::Domain;
use crate::types::{Interaction, UserId};

/// Split parameters (§5.2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Fraction of overlapping users used for training (paper: 0.8).
    pub train_ratio: f32,
    /// Fraction of the training users actually kept (Table 4; 1.0 = all).
    pub train_fraction: f32,
    /// Shuffle seed — the whole split is deterministic given this.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            train_ratio: 0.8,
            train_fraction: 1.0,
            seed: 7,
        }
    }
}

/// A fully-materialised cross-domain cold-start scenario.
#[derive(Debug, Clone)]
pub struct CrossDomainScenario {
    /// Source-domain corpus, restricted to scenario users.
    pub source: Domain,
    /// Target-domain corpus visible at training time (cold-start users'
    /// target reviews removed).
    pub target_train: Domain,
    /// Full target-domain corpus (ground truth for evaluation only).
    pub target_full: Domain,
    /// All overlapping users in deterministic order.
    pub overlapping: Vec<UserId>,
    /// Training users (after `train_fraction` subsampling).
    pub train_users: Vec<UserId>,
    /// Validation cold-start users.
    pub valid_users: Vec<UserId>,
    /// Test cold-start users.
    pub test_users: Vec<UserId>,
}

impl CrossDomainScenario {
    /// Build the scenario from two raw domains.
    pub fn build(source: &Domain, target: &Domain, cfg: SplitConfig) -> CrossDomainScenario {
        assert!(
            (0.0..=1.0).contains(&cfg.train_ratio),
            "train_ratio must be in [0,1]"
        );
        assert!(
            cfg.train_fraction > 0.0 && cfg.train_fraction <= 1.0,
            "train_fraction must be in (0,1]"
        );
        let overlapping = source.overlapping_users(target);
        assert!(
            overlapping.len() >= 4,
            "need at least 4 overlapping users to split"
        );

        let mut shuffled = overlapping.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        shuffled.shuffle(&mut rng);

        let n_train = ((shuffled.len() as f32) * cfg.train_ratio).round() as usize;
        let n_train = n_train.clamp(1, shuffled.len() - 2);
        let (train_all, cold) = shuffled.split_at(n_train);
        let n_valid = cold.len() / 2;
        let (valid, test) = cold.split_at(n_valid);

        // Table 4 subsampling: keep a prefix of the (already shuffled)
        // training users.
        let n_kept = (((train_all.len() as f32) * cfg.train_fraction).round() as usize).max(1);
        let mut train_users: Vec<UserId> = train_all[..n_kept].to_vec();
        train_users.sort_unstable();
        let mut valid_users = valid.to_vec();
        valid_users.sort_unstable();
        let mut test_users = test.to_vec();
        test_users.sort_unstable();

        let scenario_users: HashSet<UserId> = train_users
            .iter()
            .chain(&valid_users)
            .chain(&test_users)
            .copied()
            .collect();
        let train_set: HashSet<UserId> = train_users.iter().copied().collect();

        CrossDomainScenario {
            source: source.filter_users(|u| scenario_users.contains(&u)),
            target_train: target.filter_users(|u| train_set.contains(&u)),
            target_full: target.filter_users(|u| scenario_users.contains(&u)),
            overlapping,
            train_users,
            valid_users,
            test_users,
        }
    }

    /// Human-readable scenario name, e.g. `Books -> Movies`.
    pub fn name(&self) -> String {
        format!("{} -> {}", self.source.name(), self.target_full.name())
    }

    /// Ground-truth target-domain interactions of the given users — the
    /// evaluation pairs `(u, i, y_{u,i})` of Eqs. 22–23.
    pub fn eval_pairs(&self, users: &[UserId]) -> Vec<&Interaction> {
        let set: HashSet<UserId> = users.iter().copied().collect();
        self.target_full
            .interactions()
            .iter()
            .filter(|it| set.contains(&it.user))
            .collect()
    }

    /// Evaluation pairs for the validation cold-start users.
    pub fn validation_pairs(&self) -> Vec<&Interaction> {
        self.eval_pairs(&self.valid_users)
    }

    /// Evaluation pairs for the test cold-start users.
    pub fn test_pairs(&self) -> Vec<&Interaction> {
        self.eval_pairs(&self.test_users)
    }

    /// All cold-start users (validation ∪ test) — the set `U^cs` of §2.
    pub fn cold_start_users(&self) -> Vec<UserId> {
        let mut v = self.valid_users.clone();
        v.extend_from_slice(&self.test_users);
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ItemId, Rating};

    fn r(stars: u8) -> Rating {
        Rating::new(stars).unwrap()
    }

    fn world(n_users: u32) -> (Domain, Domain) {
        let mut src = Vec::new();
        let mut tgt = Vec::new();
        for u in 0..n_users {
            src.push(Interaction::new(UserId(u), ItemId(u % 5), r(5), "src rev"));
            tgt.push(Interaction::new(UserId(u), ItemId(u % 7), r(4), "tgt rev"));
        }
        // one user only in source (must be excluded from the scenario)
        src.push(Interaction::new(
            UserId(10_000),
            ItemId(1),
            r(3),
            "lonely",
        ));
        (Domain::new("Books", src), Domain::new("Movies", tgt))
    }

    #[test]
    fn split_partitions_overlap() {
        let (s, t) = world(20);
        let sc = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        assert_eq!(sc.overlapping.len(), 20);
        let total = sc.train_users.len() + sc.valid_users.len() + sc.test_users.len();
        assert_eq!(total, 20);
        assert_eq!(sc.train_users.len(), 16); // 80%
        assert_eq!(sc.valid_users.len(), 2);
        assert_eq!(sc.test_users.len(), 2);
        // disjoint
        for u in &sc.valid_users {
            assert!(!sc.train_users.contains(u));
            assert!(!sc.test_users.contains(u));
        }
    }

    #[test]
    fn cold_start_target_reviews_are_hidden() {
        let (s, t) = world(20);
        let sc = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        for u in sc.cold_start_users() {
            assert!(!sc.target_train.contains_user(u), "{u} leaked into training");
            assert!(sc.source.contains_user(u), "{u} must keep source history");
            assert!(sc.target_full.contains_user(u));
        }
    }

    #[test]
    fn non_overlapping_users_are_dropped() {
        let (s, t) = world(20);
        let sc = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        assert!(!sc.source.contains_user(UserId(10_000)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t) = world(30);
        let a = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        let b = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        assert_eq!(a.train_users, b.train_users);
        assert_eq!(a.test_users, b.test_users);
        let c = CrossDomainScenario::build(
            &s,
            &t,
            SplitConfig {
                seed: 99,
                ..SplitConfig::default()
            },
        );
        assert_ne!(a.train_users, c.train_users);
    }

    #[test]
    fn train_fraction_subsamples_training_only(){
        let (s, t) = world(40);
        let full = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        let half = CrossDomainScenario::build(
            &s,
            &t,
            SplitConfig {
                train_fraction: 0.5,
                ..SplitConfig::default()
            },
        );
        assert_eq!(half.train_users.len(), full.train_users.len() / 2);
        assert_eq!(half.valid_users, full.valid_users);
        assert_eq!(half.test_users, full.test_users);
        // kept training users are a subset of the full ones
        for u in &half.train_users {
            assert!(full.train_users.contains(u));
        }
    }

    #[test]
    fn eval_pairs_come_from_full_target() {
        let (s, t) = world(20);
        let sc = CrossDomainScenario::build(&s, &t, SplitConfig::default());
        let pairs = sc.test_pairs();
        assert_eq!(pairs.len(), sc.test_users.len()); // one record each here
        for p in pairs {
            assert!(sc.test_users.contains(&p.user));
        }
    }

    #[test]
    #[should_panic(expected = "at least 4 overlapping")]
    fn tiny_overlap_panics() {
        let (s, _) = world(2);
        let t2 = Domain::new(
            "Movies",
            vec![Interaction::new(UserId(0), ItemId(0), r(3), "x")],
        );
        let _ = CrossDomainScenario::build(&s, &t2, SplitConfig::default());
    }
}
