//! Microbatching request scheduler.
//!
//! Requests accumulate until either `batch` of them are pending or the
//! oldest has waited `wait_us` microseconds; each flush then scores as
//! one batch on the tensor runtime's worker pool (amortising the GEMM
//! against the item arena over the whole batch).
//!
//! The batcher is deliberately *synchronous*: the serving loop pumps it
//! with [`Microbatcher::submit`] / [`Microbatcher::poll`] and executes
//! flushed batches itself. No thread is spawned here — compute fans out
//! inside the kernels via `om_tensor::runtime` — and time is passed in by
//! the caller, so a replay under a virtual clock is exactly reproducible
//! (and testable) while production callers pass a monotonic clock.
//!
//! The batcher is generic over its item type (defaulting to [`Request`]):
//! the threaded front-end batches requests *wrapped with their telemetry
//! stamps* (admission and dequeue timestamps for the per-stage latency
//! attribution), while the synchronous replay paths keep batching plain
//! [`Request`]s. Batching policy cannot depend on the payload, so the
//! wrapper provably changes no flush boundary.

use crate::engine::Request;

/// Accumulates items and decides when a batch is due.
pub struct Microbatcher<T = Request> {
    pending: Vec<T>,
    batch: usize,
    wait_us: u64,
    oldest_us: u64,
}

impl<T> Microbatcher<T> {
    /// A batcher flushing at `batch` pending requests or `wait_us`
    /// microseconds of queueing, whichever comes first. `batch == 1`
    /// degenerates to unbatched serving.
    pub fn new(batch: usize, wait_us: u64) -> Microbatcher<T> {
        Microbatcher {
            pending: Vec::with_capacity(batch.max(1)),
            batch: batch.max(1),
            wait_us,
            oldest_us: 0,
        }
    }

    /// Enqueue a request arriving at `now_us`. Returns the batch to score
    /// when this arrival filled it.
    pub fn submit(&mut self, req: T, now_us: u64) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            self.oldest_us = now_us;
        }
        self.pending.push(req);
        if self.pending.len() >= self.batch {
            self.take()
        } else {
            None
        }
    }

    /// Flush if the oldest pending request has waited out the deadline.
    pub fn poll(&mut self, now_us: u64) -> Option<Vec<T>> {
        if !self.pending.is_empty() && now_us.saturating_sub(self.oldest_us) >= self.wait_us {
            self.take()
        } else {
            None
        }
    }

    /// Unconditionally flush whatever is pending (end of trace/shutdown).
    pub fn drain(&mut self) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            None
        } else {
            self.take()
        }
    }

    /// Number of requests currently queued.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Arrival time of the oldest queued request (meaningful only while
    /// `pending() > 0`).
    pub fn oldest_us(&self) -> u64 {
        self.oldest_us
    }

    fn take(&mut self) -> Option<Vec<T>> {
        Some(std::mem::take(&mut self.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::types::UserId;

    fn req(id: u64) -> Request {
        Request {
            id,
            user: UserId(id as u32),
            arrive_us: 0,
        }
    }

    #[test]
    fn flushes_when_batch_fills() {
        let mut b = Microbatcher::new(3, 1_000);
        assert!(b.submit(req(1), 10).is_none());
        assert!(b.submit(req(2), 11).is_none());
        let batch = b.submit(req(3), 12).expect("third arrival fills the batch");
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn flushes_when_oldest_waits_out_the_deadline() {
        let mut b = Microbatcher::new(100, 500);
        assert!(b.submit(req(1), 1_000).is_none());
        assert!(b.poll(1_499).is_none(), "deadline not yet reached");
        let batch = b.poll(1_500).expect("oldest waited 500us");
        assert_eq!(batch.len(), 1);
        // The deadline tracks the *oldest* arrival, not the newest.
        assert!(b.submit(req(2), 2_000).is_none());
        assert!(b.submit(req(3), 2_400).is_none());
        assert!(b.poll(2_499).is_none());
        assert_eq!(b.poll(2_500).expect("flush").len(), 2);
    }

    #[test]
    fn drain_returns_the_remainder() {
        let mut b = Microbatcher::new(10, 1_000);
        assert!(b.drain().is_none());
        b.submit(req(1), 0);
        b.submit(req(2), 1);
        assert_eq!(b.drain().expect("remainder").len(), 2);
        assert!(b.drain().is_none());
    }

    #[test]
    fn batch_of_one_is_unbatched_serving() {
        let mut b = Microbatcher::new(1, 1_000);
        assert_eq!(b.submit(req(9), 5).expect("immediate flush").len(), 1);
    }

    #[test]
    fn generic_items_batch_identically_to_requests() {
        // The front-end batches a stamped wrapper; same policy, any T.
        let mut b: Microbatcher<(u64, &str)> = Microbatcher::new(2, 100);
        assert!(b.submit((1, "a"), 0).is_none());
        let batch = b.submit((2, "b"), 1).expect("fills at 2");
        assert_eq!(batch, vec![(1, "a"), (2, "b")]);
        assert!(b.submit((3, "c"), 10).is_none());
        assert_eq!(b.poll(110).expect("deadline flush").len(), 1);
    }
}
