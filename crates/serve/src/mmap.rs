//! Read-only memory mapping, dependency-free.
//!
//! Arena blobs at million-user scale are hundreds of megabytes; reading
//! them eagerly would make server cold start O(catalogue). This module
//! maps the file instead, so cold start touches only the pages a request
//! actually scores. On `x86_64` Linux the map is a raw `mmap(2)` syscall
//! (the workspace vendors no libc); elsewhere — and on big-endian
//! targets, where the on-disk little-endian f32s cannot be reinterpreted
//! in place — [`Mmap::open`] degrades to an eager heap read with the same
//! API and the same bytes, so every caller and test is portable.
//!
//! This file and `om_tensor::runtime` are the only modules allowed to
//! contain `unsafe` (om-lint's `unsafe-confinement` pass enforces the
//! allowlist); every site carries a `// SAFETY:` argument.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A read-only view of a whole file: page-mapped where supported, an
/// eager heap copy elsewhere.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Sys { ptr: *const u8, len: usize },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is immutable for its whole lifetime — PROT_READ and
// MAP_PRIVATE, so neither this process nor any other can write the pages
// this handle observes — and the heap fallback is an owned `Vec<u8>` that
// is never mutated after construction. Shared or transferred access from
// any thread therefore only ever reads frozen bytes.
unsafe impl Send for Mmap {}
// SAFETY: as above — `&Mmap` exposes only reads of immutable memory.
unsafe impl Sync for Mmap {}

// Linux x86_64 syscall numbers and flags for the two calls used here.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    pub const MMAP: i64 = 9;
    pub const MUNMAP: i64 = 11;
    pub const PROT_READ: usize = 0x1;
    pub const MAP_PRIVATE: usize = 0x2;
}

impl Mmap {
    /// Map `path` read-only. Zero-length files yield an empty view (an
    /// `mmap` of length 0 is `EINVAL`, so they short-circuit to a heap
    /// vector). IO and syscall failures surface as `io::Error`.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize =
            usize::try_from(len).map_err(|_| io::Error::other("file exceeds address space"))?;
        if len_usize == 0 {
            return Ok(Mmap { inner: Inner::Heap(Vec::new()) });
        }
        Mmap::map_or_read(file, len_usize)
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn map_or_read(file: File, len: usize) -> io::Result<Mmap> {
        use std::os::fd::AsRawFd;
        let fd = file.as_raw_fd();
        let ret: isize;
        // SAFETY: a raw `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`
        // syscall. All arguments are passed in the registers the x86_64
        // Linux syscall ABI specifies; `rcx`/`r11` are declared clobbered
        // (the kernel overwrites them) and no memory the compiler knows
        // about is touched. `fd` is open for the duration of the call and
        // the kernel validates every argument, returning -errno on any
        // problem — checked below before the pointer is ever used.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") sys::MMAP as isize => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") sys::PROT_READ,
                in("r10") sys::MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        om_obs::metrics::counter("serve.mmap.maps").add(1);
        Ok(Mmap { inner: Inner::Sys { ptr: ret as *const u8, len } })
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn map_or_read(file: File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap { inner: Inner::Heap(buf) })
    }

    /// The full mapped (or read) contents.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            // SAFETY: `ptr` came from a successful PROT_READ/MAP_PRIVATE
            // mmap of exactly `len` bytes, is non-null (error returns were
            // rejected in `map_or_read`), and stays mapped until `Drop`
            // munmaps it — which cannot happen while `&self` is borrowed.
            // The mapping is private, so no other process can mutate the
            // pages under us.
            Inner::Sys { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap(v) => v,
        }
    }

    /// Whether the contents are genuinely page-mapped (as opposed to the
    /// eager heap fallback) — lets callers report which cold-start regime
    /// they actually measured.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Sys { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Inner::Sys { ptr, len } = self.inner {
            // SAFETY: `ptr`/`len` describe exactly the region the
            // constructor mapped, unmapped exactly once (Drop runs once
            // and no other code munmaps). A failure here leaks the
            // mapping, which is safe; the return value is ignored.
            unsafe {
                let _ret: isize;
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") sys::MUNMAP as isize => _ret,
                    in("rdi") ptr,
                    in("rsi") len,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
        }
    }
}

/// A `[f32]` window into an [`Mmap`], kept alive by an `Arc` — the
/// zero-copy backing a mapped arena hands to the scoring kernels.
pub struct F32View {
    map: Arc<Mmap>,
    byte_off: usize,
    len: usize,
}

impl F32View {
    /// A view of `len` f32s starting `byte_off` bytes into the map. The
    /// range must be in bounds and 4-byte aligned relative to the map
    /// base (mmap bases are page-aligned, so absolute alignment follows);
    /// the caller (the blob loader) has already validated both, and this
    /// re-checks rather than trusts.
    ///
    /// Only valid on little-endian targets, where the on-disk f32-le
    /// representation *is* the in-memory one; the blob loader routes
    /// big-endian targets through an owned decode instead.
    pub fn new(map: Arc<Mmap>, byte_off: usize, len: usize) -> F32View {
        // Runtime (not const) assert: the blob loader compiles this call
        // on every target and routes big-endian ones away at runtime.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(
                cfg!(target_endian = "little"),
                "zero-copy f32 views require a little-endian target"
            );
        }
        let bytes = map.as_bytes();
        let end = byte_off
            .checked_add(len * std::mem::size_of::<f32>())
            .expect("f32 view length overflow");
        assert!(end <= bytes.len(), "f32 view out of bounds");
        assert!(
            (bytes.as_ptr() as usize + byte_off).is_multiple_of(std::mem::align_of::<f32>()),
            "f32 view misaligned"
        );
        F32View { map, byte_off, len }
    }

    /// The f32 slice.
    pub fn as_slice(&self) -> &[f32] {
        let bytes = self.map.as_bytes();
        // SAFETY: the constructor checked that `byte_off..byte_off+4*len`
        // is in bounds of the map and that the start address is 4-byte
        // aligned, the map lives as long as `self` via the `Arc`, and on
        // the little-endian targets the constructor admits, any 4 bytes
        // are a valid f32 bit pattern.
        unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().add(self.byte_off) as *const f32, self.len)
        }
    }
}

/// An `[i8]` window into an [`Mmap`], kept alive by an `Arc` — the
/// zero-copy backing of a quantised arena's int8 row payload. Unlike
/// [`F32View`] there is no alignment or endianness concern: every byte is
/// a valid `i8` and single bytes have no byte order.
pub struct I8View {
    map: Arc<Mmap>,
    byte_off: usize,
    len: usize,
}

impl I8View {
    /// A view of `len` i8s starting `byte_off` bytes into the map. The
    /// range must be in bounds; the caller (the blob loader) has already
    /// validated it, and this re-checks rather than trusts.
    pub fn new(map: Arc<Mmap>, byte_off: usize, len: usize) -> I8View {
        let bytes = map.as_bytes();
        let end = byte_off.checked_add(len).expect("i8 view length overflow");
        assert!(end <= bytes.len(), "i8 view out of bounds");
        I8View { map, byte_off, len }
    }

    /// The i8 slice.
    pub fn as_slice(&self) -> &[i8] {
        let bytes = self.map.as_bytes();
        // SAFETY: the constructor checked that `byte_off..byte_off+len`
        // is in bounds of the map, the map lives as long as `self` via
        // the `Arc`, `i8` has alignment 1, and any byte is a valid i8.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(self.byte_off) as *const i8, self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("om-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write tmp file");
        path
    }

    #[test]
    fn maps_bytes_back_verbatim() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmp_file("verbatim.bin", &payload);
        let map = Mmap::open(&path).expect("open");
        assert_eq!(map.as_bytes(), &payload[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(map.is_mapped(), "expected a real mapping on linux/x86_64");
    }

    #[test]
    fn empty_file_yields_empty_view() {
        let path = tmp_file("empty.bin", &[]);
        let map = Mmap::open(&path).expect("open");
        assert!(map.as_bytes().is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::open(Path::new("/nonexistent/om-mmap-test")).is_err());
    }

    #[test]
    fn f32_view_roundtrips_written_values() {
        let vals: Vec<f32> = (0..257).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut bytes = vec![0u8; 8]; // 8-byte header keeps the view aligned
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp_file("f32s.bin", &bytes);
        let map = Arc::new(Mmap::open(&path).expect("open"));
        let view = F32View::new(map, 8, vals.len());
        assert_eq!(view.as_slice(), &vals[..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn f32_view_rejects_out_of_bounds() {
        let path = tmp_file("short.bin", &[0u8; 16]);
        let map = Arc::new(Mmap::open(&path).expect("open"));
        let _ = F32View::new(map, 8, 3);
    }
}
