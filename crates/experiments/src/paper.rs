//! The paper's reported numbers, transcribed from the EDBT 2025 text, so
//! every experiment binary can print measured-vs-paper side by side and
//! EXPERIMENTS.md can be regenerated mechanically.

/// Method order of Tables 2–3.
pub const METHODS: [&str; 7] = [
    "NGCF", "LIGHTGCN", "CMF", "EMCDR", "PTUPCDR", "HeroGraph", "Ours",
];

/// The six cross-domain scenarios of §5.1, `(source, target)`.
pub const SCENARIOS: [(&str, &str); 6] = [
    ("Books", "Movies"),
    ("Movies", "Books"),
    ("Books", "Music"),
    ("Music", "Books"),
    ("Movies", "Music"),
    ("Music", "Movies"),
];

/// One scenario row of Table 2/3: per-method RMSE and MAE plus the Δ%.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// RMSE per method, Table 2/3 order.
    pub rmse: [f32; 7],
    /// MAE per method.
    pub mae: [f32; 7],
    /// Reported improvement of Ours over the best competitor.
    pub delta_rmse_pct: f32,
    /// Reported MAE improvement.
    pub delta_mae_pct: f32,
}

/// Table 2 (Amazon), scenario order as in [`SCENARIOS`].
pub const TABLE2: [PaperRow; 6] = [
    PaperRow {
        rmse: [1.150, 1.124, 1.558, 1.166, 1.049, 1.118, 1.031],
        mae: [0.893, 0.870, 1.188, 0.903, 0.906, 0.861, 0.758],
        delta_rmse_pct: 1.7,
        delta_mae_pct: 12.0,
    },
    PaperRow {
        rmse: [1.180, 1.174, 1.747, 1.222, 1.215, 1.133, 1.035],
        mae: [0.958, 0.901, 1.319, 0.953, 0.946, 0.867, 0.787],
        delta_rmse_pct: 8.6,
        delta_mae_pct: 9.2,
    },
    PaperRow {
        rmse: [1.104, 1.102, 2.510, 1.167, 1.175, 1.026, 0.962],
        mae: [0.906, 0.828, 1.967, 0.920, 0.894, 0.815, 0.725],
        delta_rmse_pct: 6.2,
        delta_mae_pct: 11.0,
    },
    PaperRow {
        rmse: [1.180, 1.174, 1.641, 1.337, 1.300, 1.121, 1.038],
        mae: [0.958, 0.901, 1.266, 1.054, 1.015, 0.886, 0.821],
        delta_rmse_pct: 7.4,
        delta_mae_pct: 7.3,
    },
    PaperRow {
        rmse: [1.104, 1.102, 1.972, 1.095, 1.118, 1.101, 0.940],
        mae: [0.906, 0.828, 1.468, 0.829, 0.843, 0.798, 0.694],
        delta_rmse_pct: 14.6,
        delta_mae_pct: 13.0,
    },
    PaperRow {
        rmse: [1.150, 1.124, 1.972, 1.109, 1.118, 1.088, 1.026],
        mae: [0.893, 0.870, 1.068, 0.935, 0.908, 0.802, 0.785],
        delta_rmse_pct: 5.7,
        delta_mae_pct: 2.1,
    },
];

/// Table 3 (Douban), scenario order as in [`SCENARIOS`].
pub const TABLE3: [PaperRow; 6] = [
    PaperRow {
        rmse: [1.312, 1.296, 1.598, 1.416, 1.142, 1.131, 0.838],
        mae: [1.091, 1.055, 1.131, 1.008, 0.951, 0.894, 0.603],
        delta_rmse_pct: 25.9,
        delta_mae_pct: 32.6,
    },
    PaperRow {
        rmse: [1.412, 1.212, 2.602, 2.732, 2.820, 1.201, 0.919],
        mae: [1.121, 1.055, 1.900, 2.173, 2.732, 0.987, 0.727],
        delta_rmse_pct: 23.5,
        delta_mae_pct: 26.3,
    },
    PaperRow {
        rmse: [1.284, 1.237, 2.917, 2.908, 3.008, 1.212, 0.904],
        mae: [1.101, 1.002, 2.273, 2.351, 2.329, 0.979, 0.801],
        delta_rmse_pct: 25.4,
        delta_mae_pct: 18.2,
    },
    PaperRow {
        rmse: [1.412, 1.212, 3.034, 2.826, 3.036, 1.268, 0.914],
        mae: [1.121, 1.055, 2.341, 2.232, 2.284, 1.049, 0.780],
        delta_rmse_pct: 25.4,
        delta_mae_pct: 25.6,
    },
    PaperRow {
        rmse: [1.284, 1.237, 2.863, 2.802, 2.851, 1.226, 0.958],
        mae: [1.101, 1.002, 2.138, 2.210, 2.158, 0.988, 0.657],
        delta_rmse_pct: 21.9,
        delta_mae_pct: 33.5,
    },
    PaperRow {
        rmse: [1.312, 1.296, 1.869, 1.414, 1.377, 1.158, 0.873],
        mae: [1.091, 1.055, 1.289, 0.989, 0.941, 0.895, 0.687],
        delta_rmse_pct: 24.6,
        delta_mae_pct: 23.2,
    },
];

/// Table 4 scenarios (Amazon): Books→Movies, Movies→Music, Books→Music.
pub const TABLE4_SCENARIOS: [(&str, &str); 3] = [
    ("Books", "Movies"),
    ("Movies", "Music"),
    ("Books", "Music"),
];

/// Table 4 training-user fractions.
pub const TABLE4_FRACTIONS: [f32; 4] = [1.0, 0.8, 0.5, 0.2];

/// Table 4 reported values `[method][scenario][fraction]` for RMSE.
pub const TABLE4_RMSE: [[[f32; 4]; 3]; 3] = [
    // EMCDR
    [
        [1.166, 1.184, 1.197, 1.221],
        [1.095, 1.128, 1.154, 1.183],
        [1.167, 1.189, 1.192, 1.199],
    ],
    // PTUPCDR
    [
        [1.049, 1.066, 1.143, 1.225],
        [1.118, 1.150, 1.173, 1.209],
        [1.175, 1.183, 1.201, 1.254],
    ],
    // Ours
    [
        [1.031, 1.036, 1.041, 1.071],
        [0.940, 0.953, 0.973, 1.006],
        [0.962, 0.976, 0.991, 1.014],
    ],
];

/// Table 4 reported values `[method][scenario][fraction]` for MAE.
pub const TABLE4_MAE: [[[f32; 4]; 3]; 3] = [
    [
        [0.903, 0.906, 0.921, 0.944],
        [0.829, 0.859, 0.871, 0.885],
        [0.920, 0.945, 0.947, 0.954],
    ],
    [
        [0.906, 0.910, 0.924, 0.946],
        [0.843, 0.874, 0.884, 0.906],
        [0.894, 0.926, 0.941, 0.972],
    ],
    [
        [0.758, 0.791, 0.787, 0.812],
        [0.694, 0.706, 0.733, 0.756],
        [0.725, 0.822, 0.864, 0.876],
    ],
];

/// Table 5 variant names, in paper order.
pub const TABLE5_VARIANTS: [&str; 6] = [
    "w/o SCL",
    "w/o DA",
    "w/o Aux Reviews",
    "OmniMatch",
    "OmniMatch-ReviewText",
    "OmniMatch-BERT",
];

/// Table 5 scenarios (Amazon, 20 % training users).
pub const TABLE5_SCENARIOS: [(&str, &str); 3] = [
    ("Books", "Movies"),
    ("Books", "Music"),
    ("Movies", "Music"),
];

/// Table 5 reported `[variant][scenario]` RMSE. (The 0.548 MAE printed in
/// the paper's ReviewText row is reproduced verbatim from the text.)
pub const TABLE5_RMSE: [[f32; 3]; 6] = [
    [1.073, 1.029, 1.013],
    [1.075, 1.025, 1.011],
    [1.173, 1.034, 1.061],
    [1.068, 1.021, 1.006],
    [1.088, 1.080, 1.031],
    [1.174, 1.038, 1.077],
];

/// Table 5 reported `[variant][scenario]` MAE.
pub const TABLE5_MAE: [[f32; 3]; 6] = [
    [0.909, 0.902, 0.769],
    [0.905, 0.894, 0.764],
    [0.928, 0.896, 0.854],
    [0.901, 0.830, 0.756],
    [0.548, 0.856, 0.781],
    [0.917, 0.810, 0.836],
];

/// Table 6: training minutes `(full, w/o DA, w/o SCL)` for
/// Books→Music and Movies→Music.
pub const TABLE6_MINUTES: [(&str, &str, f32, f32, f32); 2] = [
    ("Books", "Music", 20.0, 16.0, 17.0),
    ("Movies", "Music", 24.0, 19.0, 20.0),
];

/// Figure 4 sweeps α ∈ {0.1..0.7} with β = 0.1 and β ∈ {0.1..0.7} with
/// α = 0.2 on Movies→Music; the paper's reported RMSE band.
pub const FIGURE4_VALUES: [f32; 7] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
/// RMSE band read off Figure 4(a).
pub const FIGURE4_RMSE_BAND: (f32, f32) = (0.938, 0.958);
/// MAE band read off Figure 4(b).
pub const FIGURE4_MAE_BAND: (f32, f32) = (0.68, 0.72);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_is_best_in_every_paper_row() {
        for row in TABLE2.iter().chain(&TABLE3) {
            let ours = row.rmse[6];
            assert!(row.rmse[..6].iter().all(|&r| ours < r), "{row:?}");
            let ours = row.mae[6];
            assert!(row.mae[..6].iter().all(|&m| ours < m), "{row:?}");
        }
    }

    #[test]
    fn delta_matches_best_competitor_rmse() {
        // recompute Δ% from the row and compare with the printed value
        for row in TABLE2.iter().chain(&TABLE3) {
            let best_other = row.rmse[..6].iter().cloned().fold(f32::INFINITY, f32::min);
            let delta = (best_other - row.rmse[6]) / best_other * 100.0;
            // NOTE: the paper's printed Δ% disagrees with its own row
            // values by up to ~0.8 points in one Douban row (Music→Books:
            // recomputing gives 24.6% where 25.4% is printed), so the
            // tolerance here is 1.0.
            assert!(
                (delta - row.delta_rmse_pct).abs() < 1.0,
                "computed {delta:.1} printed {}",
                row.delta_rmse_pct
            );
        }
    }

    #[test]
    fn table4_degrades_with_fewer_users() {
        // every method's RMSE is monotone non-decreasing as fraction drops
        for method in &TABLE4_RMSE {
            for scenario in method {
                for w in scenario.windows(2) {
                    assert!(w[1] >= w[0] - 1e-6, "{scenario:?}");
                }
            }
        }
    }

    #[test]
    fn table5_full_model_beats_ablations_on_rmse() {
        for (s, &full) in TABLE5_RMSE[3].iter().enumerate().take(3) {
            for v in [0, 1, 2, 4, 5] {
                assert!(full <= TABLE5_RMSE[v][s], "variant {v} scenario {s}");
            }
        }
    }
}
