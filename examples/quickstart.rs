//! Quickstart: train OmniMatch on a synthetic Books -> Movies scenario and
//! evaluate cold-start rating prediction.

use omnimatch::core::{OmniMatchConfig, Trainer};
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};

fn main() {
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    println!(
        "scenario {}: {} train users, {} test users, {} train interactions",
        scenario.name(),
        scenario.train_users.len(),
        scenario.test_users.len(),
        scenario.target_train.len()
    );
    let t0 = std::time::Instant::now();
    let trained = Trainer::new(OmniMatchConfig::default()).fit(&scenario);
    println!("trained in {:.1}s", t0.elapsed().as_secs_f64());
    for (i, e) in trained.report().epochs.iter().enumerate() {
        println!(
            "epoch {i}: total {:.4} rating {:.4} scl {:.4} domain {:.4}",
            e.total, e.rating, e.scl, e.domain
        );
    }
    let eval = trained.evaluate(&scenario.test_pairs());
    println!("cold-start test RMSE {:.3} MAE {:.3}", eval.rmse, eval.mae);

    // trivial baseline
    let mean = omnimatch::core::trainer::mean_rating_baseline(&scenario);
    let pairs: Vec<(f32, f32)> = scenario
        .test_pairs()
        .iter()
        .map(|it| (mean, it.rating.value()))
        .collect();
    println!(
        "global-mean baseline RMSE {:.3} MAE {:.3}",
        omnimatch::metrics::rmse(&pairs),
        omnimatch::metrics::mae(&pairs)
    );
}
