//! A small transformer encoder used as the drop-in feature extractor for the
//! paper's `OmniMatch-BERT` ablation row (Table 5).
//!
//! The paper found that a large contextual encoder *underperforms* the
//! TextCNN on short review summaries (overfitting, no locality prior). A
//! compact pre-norm encoder trained from scratch reproduces that qualitative
//! behaviour without a pretrained-checkpoint dependency (see DESIGN.md).

use om_tensor::{init, Rng, Tensor};

use crate::linear::Linear;
use crate::module::HasParams;

struct AttentionHead {
    wq: Linear,
    wk: Linear,
    wv: Linear,
}

struct EncoderLayer {
    heads: Vec<AttentionHead>,
    wo: Linear,
    ff1: Linear,
    ff2: Linear,
    ln1_gain: Tensor,
    ln1_bias: Tensor,
    ln2_gain: Tensor,
    ln2_bias: Tensor,
}

impl EncoderLayer {
    fn new(dim: usize, n_heads: usize, ff_dim: usize, rng: &mut Rng) -> EncoderLayer {
        assert!(dim.is_multiple_of(n_heads), "dim must divide by head count");
        let head_dim = dim / n_heads;
        EncoderLayer {
            heads: (0..n_heads)
                .map(|_| AttentionHead {
                    wq: Linear::xavier(dim, head_dim, rng),
                    wk: Linear::xavier(dim, head_dim, rng),
                    wv: Linear::xavier(dim, head_dim, rng),
                })
                .collect(),
            wo: Linear::xavier(dim, dim, rng),
            ff1: Linear::new(dim, ff_dim, rng),
            ff2: Linear::xavier(ff_dim, dim, rng),
            ln1_gain: Tensor::ones(&[dim]).requires_grad(),
            ln1_bias: Tensor::zeros(&[dim]).requires_grad(),
            ln2_gain: Tensor::ones(&[dim]).requires_grad(),
            ln2_bias: Tensor::zeros(&[dim]).requires_grad(),
        }
    }

    fn layer_norm(x: &Tensor, gain: &Tensor, bias: &Tensor) -> Tensor {
        x.layer_norm_rows().mul_row(gain).add_row(bias)
    }

    /// Pre-norm encoder layer over one sequence `[len, dim]`.
    fn forward(&self, x: &Tensor) -> Tensor {
        let head_dim = self.heads[0].wq.out_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let normed = Self::layer_norm(x, &self.ln1_gain, &self.ln1_bias);
        let head_outputs: Vec<Tensor> = self
            .heads
            .iter()
            .map(|h| {
                let q = h.wq.forward(&normed);
                let k = h.wk.forward(&normed);
                let v = h.wv.forward(&normed);
                let attn = q.matmul(&k.transpose()).scale(scale).softmax_rows();
                attn.matmul(&v) // [len, head_dim]
            })
            .collect();
        let refs: Vec<&Tensor> = head_outputs.iter().collect();
        let mha = self.wo.forward(&Tensor::concat_cols(&refs));
        let x = x.add(&mha);
        let normed2 = Self::layer_norm(&x, &self.ln2_gain, &self.ln2_bias);
        let ff = self.ff2.forward(&self.ff1.forward(&normed2).relu());
        x.add(&ff)
    }
}

impl HasParams for EncoderLayer {
    fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self
            .heads
            .iter()
            .flat_map(|h| {
                [h.wq.params(), h.wk.params(), h.wv.params()]
                    .into_iter()
                    .flatten()
            })
            .collect();
        p.extend(self.wo.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p.extend([
            self.ln1_gain.clone(),
            self.ln1_bias.clone(),
            self.ln2_gain.clone(),
            self.ln2_bias.clone(),
        ]);
        p
    }
}

/// A compact BERT-style encoder: learned positional embeddings, `n` pre-norm
/// self-attention layers, mean pooling over time.
pub struct TransformerEncoder {
    dim: usize,
    max_len: usize,
    pos_emb: Tensor,
    layers: Vec<EncoderLayer>,
}

impl TransformerEncoder {
    /// Build an encoder for sequences up to `max_len` tokens of width `dim`.
    pub fn new(
        dim: usize,
        n_heads: usize,
        ff_dim: usize,
        n_layers: usize,
        max_len: usize,
        rng: &mut Rng,
    ) -> TransformerEncoder {
        assert!(n_layers >= 1, "need at least one encoder layer");
        TransformerEncoder {
            dim,
            max_len,
            pos_emb: init::normal(&[max_len, dim], 0.02, rng).requires_grad(),
            layers: (0..n_layers)
                .map(|_| EncoderLayer::new(dim, n_heads, ff_dim, rng))
                .collect(),
        }
    }

    /// Output width (same as input embedding width).
    pub fn out_dim(&self) -> usize {
        self.dim
    }

    /// Encode a batch of embedded documents `[batch, len, dim]` into pooled
    /// features `[batch, dim]`.
    pub fn forward(&self, embedded: &Tensor) -> Tensor {
        let dims = embedded.dims();
        assert_eq!(dims.len(), 3, "TransformerEncoder expects [batch, len, dim]");
        let (b, l, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.dim, "embedding width mismatch");
        assert!(l <= self.max_len, "sequence longer than max_len");
        let flat = embedded.reshape(&[b * l, d]);
        let positions: Vec<usize> = (0..l).collect();
        let pos = self.pos_emb.embedding_lookup(&positions); // [l, d]
        let pooled: Vec<Tensor> = (0..b)
            .map(|bi| {
                let rows: Vec<usize> = (bi * l..(bi + 1) * l).collect();
                let mut x = flat.select_rows(&rows).add(&pos);
                for layer in &self.layers {
                    x = layer.forward(&x);
                }
                x.mean_rows() // [d]
            })
            .collect();
        let refs: Vec<&Tensor> = pooled.iter().collect();
        Tensor::stack_rows(&refs)
    }
}

impl HasParams for TransformerEncoder {
    fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.pos_emb.clone()];
        p.extend(self.layers.iter().flat_map(|l| l.params()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn output_shape() {
        let mut rng = seeded_rng(1);
        let enc = TransformerEncoder::new(8, 2, 16, 2, 10, &mut rng);
        let x = om_tensor::init::normal(&[3, 6, 8], 1.0, &mut rng);
        let y = enc.forward(&x);
        assert_eq!(y.dims(), &[3, 8]);
        assert_eq!(enc.out_dim(), 8);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = seeded_rng(2);
        let enc = TransformerEncoder::new(4, 2, 8, 1, 6, &mut rng);
        let x = om_tensor::init::normal(&[2, 4, 4], 1.0, &mut rng).requires_grad();
        enc.forward(&x).square().mean_all().backward();
        for p in enc.params() {
            assert!(p.grad_vec().is_some(), "missing grad");
        }
        assert!(x.grad_vec().is_some());
    }

    #[test]
    fn samples_are_independent() {
        // Changing sample 1 must not change sample 0's encoding.
        let mut rng = seeded_rng(3);
        let enc = TransformerEncoder::new(4, 1, 8, 1, 6, &mut rng);
        let base = om_tensor::init::normal(&[2, 3, 4], 1.0, &mut seeded_rng(4));
        let y0 = enc.forward(&base).to_vec()[..4].to_vec();
        let mut altered = base.to_vec();
        for v in altered[12..].iter_mut() {
            *v += 5.0;
        }
        let altered = Tensor::from_vec(altered, &[2, 3, 4]);
        let y0_after = enc.forward(&altered).to_vec()[..4].to_vec();
        assert_eq!(y0, y0_after);
    }

    #[test]
    fn position_matters() {
        // Swapping token order must change the encoding (positional signal).
        let mut rng = seeded_rng(5);
        let enc = TransformerEncoder::new(4, 1, 8, 1, 6, &mut rng);
        let a = om_tensor::init::normal(&[1, 2, 4], 1.0, &mut seeded_rng(6));
        let av = a.to_vec();
        let mut swapped = av[4..8].to_vec();
        swapped.extend_from_slice(&av[0..4]);
        let b = Tensor::from_vec(swapped, &[1, 2, 4]);
        let ya = enc.forward(&a).to_vec();
        let yb = enc.forward(&b).to_vec();
        assert_ne!(ya, yb);
    }

    #[test]
    #[should_panic(expected = "longer than max_len")]
    fn overlong_sequence_panics() {
        let mut rng = seeded_rng(7);
        let enc = TransformerEncoder::new(4, 1, 8, 1, 3, &mut rng);
        let x = Tensor::zeros(&[1, 5, 4]);
        let _ = enc.forward(&x);
    }
}
