//! Regenerates the **§5.10 case study**: a full trace of the auxiliary
//! reviews generation process for one cold-start user in the Books→Movies
//! scenario — which source items they rated, which like-minded users were
//! found, and which target-domain reviews were donated — followed by the
//! ground-truth reviews the user actually wrote in the target domain.

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_data::types::TextField;
use om_tensor::seeded_rng;
use omnimatch_core::AuxiliaryReviewGenerator;

fn main() {
    let _run = om_obs::run_scope("case_study");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let generator = AuxiliaryReviewGenerator::new(&scenario);
    let mut rng = seeded_rng(2025);

    // pick the test user with the richest source history, like the paper's
    // AKOHBSPLTYBYZ example
    let user = *scenario
        .test_users
        .iter()
        .max_by_key(|&&u| scenario.source.user_degree(u))
        .expect("scenario has test users");
    println!("=== §5.10 case study: cold-start user {user} (Books -> Movies) ===\n");

    let doc = generator.generate(user, TextField::Summary, &mut rng);
    for (i, step) in doc.steps.iter().enumerate() {
        println!("({}) Item in source domain: {}", i + 1, step.source_item);
        println!(
            "    Cold-start user's rating and review in the source domain: {}, {:?}",
            step.rating, step.source_review
        );
        println!(
            "    Like-minded user: {} (both ratings: {}; pool of {} candidates)",
            step.chosen_user, step.rating, step.like_minded_pool
        );
        println!(
            "    Auxiliary review chosen from the like-minded user in the target domain: {:?}\n",
            step.aux_review
        );
    }

    println!(
        "Final auxiliary reviews document:\n  \"{}\"\n",
        doc.concatenated()
    );

    println!("Ground-truth reviews of {user} in the target domain (hidden from the model):");
    for it in scenario.target_full.user_records(user) {
        println!("  {}: {:?} ({})", it.item, it.summary, it.rating);
    }
}
