//! # om-text
//!
//! Text plumbing for review-based recommendation: preprocessing exactly as
//! the paper describes (§5.2 — lowercase, punctuation removal), vocabulary
//! construction, fixed-length document encoding with the `<sp>` review
//! separator of §5.10, and two embedding warm-start strategies that stand in
//! for the paper's pretrained fastText vectors (see DESIGN.md):
//! deterministic subword-hash initialisation and skip-gram-with-negative-
//! sampling pretraining on the in-repo corpus.

pub mod doc;
pub mod preprocess;
pub mod pretrain;
pub mod vocab;

pub use doc::{DocumentEncoder, SEPARATOR};
pub use preprocess::{normalize, tokenize};
pub use vocab::{Vocab, PAD_TOKEN, UNK_TOKEN};
