//! Property-based tests for `om-tensor`: algebraic identities and
//! finite-difference gradient checks over randomised inputs.

use om_tensor::{gradcheck, init, seeded_rng, Tensor};
use proptest::prelude::*;

const TOL: f32 = 3e-2;
const EPS: f32 = 1e-2;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in vec_strategy(12), b in vec_strategy(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        prop_assert_eq!(ta.add(&tb).to_vec(), tb.add(&ta).to_vec());
    }

    #[test]
    fn mul_distributes_over_add(a in vec_strategy(8), b in vec_strategy(8), c in vec_strategy(8)) {
        let ta = Tensor::from_vec(a, &[8]);
        let tb = Tensor::from_vec(b, &[8]);
        let tc = Tensor::from_vec(c, &[8]);
        let lhs = ta.mul(&tb.add(&tc)).to_vec();
        let rhs = ta.mul(&tb).add(&ta.mul(&tc)).to_vec();
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involution(a in vec_strategy(20)) {
        let t = Tensor::from_vec(a.clone(), &[4, 5]);
        prop_assert_eq!(t.transpose().transpose().to_vec(), a);
    }

    #[test]
    fn matmul_identity(a in vec_strategy(9)) {
        let t = Tensor::from_vec(a.clone(), &[3, 3]);
        let eye = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let out = t.matmul(&eye).to_vec();
        for (x, y) in out.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in vec_strategy(15)) {
        let t = Tensor::from_vec(a, &[3, 5]);
        let s = t.softmax_rows().to_vec();
        for row in 0..3 {
            let sum: f32 = s[row * 5..(row + 1) * 5].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s[row * 5..(row + 1) * 5].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn l2_rows_have_unit_norm(a in vec_strategy(12)) {
        let t = Tensor::from_vec(a.clone(), &[3, 4]);
        let y = t.l2_normalize_rows().to_vec();
        for row in 0..3 {
            let input_norm: f32 = a[row * 4..(row + 1) * 4].iter().map(|x| x * x).sum::<f32>().sqrt();
            let n: f32 = y[row * 4..(row + 1) * 4].iter().map(|x| x * x).sum::<f32>().sqrt();
            if input_norm > 1e-3 {
                prop_assert!((n - 1.0).abs() < 1e-4, "row {} norm {}", row, n);
            }
        }
    }

    #[test]
    fn sum_all_matches_reference(a in vec_strategy(24)) {
        let t = Tensor::from_vec(a.clone(), &[2, 3, 4]);
        let reference: f32 = a.iter().sum();
        prop_assert!((t.sum_all().item() - reference).abs() < 1e-3);
    }

    #[test]
    fn max_over_time_bounds(a in vec_strategy(24)) {
        let t = Tensor::from_vec(a.clone(), &[2, 3, 4]);
        let m = t.max_over_time().to_vec();
        for (i, &v) in m.iter().enumerate() {
            let b = i / 4;
            let f = i % 4;
            let col: Vec<f32> = (0..3).map(|ti| a[(b * 3 + ti) * 4 + f]).collect();
            let max = col.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(v, max);
        }
    }

    #[test]
    fn gradcheck_random_mlp(seed in 0u64..500) {
        let w = init::uniform(&[4, 3], -1.0, 1.0, &mut seeded_rng(seed)).requires_grad();
        let x = init::uniform(&[2, 4], -1.0, 1.0, &mut seeded_rng(seed + 1));
        let r = gradcheck(&w, |w| x.matmul(w).relu().square().mean_all(), EPS);
        // ReLU kinks make finite differences noisy when the true gradient is
        // tiny; accept a small absolute error in that regime.
        prop_assert!(
            r.passes(TOL) || (r.analytic - r.numeric).abs() < 1e-3,
            "{:?}", r
        );
    }

    #[test]
    fn gradcheck_random_softmax_pipeline(seed in 0u64..500) {
        let w = init::uniform(&[3, 4], -1.0, 1.0, &mut seeded_rng(seed)).requires_grad();
        let x = init::uniform(&[2, 3], -1.0, 1.0, &mut seeded_rng(seed * 31 + 7));
        let r = gradcheck(&w, |w| x.matmul(w).cross_entropy(&[1, 2]), EPS);
        prop_assert!(r.passes(TOL), "{:?}", r);
    }

    #[test]
    fn gradient_reversal_negates_exactly(seed in 0u64..200, lambda in 0.01f32..2.0) {
        let w = init::uniform(&[6], -1.0, 1.0, &mut seeded_rng(seed)).requires_grad();
        let y = w.gradient_reversal(lambda).sum_all();
        y.backward();
        let g = w.grad_vec().unwrap();
        for v in g {
            prop_assert!((v + lambda).abs() < 1e-6);
        }
    }
}
