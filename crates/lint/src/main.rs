//! `om-lint` binary: lint the workspace, exit non-zero on violations.
//!
//! Usage: `cargo lint` (alias), `cargo run -p om-lint -- [ROOT]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // crates/lint/ → workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("om-lint manifest has a workspace root")
            .to_path_buf()
    });
    let report = om_lint::lint_repo(&root);
    if report.violations.is_empty() {
        println!("om-lint: clean ({} files checked)", report.files);
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "om-lint: {} violation(s) in {} files checked",
            report.violations.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}
