//! The OmniMatch network (Fig. 2, components B–D):
//!
//! * shared-private feature extraction (§4.2): per-domain backbones with
//!   *private* (domain-specific) heads and one *shared* (domain-invariant)
//!   head whose weights are common to the source and target extractors;
//! * the contrastive projection head `Proj(·)` (Eq. 11);
//! * the gradient-reversal domain classifiers (Eqs. 14–17) — the invariant
//!   features pass through a GRL so the extractor is trained to *confuse*
//!   the domain classifier, while the specific features are classified
//!   normally so they stay genuinely domain-specific (the shared-private
//!   paradigm of Bousmalis et al.);
//! * the rating classifier over `r_target ⊕ r_item` (Eqs. 18–19).

use om_data::types::Rating;
use om_nn::{Dropout, Embedding, HasParams, Linear, Mlp, TextCnn, TransformerEncoder};
use om_tensor::{Rng, Tensor};

use crate::config::{ExtractorKind, OmniMatchConfig};

/// Which side of the cross-domain pair a user document comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainSide {
    /// The source domain (label 0 for the domain classifiers).
    Source,
    /// The target domain (label 1).
    Target,
}

impl DomainSide {
    /// Class label for the domain classifiers.
    pub fn label(self) -> usize {
        match self {
            DomainSide::Source => 0,
            DomainSide::Target => 1,
        }
    }
}

/// Text backbone: TextCNN (paper default) or transformer (`OmniMatch-BERT`).
enum Backbone {
    Cnn(TextCnn),
    Transformer(TransformerEncoder),
}

impl Backbone {
    fn build(cfg: &OmniMatchConfig, rng: &mut Rng) -> Backbone {
        match cfg.extractor {
            ExtractorKind::TextCnn => Backbone::Cnn(TextCnn::new(
                cfg.emb_dim,
                &cfg.kernel_widths,
                cfg.filters,
                rng,
            )),
            ExtractorKind::Transformer => Backbone::Transformer(TransformerEncoder::new(
                cfg.emb_dim,
                2,
                cfg.emb_dim * 2,
                1,
                cfg.doc_len,
                rng,
            )),
        }
    }

    fn out_dim(&self) -> usize {
        match self {
            Backbone::Cnn(c) => c.out_dim(),
            Backbone::Transformer(t) => t.out_dim(),
        }
    }

    fn forward(&self, embedded: &Tensor) -> Tensor {
        match self {
            Backbone::Cnn(c) => c.forward(embedded),
            Backbone::Transformer(t) => t.forward(embedded),
        }
    }

    fn params(&self) -> Vec<Tensor> {
        match self {
            Backbone::Cnn(c) => c.params(),
            Backbone::Transformer(t) => t.params(),
        }
    }
}

/// The extracted user features of one domain (Eqs. 8–10).
pub struct UserFeatures {
    /// Domain-invariant representation `r_invariant` (shared head).
    pub invariant: Tensor,
    /// Domain-specific representation `r_specific` (private head).
    pub specific: Tensor,
    /// `r = r_invariant ⊕ r_specific` (Eq. 10).
    pub combined: Tensor,
}

/// The full OmniMatch network.
pub struct OmniMatchModel {
    cfg: OmniMatchConfig,
    /// Shared token embedding (stands in for the paper's fastText input).
    pub embedding: Embedding,
    src_backbone: Backbone,
    tgt_backbone: Backbone,
    item_backbone: Backbone,
    /// Shared domain-invariant head — identical weights for source and
    /// target, the crux of §4.2.
    shared_invariant: Linear,
    src_specific: Linear,
    tgt_specific: Linear,
    item_head: Linear,
    proj: Mlp,
    domain_clf_invariant: Mlp,
    domain_clf_specific: Mlp,
    rating_clf: Mlp,
    dropout: Dropout,
}

impl OmniMatchModel {
    /// Initialise all parameters. `embedding_init` may carry a pretrained
    /// table (subword-hash / skip-gram); pass `None` for random init.
    pub fn new(cfg: &OmniMatchConfig, vocab_size: usize, embedding_init: Option<Tensor>, rng: &mut Rng) -> OmniMatchModel {
        cfg.validate();
        let embedding = match embedding_init {
            Some(t) => {
                assert_eq!(t.dims(), &[vocab_size, cfg.emb_dim], "bad embedding init shape");
                Embedding::from_table(t)
            }
            None => Embedding::new(vocab_size, cfg.emb_dim, rng),
        };
        let src_backbone = Backbone::build(cfg, rng);
        let tgt_backbone = Backbone::build(cfg, rng);
        let item_backbone = Backbone::build(cfg, rng);
        let feat = src_backbone.out_dim();
        let user_dim = cfg.invariant_dim + cfg.specific_dim;
        let pair_dim = user_dim + cfg.item_dim;
        OmniMatchModel {
            embedding,
            shared_invariant: Linear::new(feat, cfg.invariant_dim, rng),
            src_specific: Linear::new(feat, cfg.specific_dim, rng),
            tgt_specific: Linear::new(feat, cfg.specific_dim, rng),
            item_head: Linear::new(feat, cfg.item_dim, rng),
            proj: Mlp::new(&[pair_dim, pair_dim, cfg.proj_dim], cfg.dropout, rng),
            domain_clf_invariant: Mlp::new(
                &[cfg.invariant_dim, cfg.invariant_dim, 2],
                cfg.dropout,
                rng,
            ),
            domain_clf_specific: Mlp::new(
                &[cfg.specific_dim, cfg.specific_dim, 2],
                cfg.dropout,
                rng,
            ),
            rating_clf: Mlp::new(
                &[pair_dim, pair_dim, Rating::CLASSES],
                cfg.dropout,
                rng,
            ),
            dropout: Dropout::new(cfg.dropout),
            src_backbone,
            tgt_backbone,
            item_backbone,
            cfg: cfg.clone(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &OmniMatchConfig {
        &self.cfg
    }

    /// Embed a batch of equal-length documents → `[batch, len, emb]`.
    pub fn embed_docs(&self, docs: &[&[usize]]) -> Tensor {
        assert!(!docs.is_empty(), "embed_docs: empty batch");
        let len = docs[0].len();
        let flat: Vec<usize> = docs
            .iter()
            .flat_map(|d| {
                assert_eq!(d.len(), len, "embed_docs: ragged documents");
                d.iter().copied()
            })
            .collect();
        self.embedding
            .forward(&flat)
            .reshape(&[docs.len(), len, self.cfg.emb_dim])
    }

    /// Extract user features from documents of one domain (Eqs. 4–10).
    pub fn user_features(
        &self,
        docs: &[&[usize]],
        side: DomainSide,
        training: bool,
        rng: &mut Rng,
    ) -> UserFeatures {
        let embedded = self.embed_docs(docs);
        let (backbone, specific_head) = match side {
            DomainSide::Source => (&self.src_backbone, &self.src_specific),
            DomainSide::Target => (&self.tgt_backbone, &self.tgt_specific),
        };
        let pooled = backbone.forward(&embedded);
        let invariant = self.dropout.forward(
            &self.shared_invariant.forward(&pooled).relu(),
            training,
            rng,
        );
        let specific =
            self.dropout
                .forward(&specific_head.forward(&pooled).relu(), training, rng);
        let combined = Tensor::concat_cols(&[&invariant, &specific]);
        UserFeatures {
            invariant,
            specific,
            combined,
        }
    }

    /// Incremental user-tower encode entry point: combined target-side
    /// feature rows (`[docs.len(), invariant_dim + specific_dim]`,
    /// row-major) for already-encoded target documents, under
    /// [`om_nn::inference_mode`] with nothing drawn from any RNG.
    ///
    /// This is the *one* code path all serving-side user rows flow
    /// through — the offline `UserArena` precompute, the cold per-request
    /// tower pass, and the online re-encode of a graduating user — so the
    /// bitwise-parity contract between them reduces to the kernels'
    /// row-independence, which `tests/` pin. Callers that batch documents
    /// may chunk freely: each row depends only on its own document.
    pub fn user_target_rows(&self, docs: &[&[usize]]) -> Vec<f32> {
        let _mode = om_nn::inference_mode();
        // Never drawn from under inference mode; the signature demands one.
        let mut rng = om_tensor::seeded_rng(0);
        self.user_features(docs, DomainSide::Target, false, &mut rng)
            .combined
            .data()
            .to_vec()
    }

    /// Extract item features (§4.2: items use only the shared-style head).
    pub fn item_features(&self, docs: &[&[usize]], training: bool, rng: &mut Rng) -> Tensor {
        let embedded = self.embed_docs(docs);
        let pooled = self.item_backbone.forward(&embedded);
        self.dropout
            .forward(&self.item_head.forward(&pooled).relu(), training, rng)
    }

    /// Project a `r_user ⊕ r_item` pair batch for contrastive learning
    /// (Eq. 11).
    pub fn project_pairs(
        &self,
        user: &Tensor,
        item: &Tensor,
        training: bool,
        rng: &mut Rng,
    ) -> Tensor {
        let pair = Tensor::concat_cols(&[user, item]);
        self.proj.forward(&pair, training, rng)
    }

    /// Rating logits for `r_target ⊕ r_item` (Eq. 18).
    pub fn rating_logits(
        &self,
        user_target: &Tensor,
        item: &Tensor,
        training: bool,
        rng: &mut Rng,
    ) -> Tensor {
        let pair = Tensor::concat_cols(&[user_target, item]);
        self.rating_clf.forward(&pair, training, rng)
    }

    /// Rating logits for pre-assembled `r_target ⊕ r_item` rows. The
    /// serving path builds its microbatch × item-arena cross join with
    /// `om_tensor::kernels::pair_rows` and scores it here in one pass;
    /// because [`Tensor::concat_cols`] only copies, this is bitwise
    /// identical to [`OmniMatchModel::rating_logits`] over the same rows.
    pub fn rating_logits_from_pairs(
        &self,
        pairs: &Tensor,
        training: bool,
        rng: &mut Rng,
    ) -> Tensor {
        self.rating_clf.forward(pairs, training, rng)
    }

    /// Domain logits for *invariant* features, behind the gradient
    /// reversal layer (Eqs. 14–15 + GRL of §4.4).
    pub fn domain_logits_invariant(
        &self,
        invariant: &Tensor,
        training: bool,
        rng: &mut Rng,
    ) -> Tensor {
        let reversed = invariant.gradient_reversal(self.cfg.grl_lambda);
        self.domain_clf_invariant.forward(&reversed, training, rng)
    }

    /// Domain logits for *specific* features, trained normally
    /// (Eqs. 16–17).
    pub fn domain_logits_specific(
        &self,
        specific: &Tensor,
        training: bool,
        rng: &mut Rng,
    ) -> Tensor {
        self.domain_clf_specific.forward(specific, training, rng)
    }

    /// Convert rating logits into expected star values
    /// `ŷ = Σ_k (k+1)·p_k` — the scalar predictions scored by RMSE/MAE.
    pub fn expected_stars(logits: &Tensor) -> Vec<f32> {
        let probs = logits.softmax_rows();
        let (m, n) = probs.shape().as_2d();
        debug_assert_eq!(n, Rating::CLASSES);
        let d = probs.data();
        (0..m)
            .map(|i| {
                (0..n)
                    .map(|k| d[i * n + k] * (k + 1) as f32)
                    // om-lint: reduction-ok(serial sum over the 5 rating
                    // classes in fixed k order, per row — deterministic)
                    .sum()
            })
            .collect()
    }
}

impl HasParams for OmniMatchModel {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.embedding.params();
        p.extend(self.src_backbone.params());
        p.extend(self.tgt_backbone.params());
        p.extend(self.item_backbone.params());
        p.extend(self.shared_invariant.params());
        p.extend(self.src_specific.params());
        p.extend(self.tgt_specific.params());
        p.extend(self.item_head.params());
        p.extend(self.proj.params());
        p.extend(self.domain_clf_invariant.params());
        p.extend(self.domain_clf_specific.params());
        p.extend(self.rating_clf.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    fn model() -> (OmniMatchModel, om_tensor::Rng) {
        let cfg = OmniMatchConfig::fast();
        let mut rng = seeded_rng(1);
        let m = OmniMatchModel::new(&cfg, 100, None, &mut rng);
        (m, rng)
    }

    fn docs(n: usize, len: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| (0..len).map(|j| (i * 7 + j) % 100).collect()).collect()
    }

    #[test]
    fn feature_shapes() {
        let (m, mut rng) = model();
        let d = docs(4, 16);
        let refs: Vec<&[usize]> = d.iter().map(Vec::as_slice).collect();
        let f = m.user_features(&refs, DomainSide::Source, false, &mut rng);
        assert_eq!(f.invariant.dims(), &[4, 12]);
        assert_eq!(f.specific.dims(), &[4, 12]);
        assert_eq!(f.combined.dims(), &[4, 24]);
        let item = m.item_features(&refs, false, &mut rng);
        assert_eq!(item.dims(), &[4, 12]);
        let logits = m.rating_logits(&f.combined, &item, false, &mut rng);
        assert_eq!(logits.dims(), &[4, 5]);
        let proj = m.project_pairs(&f.combined, &item, false, &mut rng);
        assert_eq!(proj.dims(), &[4, 12]);
    }

    #[test]
    fn shared_head_is_actually_shared() {
        let (m, mut rng) = model();
        let d = docs(2, 16);
        let refs: Vec<&[usize]> = d.iter().map(Vec::as_slice).collect();
        // gradient through the source path must hit the same shared tensor
        let f = m.user_features(&refs, DomainSide::Source, false, &mut rng);
        f.invariant.sum_all().backward();
        assert!(m.shared_invariant.weight.grad_vec().is_some());
        m.zero_grad();
        let f = m.user_features(&refs, DomainSide::Target, false, &mut rng);
        f.combined.sum_all().backward();
        assert!(
            m.shared_invariant.weight.grad_vec().is_some(),
            "target path must flow through the shared invariant head"
        );
        // and private heads stay private: the source head is untouched by
        // a target-side pass, while the target head receives gradient
        assert!(m.src_specific.weight.grad_vec().is_none());
        assert!(m.tgt_specific.weight.grad_vec().is_some());
    }

    #[test]
    fn grl_reverses_feature_gradients() {
        let (m, mut rng) = model();
        let d = docs(2, 16);
        let refs: Vec<&[usize]> = d.iter().map(Vec::as_slice).collect();

        // Through the GRL, the gradient wrt the invariant features must be
        // the exact negative of the same loss taken without the GRL.
        let f = m.user_features(&refs, DomainSide::Source, false, &mut rng);
        let inv = f.invariant.detach().requires_grad();
        let logits = m.domain_logits_invariant(&inv, false, &mut seeded_rng(9));
        logits.cross_entropy(&[0, 0]).backward();
        let with_grl = inv.grad_vec().unwrap();

        let inv2 = f.invariant.detach().requires_grad();
        let logits2 = m
            .domain_clf_invariant
            .forward(&inv2, false, &mut seeded_rng(9));
        logits2.cross_entropy(&[0, 0]).backward();
        let without = inv2.grad_vec().unwrap();

        for (a, b) in with_grl.iter().zip(&without) {
            assert!((a + b).abs() < 1e-6, "GRL must negate: {a} vs {b}");
        }
    }

    #[test]
    fn expected_stars_bounds() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 0.0,
                                           0.0, 0.0, 0.0, 0.0, 100.0], &[2, 5]);
        let stars = OmniMatchModel::expected_stars(&logits);
        assert!((stars[0] - 1.0).abs() < 1e-3);
        assert!((stars[1] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn transformer_backbone_builds() {
        let cfg = OmniMatchConfig::fast().with_transformer();
        let mut rng = seeded_rng(2);
        let m = OmniMatchModel::new(&cfg, 50, None, &mut rng);
        let d = docs(2, 16);
        let refs: Vec<&[usize]> = d.iter().map(Vec::as_slice).collect();
        let f = m.user_features(&refs, DomainSide::Target, false, &mut rng);
        assert_eq!(f.combined.dims(), &[2, 24]);
    }

    #[test]
    fn param_count_is_substantial_and_stable() {
        let (m, _) = model();
        let n = m.num_params();
        let (m2, _) = model();
        assert_eq!(n, m2.num_params());
        assert!(n > 1000, "suspiciously few parameters: {n}");
    }

    #[test]
    fn pretrained_embedding_is_used() {
        let cfg = OmniMatchConfig::fast();
        let mut rng = seeded_rng(3);
        let table = Tensor::full(&[100, cfg.emb_dim], 0.5);
        let m = OmniMatchModel::new(&cfg, 100, Some(table), &mut rng);
        assert_eq!(m.embedding.table.to_vec()[0], 0.5);
    }
}
