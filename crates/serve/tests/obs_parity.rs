//! Telemetry must be invisible in the results: serving with observability
//! enabled is **bitwise identical** to serving with it disabled. The
//! instrumentation only reads clocks and bumps atomics — it never draws
//! from an RNG, reorders work, or touches a tensor — so this is the
//! serving twin of `crates/core/tests/determinism.rs`.

use std::sync::mpsc::channel;
use std::time::Duration;

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{
    BatchScorer, Frontend, FrontendOptions, Request, Response, ServeEngine, ServeError,
    ServeOptions, ShardedEngine,
};
use omnimatch_core::{OmniMatchConfig, Trainer};

fn assert_bitwise_equal(a: &[Response], b: &[Response]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.user, y.user);
        assert_eq!(x.top.len(), y.top.len());
        for ((ia, sa), (ib, sb)) in x.top.iter().zip(&y.top) {
            assert_eq!(ia, ib, "item mismatch for user {:?}", x.user);
            assert_eq!(
                sa.to_bits(),
                sb.to_bits(),
                "score bits differ for user {:?} item {:?}",
                x.user,
                ia
            );
        }
    }
}

#[test]
fn observability_does_not_perturb_serving() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(31)).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    let reqs: Vec<Request> = users
        .iter()
        .enumerate()
        .map(|(i, &u)| Request { id: i as u64, user: u, arrive_us: 0 })
        .collect();

    let prev = om_obs::set_enabled(true);
    let on = engine.serve_batch(&reqs).expect("serve with telemetry on");
    om_obs::set_enabled(false);
    let off = engine.serve_batch(&reqs).expect("serve with telemetry off");
    assert_bitwise_equal(&on, &off);

    // Same through the sharded path (its own stage recording).
    let sharded = ShardedEngine::new(engine);
    om_obs::set_enabled(true);
    let on = sharded.serve_batch(&reqs).expect("sharded, telemetry on");
    om_obs::set_enabled(false);
    let off = sharded.serve_batch(&reqs).expect("sharded, telemetry off");
    om_obs::set_enabled(prev);
    assert_bitwise_equal(&on, &off);
}

/// A deterministic stub scorer: responses are a pure function of the
/// request, so any on/off difference through the *front-end* path (the
/// stamping, the histograms, the flight-recorder pushes) would show.
struct EchoScorer;

impl BatchScorer for EchoScorer {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        Ok(reqs
            .iter()
            .map(|r| Response {
                id: r.id,
                user: r.user,
                top: vec![(om_data::types::ItemId(r.id as u32), r.id as f32 * 0.5)],
            })
            .collect())
    }
}

fn run_frontend_stream(n: u64) -> Vec<Response> {
    let (resp_tx, resp_rx) = channel();
    // om-lint: allow(thread-spawn) — spawning the front-end under test.
    let fe = Frontend::spawn(
        || EchoScorer,
        FrontendOptions { queue_cap: 64, batch: 4, wait_us: 100 },
        resp_tx,
    )
    .expect("spawn front-end");
    let handle = fe.handle();
    for id in 0..n {
        // The queue is larger than the stream; every submit must land.
        while handle.try_send(Request { id, user: UserId(id as u32), arrive_us: 0 }).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, n);
    let mut out: Vec<Response> = resp_rx.iter().collect();
    out.sort_by_key(|r| r.id);
    out
}

#[test]
fn frontend_telemetry_does_not_perturb_responses() {
    let prev = om_obs::set_enabled(true);
    let on = run_frontend_stream(40);
    om_obs::set_enabled(false);
    let off = run_frontend_stream(40);
    om_obs::set_enabled(prev);
    assert_bitwise_equal(&on, &off);
}
