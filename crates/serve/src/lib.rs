//! # om-serve
//!
//! Batched inference serving for trained OmniMatch checkpoints — the
//! first end-to-end *read* path through the stack, and the deployment
//! shape the paper's cold-start scenario implies: a new user arrives in
//! the target domain, and the system must rank the full target catalogue
//! for them, now.
//!
//! Pipeline:
//!
//! 1. [`loader`] — rebuild the model from an OMCK v2 checkpoint (either a
//!    trainer epoch checkpoint or [`export_checkpoint`]'s minimal file);
//! 2. [`arena`] — offline precompute: every target-domain item (and every
//!    warm user) is encoded **once** into a contiguous `[n, dim]` f32
//!    arena, so a request never re-runs the item tower;
//! 3. [`batcher`] — microbatching: requests accumulate until
//!    `OM_SERVE_BATCH` are pending or the oldest has waited
//!    `OM_SERVE_WAIT_US`, then score as one batch;
//! 4. [`engine`] — one `pair_rows` cross-join + one rating-classifier
//!    GEMM per flush, then sharded top-K per request via
//!    `om_metrics::topk` (the same selection the offline tables use).
//!
//! Everything runs under [`om_nn::inference_mode`]: no autograd tape, no
//! dropout masks, nothing drawn from any RNG — which is also why batched
//! results are **bitwise identical** to one-request-at-a-time results at
//! any `OM_THREADS` setting (every kernel in the forward is row-
//! independent with a fixed per-element reduction order).
//!
//! [`export_checkpoint`]: omnimatch_core::TrainedOmniMatch::export_checkpoint

pub mod arena;
pub mod batcher;
pub mod engine;
pub mod loader;

pub use arena::{ItemArena, UserArena};
pub use batcher::Microbatcher;
pub use engine::{Request, Response, ServeEngine, ServeOptions};
pub use loader::{load_model, load_model_file};
