//! Fixture tests: each pass must (a) flag a seeded violation — the "fails
//! CI on a seeded violation" acceptance criterion — and (b) accept the
//! marked/compliant variant of the same code. Fixtures are inline source
//! strings, so the lint crate's own tree stays clean.

use om_lint::lexer::lex;
use om_lint::passes::{
    check_hash_collections, check_kernel_parity, check_kill_points, check_print,
    check_thread_spawn, check_unsafe, check_workspace_lints,
};

const MODEL_FILE: &str = "crates/core/src/somewhere.rs";
const RUNTIME: &str = "crates/tensor/src/runtime.rs";

#[test]
fn unsafe_outside_the_runtime_is_flagged() {
    let src = "pub fn f(p: *mut f32) { unsafe { *p = 0.0; } }\n";
    let v = check_unsafe(MODEL_FILE, &lex(src));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "unsafe-confinement");
    assert_eq!(v[0].line, 1);
    // …even with a SAFETY comment: confinement is about the file.
    let src = "// SAFETY: trust me\npub fn f(p: *mut f32) { unsafe { *p = 0.0; } }\n";
    assert_eq!(check_unsafe(MODEL_FILE, &lex(src)).len(), 1);
}

#[test]
fn runtime_unsafe_requires_a_safety_comment() {
    let bare = "pub fn f(p: *mut f32) {\n    unsafe { *p = 0.0; }\n}\n";
    let v = check_unsafe(RUNTIME, &lex(bare));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "safety-comment");
    assert_eq!(v[0].line, 2);

    let commented = "pub fn f(p: *mut f32) {\n    // Long explanation first.\n    // SAFETY: p is valid and exclusively owned here.\n    unsafe { *p = 0.0; }\n}\n";
    assert!(check_unsafe(RUNTIME, &lex(commented)).is_empty());
}

#[test]
fn the_mmap_layer_is_allowlisted_but_still_needs_safety_comments() {
    const MMAP: &str = "crates/serve/src/mmap.rs";
    let bare = "pub fn f(p: *mut f32) {\n    unsafe { *p = 0.0; }\n}\n";
    let v = check_unsafe(MMAP, &lex(bare));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "safety-comment");

    let commented =
        "pub fn f(p: *mut f32) {\n    // SAFETY: p is valid and exclusively owned here.\n    unsafe { *p = 0.0; }\n}\n";
    assert!(check_unsafe(MMAP, &lex(commented)).is_empty());
}

#[test]
fn unsafe_in_strings_and_comments_is_ignored() {
    let src = "// this mentions unsafe\npub fn f() -> &'static str { \"unsafe\" }\n";
    assert!(check_unsafe(MODEL_FILE, &lex(src)).is_empty());
}

#[test]
fn hash_collections_in_model_path_crates_are_flagged() {
    let src = "use std::collections::HashMap;\npub struct S { m: HashMap<u64, f32> }\n";
    let v = check_hash_collections(MODEL_FILE, &lex(src));
    assert_eq!(v.len(), 2, "both mentions flagged: {v:?}");
    assert!(v.iter().all(|v| v.rule == "hash-collections"));

    // The same file outside a model-path crate is fine…
    assert!(check_hash_collections("crates/tensor/src/x.rs", &lex(src)).is_empty());
    assert!(check_hash_collections("crates/text/src/x.rs", &lex(src)).is_empty());

    // …and an allow marker with a rationale silences one line.
    let marked = "// om-lint: allow(hash-collections) — build-time only, never iterated\nuse std::collections::HashMap;\n";
    assert!(check_hash_collections(MODEL_FILE, &lex(marked)).is_empty());
}

#[test]
fn btreemap_is_always_acceptable() {
    let src = "use std::collections::BTreeMap;\npub struct S { m: BTreeMap<u64, f32> }\n";
    assert!(check_hash_collections(MODEL_FILE, &lex(src)).is_empty());
}

#[test]
fn thread_spawn_outside_the_runtime_is_flagged() {
    let src = "pub fn go() { std::thread::spawn(|| {}); }\n";
    let v = check_thread_spawn("crates/experiments/src/x.rs", &lex(src));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "thread-spawn");

    // Scoped spawns are spawns too.
    let scoped = "pub fn go() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert_eq!(check_thread_spawn("crates/core/src/x.rs", &lex(scoped)).len(), 1);

    // The runtime itself may spawn its workers.
    assert!(check_thread_spawn(RUNTIME, &lex(src)).is_empty());

    // A marked site with a rationale passes.
    let marked = "pub fn go() {\n    // om-lint: allow(thread-spawn) — trials must not run on the pool\n    std::thread::spawn(|| {});\n}\n";
    assert!(check_thread_spawn("crates/experiments/src/x.rs", &lex(marked)).is_empty());
}

#[test]
fn raw_prints_in_model_path_crates_are_flagged() {
    let src = "pub fn f() { println!(\"hi\"); eprintln!(\"progress…\"); }\n";
    let v = check_print(MODEL_FILE, &lex(src));
    assert_eq!(v.len(), 2, "both macros flagged: {v:?}");
    assert!(v.iter().all(|v| v.rule == "print"));
    assert_eq!(check_print("crates/tensor/src/x.rs", &lex(src)).len(), 2);

    // Outside the banned crates (e.g. experiments binaries render tables
    // on stdout by design) prints are fine…
    assert!(check_print("crates/experiments/src/bin/table2.rs", &lex(src)).is_empty());
    assert!(check_print("crates/obs/src/logger.rs", &lex(src)).is_empty());

    // …and a marked line with a rationale passes.
    let marked =
        "pub fn f() {\n    // om-lint: allow(print) — this *is* the program's output\n    println!(\"table\");\n}\n";
    assert!(check_print(MODEL_FILE, &lex(marked)).is_empty());
}

#[test]
fn prints_in_comments_and_strings_are_ignored() {
    let src = "// println! would be wrong here\npub fn f() -> &'static str { \"println!\" }\n";
    assert!(check_print(MODEL_FILE, &lex(src)).is_empty());
}

const KERNELS_REL: &str = "crates/tensor/src/kernels.rs";

#[test]
fn kernel_without_serial_sibling_is_flagged() {
    let kernels = "pub fn scale(x: &mut [f32], a: f32) { for v in x { *v *= a; } }\n";
    let parity = "fn t() { scale(&mut [], 2.0); }\n";
    let v = check_kernel_parity(KERNELS_REL, &lex(kernels), &lex(parity));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "kernel-parity");
    assert!(v[0].msg.contains("scale_serial"), "{}", v[0].msg);
}

#[test]
fn kernel_pair_must_be_registered_in_the_parity_suite() {
    let kernels = "pub fn scale(x: &mut [f32], a: f32) {}\npub fn scale_serial(x: &mut [f32], a: f32) {}\n";
    // Sibling exists but the parity suite never mentions the pair.
    let v = check_kernel_parity(KERNELS_REL, &lex(kernels), &lex("fn unrelated() {}\n"));
    assert_eq!(v.len(), 1);
    assert!(v[0].msg.contains("not registered"), "{}", v[0].msg);

    // Registered: both identifiers appear in the suite.
    let parity = "fn t() { assert_eq!(scale_serial(x), scale(x)); }\n";
    assert!(check_kernel_parity(KERNELS_REL, &lex(kernels), &lex(parity)).is_empty());
}

#[test]
fn non_kernel_helpers_can_be_exempted() {
    let kernels = "// om-lint: not-a-kernel — returns a tuning constant, no data path\npub fn grain_for(n: usize) -> usize { n / 64 }\n";
    assert!(check_kernel_parity(KERNELS_REL, &lex(kernels), &lex("")).is_empty());
}

#[test]
fn only_top_level_pub_fns_count_as_kernels() {
    // Methods inside impl blocks and private fns are not kernels.
    let kernels = "struct S;\nimpl S {\n    pub fn helper(&self) {}\n}\nfn private_helper() {}\n";
    assert!(check_kernel_parity(KERNELS_REL, &lex(kernels), &lex("")).is_empty());
}

#[test]
fn workspace_lints_must_be_defined_and_opted_into() {
    let good_root = "[workspace.lints.rust]\nunsafe_op_in_unsafe_fn = \"deny\"\n";
    let good_crate = ("crates/x/Cargo.toml".to_string(), "[lints]\nworkspace = true\n".to_string());
    assert!(check_workspace_lints(good_root, std::slice::from_ref(&good_crate)).is_empty());

    let v = check_workspace_lints("[workspace]\n", std::slice::from_ref(&good_crate));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "workspace-lints");

    let bad_crate = ("crates/y/Cargo.toml".to_string(), "[package]\nname = \"y\"\n".to_string());
    let v = check_workspace_lints(good_root, &[good_crate, bad_crate]);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].file, "crates/y/Cargo.toml");
}

#[test]
fn unmarked_kill_points_are_flagged() {
    let src = "pub fn save() {\n    om_obs::fault::kill_point(\"ckpt-save\");\n}\n";
    let v = check_kill_points(MODEL_FILE, &lex(src));
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "kill-point-marker");
    assert_eq!(v[0].line, 2);

    // A marker comment directly above the call site silences it.
    let marked = "pub fn save() {\n    // om-fault: kill-point\n    om_obs::fault::kill_point(\"ckpt-save\");\n}\n";
    assert!(check_kill_points(MODEL_FILE, &lex(marked)).is_empty());

    // The obs crate owns the primitive; it needs no marker.
    assert!(check_kill_points("crates/obs/src/fault.rs", &lex(src)).is_empty());

    // Mentions in comments/strings don't count as call sites.
    let prose = "// the fault module's kill_point is documented in DESIGN.md\npub fn f() {}\n";
    assert!(check_kill_points(MODEL_FILE, &lex(prose)).is_empty());
}

/// The acceptance criterion: the real tree is clean. Any future violation
/// fails this test (and the dedicated CI job) with the exact findings.
#[test]
fn repository_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = om_lint::lint_repo(&root);
    assert!(
        report.violations.is_empty(),
        "om-lint found violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 50, "suspiciously few files: {}", report.files);
}
