//! Sharded top-K correctness and the checkpoint round trip.
//!
//! * The engine's per-request top-K must equal the prefix of a naive
//!   full-sort oracle, bit for bit — and the trainer's `rank_items`
//!   (rerouted through the same `om_metrics::topk` path) must agree with
//!   both, proving eval tables and serving share one selection code path.
//! * A model exported with `export_checkpoint`, written to disk, and
//!   reloaded by `om_serve::load_model` must serve bitwise-identical
//!   responses to the in-memory original.

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{load_model, Request, ServeEngine, ServeOptions};
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};
use om_tensor::seeded_rng;

#[test]
fn sharded_topk_matches_the_full_sort_oracle_and_rank_items() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(31)).fit(&scenario);

    // Trainer-level: partial selection must reproduce the full ranking's
    // prefix over the same candidate set.
    let candidates = trained.views().items();
    let users: Vec<UserId> = trained.views().users().to_vec();
    let probe = users[users.len() / 2];
    let full = trained.rank_items(probe, &candidates);
    for k in [1usize, 3, 10, candidates.len()] {
        let part = trained.rank_items_topk(probe, &candidates, k);
        assert_eq!(part.len(), k.min(candidates.len()));
        for ((ia, sa), (ib, sb)) in part.iter().zip(&full) {
            assert_eq!(ia, ib, "rank_items_topk diverged from full ranking at k={k}");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    // Engine-level: sharded top-K equals the naive full-sort oracle for
    // every scenario user, cold and warm alike.
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    let k = engine.options().topk;
    for &u in &users {
        let oracle = engine.oracle_rank(u).expect("oracle rank");
        let resp = engine
            .serve_one(Request { id: 0, user: u, arrive_us: 0 })
            .expect("serve one");
        assert_eq!(resp.top.len(), k.min(oracle.len()));
        for ((ia, sa), (ib, sb)) in resp.top.iter().zip(&oracle) {
            assert_eq!(ia, ib, "top-K diverged from oracle for user {u:?}");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}

#[test]
fn checkpoint_roundtrip_serves_bitwise_identical_responses() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(47);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let blob = trained.export_checkpoint();

    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();
    let vocab_size = views.vocab.len();
    let live = ServeEngine::new(model, views, &warm, ServeOptions::default());

    // Serving rebuilds the corpus views exactly as the trainer did (same
    // config, same seed) and restores the parameters from the checkpoint.
    let reloaded_model = load_model(&cfg, vocab_size, &blob).expect("decode checkpoint");
    let views2 = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    assert_eq!(views2.vocab.len(), vocab_size, "rebuilt vocabulary drifted");
    let reloaded = ServeEngine::new(reloaded_model, views2, &warm, ServeOptions::default());

    for (i, &u) in users.iter().enumerate() {
        let req = Request { id: i as u64, user: u, arrive_us: 0 };
        let a = live.serve_one(req).expect("serve one");
        let b = reloaded.serve_one(req).expect("serve one");
        assert_eq!(a.top.len(), b.top.len());
        for ((ia, sa), (ib, sb)) in a.top.iter().zip(&b.top) {
            assert_eq!(ia, ib, "reloaded engine ranked differently for {u:?}");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    // Corruption must surface as an error, never a partial restore.
    let mut bad = blob.to_vec();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    assert!(load_model(&cfg, vocab_size, &bad).is_err(), "bit flip went undetected");
}
