//! Review-text normalisation, matching §5.2: "we convert the text to
//! lowercase and eliminate all punctuation".

/// Lowercase the text and replace every non-alphanumeric character (other
/// than whitespace) with a space. The `<sp>` separator token survives
/// because it is inserted *after* normalisation by the document encoder.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
        } else if ch.is_whitespace() {
            out.push(' ');
        } else {
            // punctuation → space so "fang-tastic" splits into two tokens
            out.push(' ');
        }
    }
    out
}

/// Whitespace tokenisation of already-normalised text.
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Vampire Romance"), vec!["vampire", "romance"]);
    }

    #[test]
    fn strips_punctuation() {
        assert_eq!(
            tokenize("Fang-tastic, Fun and Freaky!"),
            vec!["fang", "tastic", "fun", "and", "freaky"]
        );
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(tokenize("  a\t b\n  c "), vec!["a", "b", "c"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("5 stars!"), vec!["5", "stars"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!...;;;").is_empty());
    }

    #[test]
    fn unicode_is_handled() {
        let toks = tokenize("Crouching Tiger — Hidden Dragon");
        assert_eq!(toks, vec!["crouching", "tiger", "hidden", "dragon"]);
    }
}
