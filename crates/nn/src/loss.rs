//! Loss functions: mean-squared error and the supervised contrastive loss
//! (Khosla et al. 2020), Eq. 13 of the paper.

use om_tensor::Tensor;

/// Mean squared error between predictions and constant targets.
pub fn mse_loss(pred: &Tensor, target: &[f32]) -> Tensor {
    assert_eq!(pred.numel(), target.len(), "mse_loss: length mismatch");
    let t = Tensor::from_vec(target.to_vec(), pred.dims());
    pred.sub(&t).square().mean_all()
}

/// Accumulates the two projected "views" of a training batch — source-side
/// and target-side user–item pairs (Eq. 11) — together with their rating
/// labels, then yields the stacked input for [`supcon_loss`].
///
/// In the paper's Contrastive Representation Learning Module (§4.3), `I` is
/// the set of all projected user–item pairs in the batch; positives `P(i)`
/// are pairs with the same rating label. Because the source and target
/// projections of the same user–item pair carry the same rating, they are
/// automatically positives of each other, which is what pulls each user's
/// source and target representations together (Fig. 3, top); same-rating
/// pairs from different users converge too (Fig. 3, bottom).
pub struct SupConBatch {
    views: Vec<Tensor>,
    labels: Vec<usize>,
}

impl SupConBatch {
    /// Empty batch.
    pub fn new() -> SupConBatch {
        SupConBatch {
            views: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Add a `[n, p]` block of projected pairs with one label per row.
    pub fn push(&mut self, projected: Tensor, labels: &[usize]) {
        let (n, _) = projected.shape().as_2d();
        assert_eq!(n, labels.len(), "SupConBatch: one label per row required");
        self.views.push(projected);
        self.labels.extend_from_slice(labels);
    }

    /// Number of samples accumulated.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Compute the supervised contrastive loss over everything accumulated.
    pub fn loss(&self, temperature: f32) -> Tensor {
        assert!(!self.is_empty(), "SupConBatch: empty batch");
        let refs: Vec<&Tensor> = self.views.iter().collect();
        let stacked = if refs.len() == 1 {
            refs[0].clone()
        } else {
            // All views share the projection width; a single row-concat
            // replaces the old per-row select/stack (one graph node and one
            // memcpy instead of O(rows) gather ops).
            Tensor::concat_rows(&refs)
        };
        supcon_loss(&stacked, &self.labels, temperature)
    }
}

impl Default for SupConBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Supervised contrastive loss (Eq. 13):
///
/// ```text
/// L = Σ_{i∈I}  -1/|P(i)|  Σ_{p∈P(i)}  log  exp(x̂_i·x̂_p / τ) / Σ_{a∈A(i)} exp(x̂_i·x̂_a / τ)
/// ```
///
/// Rows of `z` are L2-normalised before the dot products so similarities are
/// bounded by `1/τ`; `P(i)` = other samples with the same label, `A(i)` =
/// everything but `i` itself. Samples with no positive partner contribute
/// nothing (the `1/|P(i)|` convention of Khosla et al.). The returned loss
/// is averaged over the samples that do have positives.
pub fn supcon_loss(z: &Tensor, labels: &[usize], temperature: f32) -> Tensor {
    let (n, _) = z.shape().as_2d();
    assert_eq!(n, labels.len(), "supcon_loss: one label per row required");
    assert!(temperature > 0.0, "supcon_loss: temperature must be positive");
    if n < 2 {
        return Tensor::scalar(0.0);
    }

    let zn = z.l2_normalize_rows();
    let sims = zn.matmul(&zn.transpose()).scale(1.0 / temperature); // [n, n]

    // Mask self-similarity out of the log-sum-exp denominator (A(i) = I∖{i}).
    const NEG: f32 = -1e9;
    let mut diag_mask = vec![0.0f32; n * n];
    for i in 0..n {
        diag_mask[i * n + i] = NEG;
    }
    let masked = sims.add(&Tensor::from_vec(diag_mask, &[n, n]));
    let logp = masked.log_softmax_rows();

    // Positive-pair weights: w[i][p] = 1/|P(i)| for p ∈ P(i).
    let mut weights = vec![0.0f32; n * n];
    let mut anchors_with_positives = 0usize;
    for i in 0..n {
        let positives: Vec<usize> = (0..n)
            .filter(|&p| p != i && labels[p] == labels[i])
            .collect();
        if positives.is_empty() {
            continue;
        }
        anchors_with_positives += 1;
        let w = 1.0 / positives.len() as f32;
        for p in positives {
            weights[i * n + p] = w;
        }
    }
    if anchors_with_positives == 0 {
        return Tensor::scalar(0.0);
    }
    let w = Tensor::from_vec(weights, &[n, n]);
    logp.mul(&w)
        .sum_all()
        .scale(-1.0 / anchors_with_positives as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::{gradcheck, init, seeded_rng};

    #[test]
    fn mse_zero_when_exact() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(mse_loss(&p, &[1.0, 2.0]).item(), 0.0);
    }

    #[test]
    fn mse_matches_reference() {
        let p = Tensor::from_vec(vec![1.0, 3.0], &[2]);
        assert_eq!(mse_loss(&p, &[0.0, 0.0]).item(), 5.0);
    }

    #[test]
    fn supcon_zero_without_positives() {
        let z = init::normal(&[3, 4], 1.0, &mut seeded_rng(1));
        let loss = supcon_loss(&z, &[0, 1, 2], 0.07);
        assert_eq!(loss.item(), 0.0);
    }

    #[test]
    fn supcon_singleton_batch_is_zero() {
        let z = Tensor::ones(&[1, 4]);
        assert_eq!(supcon_loss(&z, &[0], 0.07).item(), 0.0);
    }

    #[test]
    fn supcon_prefers_aligned_positives() {
        // Two positives perfectly aligned, negative orthogonal → lower loss
        // than positives orthogonal, negative aligned.
        let good = Tensor::from_vec(
            vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0],
            &[3, 2],
        );
        let bad = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0],
            &[3, 2],
        );
        let labels = [7usize, 7, 3];
        let lg = supcon_loss(&good, &labels, 0.1).item();
        let lb = supcon_loss(&bad, &labels, 0.1).item();
        assert!(lg < lb, "aligned {lg} should beat misaligned {lb}");
    }

    #[test]
    fn supcon_two_samples_no_negatives_is_degenerate_zero() {
        // With only one candidate in the denominator the log-softmax is 0,
        // so the loss (and gradient) vanish — matching Eq. 13 exactly.
        let z = Tensor::from_vec(vec![1.0, 0.2, 0.2, 1.0], &[2, 2]).requires_grad();
        let loss = supcon_loss(&z, &[5, 5], 0.5);
        assert!(loss.item().abs() < 1e-6);
    }

    #[test]
    fn supcon_gradient_pulls_positives_together() {
        // Two positives plus one negative: the gradient must increase the
        // positives' cosine similarity.
        let z = Tensor::from_vec(
            vec![1.0, 0.2, 0.2, 1.0, -0.7, 0.6],
            &[3, 2],
        )
        .requires_grad();
        let loss = supcon_loss(&z, &[5, 5, 9], 0.5);
        loss.backward();
        let g = z.grad_vec().unwrap();
        // Moving each row against its gradient must increase their cosine
        // similarity (positives attract).
        let step = 0.1f32;
        let a = [1.0 - step * g[0], 0.2 - step * g[1]];
        let b = [0.2 - step * g[2], 1.0 - step * g[3]];
        let cos = |x: &[f32; 2], y: &[f32; 2]| {
            let dot = x[0] * y[0] + x[1] * y[1];
            let nx = (x[0] * x[0] + x[1] * x[1]).sqrt();
            let ny = (y[0] * y[0] + y[1] * y[1]).sqrt();
            dot / (nx * ny)
        };
        let before = cos(&[1.0, 0.2], &[0.2, 1.0]);
        let after = cos(&a, &b);
        assert!(after > before, "cos before {before}, after {after}");
    }

    #[test]
    fn supcon_gradcheck() {
        let z = init::uniform(&[4, 3], -1.0, 1.0, &mut seeded_rng(2)).requires_grad();
        let labels = [0usize, 0, 1, 1];
        let r = gradcheck(&z, |z| supcon_loss(z, &labels, 0.2), 1e-2);
        assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn batch_accumulates_views() {
        let mut b = SupConBatch::new();
        assert!(b.is_empty());
        b.push(Tensor::ones(&[2, 3]), &[1, 2]);
        b.push(Tensor::zeros(&[2, 3]), &[1, 2]);
        assert_eq!(b.len(), 4);
        let loss = b.loss(0.07);
        assert!(loss.item().is_finite());
    }

    #[test]
    fn batch_two_views_equals_manual_stack() {
        let a = init::normal(&[2, 3], 1.0, &mut seeded_rng(3));
        let b = init::normal(&[2, 3], 1.0, &mut seeded_rng(4));
        let mut batch = SupConBatch::new();
        batch.push(a.clone(), &[1, 2]);
        batch.push(b.clone(), &[1, 2]);
        let via_batch = batch.loss(0.1).item();

        let mut stacked = a.to_vec();
        stacked.extend(b.to_vec());
        let z = Tensor::from_vec(stacked, &[4, 3]);
        let manual = supcon_loss(&z, &[1, 2, 1, 2], 0.1).item();
        assert!((via_batch - manual).abs() < 1e-5);
    }
}
