//! Loss machinery: supervised contrastive loss scaling with batch size
//! (it is quadratic in the batch — the similarity matrix), gradient
//! reversal overhead (which must be negligible: it is an identity with a
//! scaled backward), and softmax cross-entropy as the reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_nn::supcon_loss;
use om_tensor::{init, seeded_rng};

fn bench_supcon(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let mut group = c.benchmark_group("loss/supcon");
    group.sample_size(20);
    for batch in [32usize, 64, 128, 256] {
        let z = init::normal(&[batch, 32], 1.0, &mut rng).requires_grad();
        let labels: Vec<usize> = (0..batch).map(|i| i % 5).collect();
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                z.zero_grad();
                supcon_loss(&z, &labels, 0.07).backward();
            })
        });
    }
    group.finish();
}

fn bench_grl_overhead(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let x = init::normal(&[128, 64], 1.0, &mut rng).requires_grad();
    let mut group = c.benchmark_group("loss/grl");
    group.sample_size(20);
    group.bench_function("without_grl", |b| {
        b.iter(|| {
            x.zero_grad();
            x.square().mean_all().backward();
        })
    });
    group.bench_function("with_grl", |b| {
        b.iter(|| {
            x.zero_grad();
            x.gradient_reversal(1.0).square().mean_all().backward();
        })
    });
    group.finish();
}

fn bench_cross_entropy(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let logits = init::normal(&[64, 5], 1.0, &mut rng).requires_grad();
    let targets: Vec<usize> = (0..64).map(|i| i % 5).collect();
    c.bench_function("loss/cross_entropy_64x5", |b| {
        b.iter(|| {
            logits.zero_grad();
            logits.cross_entropy(&targets).backward();
        })
    });
}

criterion_group!(benches, bench_supcon, bench_grl_overhead, bench_cross_entropy);
criterion_main!(benches);
