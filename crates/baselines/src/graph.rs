//! Graph substrate: bipartite user–item interaction graphs with
//! degree-normalised embedding propagation, trained end-to-end with the
//! `om-tensor` autograd (dense adjacency matmuls — adequate at this
//! corpus scale).
//!
//! The propagation rule is LightGCN's symmetric normalisation
//! `E_U^{(k+1)} = Â · E_I^{(k)}` with `Â_{ui} = 1/√(d_u d_i)`; NGCF layers
//! add a learned linear transform and ReLU on top.

use std::collections::BTreeMap;

use om_data::types::{Interaction, ItemId, UserId};
use om_nn::{HasParams, Linear};
use om_tensor::{init, Rng, Tensor};

/// Dense bipartite graph over interned user/item indices.
pub struct BipartiteGraph {
    /// user → dense row.
    pub user_index: BTreeMap<UserId, usize>,
    /// item → dense column.
    pub item_index: BTreeMap<ItemId, usize>,
    /// `[n_users, n_items]` symmetric-normalised adjacency.
    pub norm_adj: Tensor,
    /// `[n_items, n_users]` transpose of the same.
    pub norm_adj_t: Tensor,
    /// Per-rating training triples in dense indices.
    pub triples: Vec<(usize, usize, f32)>,
    /// Global mean rating.
    pub global_mean: f32,
    /// Per-item mean rating (fallback for cold users).
    pub item_means: Vec<f32>,
}

impl BipartiteGraph {
    /// Build from interactions (each interaction is one edge).
    pub fn build(interactions: &[&Interaction]) -> BipartiteGraph {
        assert!(!interactions.is_empty(), "graph needs at least one edge");
        let mut user_index = BTreeMap::new();
        let mut item_index = BTreeMap::new();
        for it in interactions {
            let next = user_index.len();
            user_index.entry(it.user).or_insert(next);
            let next = item_index.len();
            item_index.entry(it.item).or_insert(next);
        }
        let (nu, ni) = (user_index.len(), item_index.len());
        let mut adj = vec![0.0f32; nu * ni];
        let mut du = vec![0.0f32; nu];
        let mut di = vec![0.0f32; ni];
        let mut triples = Vec::with_capacity(interactions.len());
        let mut item_sum = vec![0.0f32; ni];
        let mut item_cnt = vec![0usize; ni];
        let mut total = 0.0f32;
        for it in interactions {
            let u = user_index[&it.user];
            let i = item_index[&it.item];
            adj[u * ni + i] = 1.0;
            du[u] += 1.0;
            di[i] += 1.0;
            triples.push((u, i, it.rating.value()));
            item_sum[i] += it.rating.value();
            item_cnt[i] += 1;
            total += it.rating.value();
        }
        for u in 0..nu {
            for i in 0..ni {
                if adj[u * ni + i] > 0.0 {
                    adj[u * ni + i] = 1.0 / (du[u] * di[i]).sqrt();
                }
            }
        }
        let norm_adj = Tensor::from_vec(adj, &[nu, ni]);
        let norm_adj_t = norm_adj.transpose().detach();
        let global_mean = total / interactions.len() as f32;
        let item_means: Vec<f32> = item_sum
            .iter()
            .zip(&item_cnt)
            .map(|(s, &c)| if c > 0 { s / c as f32 } else { global_mean })
            .collect();
        BipartiteGraph {
            user_index,
            item_index,
            norm_adj,
            norm_adj_t,
            triples,
            global_mean,
            item_means,
        }
    }

    /// Number of users in the graph.
    pub fn num_users(&self) -> usize {
        self.user_index.len()
    }

    /// Number of items in the graph.
    pub fn num_items(&self) -> usize {
        self.item_index.len()
    }
}

/// Propagation flavour of a graph CF model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// LightGCN: pure normalised neighbourhood averaging.
    Light,
    /// NGCF: adds a learned linear transform + ReLU per layer.
    Nonlinear,
}

/// A graph collaborative-filtering model over one bipartite graph.
pub struct GraphCF {
    graph: BipartiteGraph,
    user_emb: Tensor,
    item_emb: Tensor,
    user_bias: Tensor,
    item_bias: Tensor,
    transforms: Vec<Linear>,
    layers: usize,
    propagation: Propagation,
    /// Final propagated embeddings, cached after training.
    final_user: Vec<f32>,
    final_item: Vec<f32>,
    dim: usize,
}

impl GraphCF {
    /// Initialise embeddings for a graph.
    pub fn new(
        graph: BipartiteGraph,
        dim: usize,
        layers: usize,
        propagation: Propagation,
        rng: &mut Rng,
    ) -> GraphCF {
        let nu = graph.num_users();
        let ni = graph.num_items();
        let transforms = match propagation {
            Propagation::Light => Vec::new(),
            Propagation::Nonlinear => (0..layers).map(|_| Linear::xavier(dim, dim, rng)).collect(),
        };
        GraphCF {
            user_emb: init::normal(&[nu, dim], 0.1, rng).requires_grad(),
            item_emb: init::normal(&[ni, dim], 0.1, rng).requires_grad(),
            user_bias: Tensor::zeros(&[nu, 1]).requires_grad(),
            item_bias: Tensor::zeros(&[ni, 1]).requires_grad(),
            transforms,
            layers,
            propagation,
            final_user: vec![0.0; nu * dim],
            final_item: vec![0.0; ni * dim],
            graph,
            dim,
        }
    }

    /// Propagate embeddings through the graph; returns layer-averaged
    /// user and item embeddings (the LightGCN readout).
    fn propagate(&self) -> (Tensor, Tensor) {
        let mut u = self.user_emb.clone();
        let mut i = self.item_emb.clone();
        let mut u_acc = u.clone();
        let mut i_acc = i.clone();
        for l in 0..self.layers {
            let u_next = self.graph.norm_adj.matmul(&i);
            let i_next = self.graph.norm_adj_t.matmul(&u);
            let (u_next, i_next) = match self.propagation {
                Propagation::Light => (u_next, i_next),
                Propagation::Nonlinear => {
                    let t = &self.transforms[l];
                    (t.forward(&u_next).relu(), t.forward(&i_next).relu())
                }
            };
            u = u_next;
            i = i_next;
            u_acc = u_acc.add(&u);
            i_acc = i_acc.add(&i);
        }
        let scale = 1.0 / (self.layers as f32 + 1.0);
        (u_acc.scale(scale), i_acc.scale(scale))
    }

    /// Full-batch MSE training with Adam; caches the final embeddings.
    pub fn fit(&mut self, epochs: usize, lr: f32) {
        self.fit_regularized(epochs, lr, 0.03);
    }

    /// Training with explicit L2 weight decay on the embedding tables.
    pub fn fit_regularized(&mut self, epochs: usize, lr: f32, reg: f32) {
        let mut params = vec![
            self.user_emb.clone(),
            self.item_emb.clone(),
            self.user_bias.clone(),
            self.item_bias.clone(),
        ];
        for t in &self.transforms {
            params.extend(t.params());
        }
        let mut opt = om_nn::Adam::new(params, lr);
        use om_nn::Optimizer as _;
        let gm = self.graph.global_mean;
        let users: Vec<usize> = self.graph.triples.iter().map(|t| t.0).collect();
        let items: Vec<usize> = self.graph.triples.iter().map(|t| t.1).collect();
        let gold: Vec<f32> = self.graph.triples.iter().map(|t| t.2 - gm).collect();
        for _ in 0..epochs {
            let (ue, ie) = self.propagate();
            let u_rows = ue.select_rows(&users);
            let i_rows = ie.select_rows(&items);
            let dots = u_rows.mul(&i_rows).sum_cols(); // [n]
            let ub = self.user_bias.select_rows(&users).reshape(&[users.len()]);
            let ib = self.item_bias.select_rows(&items).reshape(&[items.len()]);
            let pred = dots.add(&ub).add(&ib);
            let mse = om_nn::mse_loss(&pred, &gold);
            let l2 = self
                .user_emb
                .square()
                .mean_all()
                .add(&self.item_emb.square().mean_all());
            let loss = mse.add(&l2.scale(reg));
            loss.backward();
            opt.step();
            opt.zero_grad();
        }
        let _guard = om_tensor::no_grad();
        let (ue, ie) = self.propagate();
        self.final_user = ue.to_vec();
        self.final_item = ie.to_vec();
    }

    /// Predict a rating; users/items outside the graph fall back to the
    /// item mean (or global mean), the standard cold-start fallback for
    /// single-domain graph CF.
    pub fn predict(&self, user: UserId, item: ItemId) -> f32 {
        let iu = self.graph.user_index.get(&user);
        let ii = self.graph.item_index.get(&item);
        match (iu, ii) {
            (Some(&u), Some(&i)) => {
                let d = self.dim;
                let dot: f32 = self.final_user[u * d..(u + 1) * d]
                    .iter()
                    .zip(&self.final_item[i * d..(i + 1) * d])
                    .map(|(a, b)| a * b)
                    .sum();
                self.graph.global_mean + dot + self.user_bias.at(u) + self.item_bias.at(i)
            }
            (None, Some(&i)) => {
                // cold user: model-based non-personalised prediction
                // (global mean + trained item bias), blended with the raw
                // item mean for stability
                let model = self.graph.global_mean + self.item_bias.at(i);
                0.5 * (model + self.graph.item_means[i])
            }
            _ => self.graph.global_mean,
        }
    }

    /// Dense embedding of a user after propagation (None if unseen).
    pub fn user_embedding(&self, user: UserId) -> Option<&[f32]> {
        self.graph
            .user_index
            .get(&user)
            .map(|&u| &self.final_user[u * self.dim..(u + 1) * self.dim])
    }

    /// The underlying graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::types::Rating;
    use om_tensor::seeded_rng;

    fn r(stars: u8) -> Rating {
        Rating::new(stars).unwrap()
    }

    fn block_world() -> Vec<Interaction> {
        let mut out = Vec::new();
        for u in 0..12u32 {
            for i in 0..12u32 {
                if (u + i) % 5 == 0 {
                    continue; // hold out some cells
                }
                let love = (u < 6) == (i < 6);
                out.push(Interaction::new(
                    UserId(u),
                    ItemId(i),
                    r(if love { 5 } else { 1 }),
                    "",
                ));
            }
        }
        out
    }

    #[test]
    fn adjacency_is_symmetric_normalised() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let g = BipartiteGraph::build(&refs);
        // every nonzero entry equals 1/sqrt(du*di) ≤ 1
        assert!(g.norm_adj.to_vec().iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(g.num_users(), 12);
        assert_eq!(g.num_items(), 12);
    }

    #[test]
    fn lightgcn_learns_block_structure() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let g = BipartiteGraph::build(&refs);
        let mut m = GraphCF::new(g, 8, 2, Propagation::Light, &mut seeded_rng(1));
        m.fit(150, 0.05);
        // held-out cell (u=0,i=5): cross-block → low; (u=0,i=10): wait 10>6 cross.
        let love = m.predict(UserId(0), ItemId(5)); // same block (i<6)
        let hate = m.predict(UserId(0), ItemId(10)); // cross block
        assert!(love > hate + 1.0, "love {love} hate {hate}");
    }

    #[test]
    fn ngcf_trains_transforms() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let g = BipartiteGraph::build(&refs);
        let mut m = GraphCF::new(g, 8, 2, Propagation::Nonlinear, &mut seeded_rng(2));
        m.fit(100, 0.05);
        let love = m.predict(UserId(0), ItemId(5));
        let hate = m.predict(UserId(0), ItemId(10));
        assert!(love > hate, "love {love} hate {hate}");
    }

    #[test]
    fn cold_user_falls_back_to_item_mean() {
        let data = block_world();
        let refs: Vec<&Interaction> = data.iter().collect();
        let g = BipartiteGraph::build(&refs);
        let mut m = GraphCF::new(g, 4, 1, Propagation::Light, &mut seeded_rng(3));
        m.fit(10, 0.05);
        let p = m.predict(UserId(999), ItemId(0));
        // item 0 is loved by block one, hated by block two → mean mid-range
        assert!(p > 1.0 && p < 5.0);
        assert_eq!(m.predict(UserId(999), ItemId(999)), m.graph().global_mean);
    }
}
