//! Fixture tests for the om-lint v2 semantic passes: each pass must
//! (a) flag a seeded violation and (b) accept the marked/compliant
//! variant of the same code — mirroring `tests/fixtures.rs` for the
//! token-level passes. Fixtures are inline source strings, so the lint
//! crate's own tree stays clean.

use std::collections::BTreeSet;

use om_lint::ast;
use om_lint::env_registry;
use om_lint::lexer::lex;
use om_lint::semantic::{
    check_determinism, check_float_reduction, check_panic_freedom, check_simd_tolerance,
};
use om_lint::Policy;

const MODEL_FILE: &str = "crates/core/src/somewhere.rs";
const HOT_FILE: &str = "crates/serve/src/engine.rs";

fn determinism(rel: &str, src: &str) -> Vec<om_lint::Violation> {
    let lexed = lex(src);
    check_determinism(rel, &lexed, &ast::parse(&lexed), &Policy::default_policy())
}

fn panic_freedom(rel: &str, src: &str) -> Vec<om_lint::Violation> {
    let lexed = lex(src);
    check_panic_freedom(rel, &lexed, &ast::parse(&lexed), &Policy::default_policy())
}

fn reduction(rel: &str, src: &str) -> Vec<om_lint::Violation> {
    let lexed = lex(src);
    check_float_reduction(rel, &lexed, &ast::parse(&lexed), &Policy::default_policy())
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

#[test]
fn wall_clock_reads_in_model_path_crates_are_flagged() {
    let src = "pub fn f() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
    let v = determinism(MODEL_FILE, src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "determinism");
    assert_eq!(v[0].line, 2);

    // The same read in the sanctioned clock's own crate is fine.
    assert!(determinism("crates/obs/src/clock.rs", src).is_empty());
    // So is the bench crate, which measures time by design.
    assert!(determinism("crates/bench/src/replay.rs", src).is_empty());
}

#[test]
fn os_randomness_is_flagged_even_in_value_position() {
    let src = "pub fn f() -> u64 { rand::thread_rng().gen() }\n";
    let v = determinism(MODEL_FILE, src);
    assert_eq!(v.len(), 1, "{v:?}");

    // Uncalled path (passed as a function value) is still a read site.
    let src = "pub fn f() { init_with(SystemTime::now); }\n";
    let v = determinism(MODEL_FILE, src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "determinism");
}

#[test]
fn marked_and_test_code_nondeterminism_is_accepted() {
    let marked = "pub fn f() -> u64 {\n    // om-lint: nondeterminism-ok(jitter only affects log timestamps)\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
    assert!(determinism(MODEL_FILE, marked).is_empty());

    let test_fn = "#[test]\nfn t() { let _ = std::time::Instant::now(); }\n";
    assert!(determinism(MODEL_FILE, test_fn).is_empty());

    let cfg_test = "#[cfg(test)]\nmod tests {\n    fn helper() -> std::time::Instant { std::time::Instant::now() }\n}\n";
    assert!(determinism(MODEL_FILE, cfg_test).is_empty());
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn unwraps_and_panicking_macros_on_the_hot_path_are_flagged() {
    let src = "pub fn f(v: Vec<u32>) -> u32 {\n    let x = v.first().unwrap();\n    assert!(*x > 0, \"positive\");\n    panic!(\"boom\")\n}\n";
    let v = panic_freedom(HOT_FILE, src);
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "panic-freedom"));
    assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 3, 4]);

    // The same code outside the hot path is out of scope.
    assert!(panic_freedom("crates/serve/src/blob.rs", src).is_empty());
}

#[test]
fn direct_indexing_on_the_hot_path_is_flagged_but_not_slices_or_macros() {
    let src = "pub fn f(v: &[f32], i: usize) -> f32 { v[i] }\n";
    let v = panic_freedom(HOT_FILE, src);
    assert_eq!(v.len(), 1, "{v:?}");

    // Range slicing through .get(), array types, and vec![] are all fine.
    let ok = "pub fn f(v: &[f32; 4], i: usize) -> f32 {\n    let w: Vec<f32> = vec![0.0; 4];\n    v.get(i).copied().unwrap_or(w.len() as f32)\n}\n";
    assert!(panic_freedom(HOT_FILE, ok).is_empty());
}

#[test]
fn marked_and_test_code_panics_are_accepted() {
    let marked = "pub fn f(v: Vec<u32>) -> u32 {\n    // om-lint: panic-ok(arena construction runs before traffic)\n    v.first().copied().unwrap()\n}\n";
    assert!(panic_freedom(HOT_FILE, marked).is_empty());

    let test_fn = "#[test]\nfn t() { Vec::<u32>::new().first().unwrap(); }\n";
    assert!(panic_freedom(HOT_FILE, test_fn).is_empty());

    // debug_assert compiles out of release serving builds.
    let dbg = "pub fn f(n: usize) { debug_assert_eq!(n % 2, 0); }\n";
    assert!(panic_freedom(HOT_FILE, dbg).is_empty());
}

// ---------------------------------------------------------------------------
// float-reduction
// ---------------------------------------------------------------------------

#[test]
fn adhoc_float_sums_outside_the_kernel_suite_are_flagged() {
    let src = "pub fn f(v: &[f32]) -> f32 { v.iter().sum::<f32>() }\n";
    let v = reduction(MODEL_FILE, src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "float-reduction");

    // Integer sums are not reductions over non-associative arithmetic.
    let ints = "pub fn f(v: &[usize]) -> usize { v.iter().sum::<usize>() }\n";
    assert!(reduction(MODEL_FILE, ints).is_empty());

    // The kernel suite itself is exempt — it carries _serial parity twins.
    assert!(reduction("crates/tensor/src/kernels.rs", src).is_empty());
}

#[test]
fn float_folds_and_accumulator_loops_are_flagged() {
    let fold = "pub fn f(v: &[f32]) -> f32 { v.iter().fold(0.0f32, |a, b| a + b) }\n";
    let v = reduction(MODEL_FILE, fold);
    assert_eq!(v.len(), 1, "{v:?}");

    let acc = "pub fn f(v: &[f32]) -> f32 {\n    let mut total = 0.0f32;\n    for x in v {\n        total += x;\n    }\n    total\n}\n";
    let v = reduction(MODEL_FILE, acc);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
}

#[test]
fn marked_reductions_are_accepted_at_line_or_fn_level() {
    let line = "pub fn f(v: &[f32]) -> f32 {\n    // om-lint: reduction-ok(serial, fixed order)\n    v.iter().sum::<f32>()\n}\n";
    assert!(reduction(MODEL_FILE, line).is_empty());

    let fn_level = "// om-lint: reduction-ok(five accumulators, one argument)\npub fn f(v: &[f32]) -> (f32, f32) {\n    let mut a = 0.0f32;\n    let mut b = 0.0f32;\n    for x in v { a += x; b += x * x; }\n    (a, b)\n}\n";
    assert!(reduction(MODEL_FILE, fn_level).is_empty());
}

// ---------------------------------------------------------------------------
// simd-ulp-tolerance
// ---------------------------------------------------------------------------

#[test]
fn simd_marked_kernels_must_register_a_ulp_tolerance() {
    let kernels = "// om-lint: simd — vectorised inner product\npub fn dot(a: &[f32], b: &[f32]) -> f32 { 0.0 }\npub fn dot_serial(a: &[f32], b: &[f32]) -> f32 { 0.0 }\n";
    let parity_without = "fn t() { assert!(true); }\n";
    let v = check_simd_tolerance(
        "crates/tensor/src/kernels.rs",
        &lex(kernels),
        &lex(parity_without),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "simd-ulp-tolerance");

    let parity_with = "fn t() { let tol = ulp_tolerance(\"dot\"); assert_eq!(tol, 0); }\n";
    assert!(check_simd_tolerance(
        "crates/tensor/src/kernels.rs",
        &lex(kernels),
        &lex(parity_with)
    )
    .is_empty());

    // Unmarked kernels owe nothing to the tolerance table.
    let unmarked = "pub fn dot(a: &[f32], b: &[f32]) -> f32 { 0.0 }\npub fn dot_serial(a: &[f32], b: &[f32]) -> f32 { 0.0 }\n";
    assert!(check_simd_tolerance(
        "crates/tensor/src/kernels.rs",
        &lex(unmarked),
        &lex(parity_without)
    )
    .is_empty());
}

// ---------------------------------------------------------------------------
// env-registry
// ---------------------------------------------------------------------------

#[test]
fn undeclared_env_vars_are_flagged_and_declared_ones_recorded() {
    let mut used = BTreeSet::new();
    let src = "pub fn f() {\n    let _ = std::env::var(\"OM_NOT_A_KNOB\");\n    let _ = std::env::var(\"OM_THREADS\");\n}\n";
    let v = env_registry::scan_file(MODEL_FILE, &lex(src), &mut used);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "env-registry");
    assert_eq!(v[0].line, 2);
    assert!(used.contains("OM_THREADS"));

    // Indirect readers are caught by the literal, not the call shape.
    let mut used = BTreeSet::new();
    let indirect = "pub fn f() -> usize { env_usize(\"OM_SERVE_BATCH\", 8) }\n";
    assert!(env_registry::scan_file(MODEL_FILE, &lex(indirect), &mut used).is_empty());
    assert!(used.contains("OM_SERVE_BATCH"));

    // The lint crate itself (registry + fixtures) is out of scope.
    let mut used = BTreeSet::new();
    let v = env_registry::scan_file("crates/lint/src/fixture.rs", &lex(src), &mut used);
    assert!(v.is_empty());
}

#[test]
fn stale_registry_entries_are_flagged() {
    // A usage set missing a declared variable → one stale violation each.
    let mut used: BTreeSet<String> = env_registry::REGISTRY
        .iter()
        .map(|e| e.name.to_string())
        .collect();
    assert!(env_registry::check_stale(&used).is_empty());
    used.remove("OM_THREADS");
    let v = env_registry::check_stale(&used);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("OM_THREADS"));
}

#[test]
fn readme_drift_fails_the_env_table_check() {
    let good = format!(
        "# OmniMatch\n<!-- om-env-table:begin -->\n{}<!-- om-env-table:end -->\n",
        env_registry::render_table()
    );
    assert!(env_registry::check_readme(&good).is_ok());
    let drifted = good.replace("| `OM_LOG` |", "| `OM_LOGG` |");
    assert!(env_registry::check_readme(&drifted).is_err());
    assert!(env_registry::check_readme("# no markers at all\n").is_err());
}
