//! `om-lint` binary: lint the workspace, exit non-zero on violations.
//!
//! Usage:
//!   `cargo lint` (alias) / `cargo run -p om-lint -- [ROOT]` — run every pass;
//!   `cargo lint -- --env-table` — print the env registry's markdown table
//!   (paste between README's `om-env-table` markers);
//!   `cargo lint -- --metric-table` — print the metric registry's markdown
//!   table (paste between README's `om-metric-table` markers);
//!   `cargo lint -- --env-table --check` / `--metric-table --check` — fail
//!   if README's embedded table has drifted from the registry (the CI
//!   drift gates).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/lint/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("om-lint manifest has a workspace root")
        .to_path_buf()
}

/// Print a registry table, or with `check`, diff it against README.
fn table_mode(
    root: &Path,
    check: bool,
    what: &str,
    rendered: String,
    check_readme: impl Fn(&str) -> Result<(), String>,
) -> ExitCode {
    if !check {
        print!("{rendered}");
        return ExitCode::SUCCESS;
    }
    let readme = match std::fs::read_to_string(root.join("README.md")) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("om-lint: cannot read README.md under {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    match check_readme(&readme) {
        Ok(()) => {
            println!("om-lint: README {what} table matches the registry");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("om-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env_table = args.iter().any(|a| a == "--env-table");
    let metric_table = args.iter().any(|a| a == "--metric-table");
    let check = args.iter().any(|a| a == "--check");
    let root = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);

    if env_table {
        return table_mode(
            &root,
            check,
            "env-var",
            om_lint::env_registry::render_table(),
            om_lint::env_registry::check_readme,
        );
    }
    if metric_table {
        return table_mode(
            &root,
            check,
            "metric",
            om_lint::metric_registry::render_table(),
            om_lint::metric_registry::check_readme,
        );
    }

    let report = om_lint::lint_repo(&root);
    if report.violations.is_empty() {
        println!("om-lint: clean ({} files checked)", report.files);
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "om-lint: {} violation(s) in {} files checked",
            report.violations.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}
