//! Shape-rearranging ops: reshape, concatenation, embedding gather,
//! unfold (im2col for the TextCNN), max-over-time pooling and row selection.

use super::{acc, wants_grad};
use crate::{kernels, runtime};
use crate::Tensor;

impl Tensor {
    /// Reinterpret the data under a new shape with the same element count.
    /// Data is copied (tensors are immutable once built); gradient passes
    /// through unchanged.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        assert_eq!(
            n,
            self.numel(),
            "reshape: cannot view {} elements as {:?}",
            self.numel(),
            dims
        );
        Tensor::from_op(
            self.to_vec(),
            dims,
            vec![self.clone()],
            Box::new(move |g, parents| acc(&parents[0], g)),
        )
    }

    /// Concatenate 2-D tensors along the column axis: `[m, n1] ⊕ [m, n2] ⊕ …`
    /// This is the `⊕` of the paper (Eqs. 10/11/18).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: need at least one tensor");
        let m = parts[0].shape().as_2d().0;
        let widths: Vec<usize> = parts
            .iter()
            .map(|t| {
                let (mi, ni) = t.shape().as_2d();
                assert_eq!(mi, m, "concat_cols: row count mismatch");
                ni
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = vec![0.0f32; m * total];
        let mut offset = 0usize;
        for (t, &w) in parts.iter().zip(&widths) {
            let d = t.data();
            for i in 0..m {
                out[i * total + offset..i * total + offset + w]
                    .copy_from_slice(&d[i * w..(i + 1) * w]);
            }
            offset += w;
        }
        let parents: Vec<Tensor> = parts.iter().map(|t| (*t).clone()).collect();
        Tensor::from_op(
            out,
            &[m, total],
            parents,
            Box::new(move |g, parents| {
                let mut offset = 0usize;
                for (t, &w) in parents.iter().zip(&widths) {
                    if wants_grad(t) {
                        let mut gp = vec![0.0f32; m * w];
                        for i in 0..m {
                            gp[i * w..(i + 1) * w].copy_from_slice(
                                &g[i * total + offset..i * total + offset + w],
                            );
                        }
                        acc(t, &gp);
                    }
                    offset += w;
                }
            }),
        )
    }

    /// Concatenate 2-D tensors along the row axis:
    /// `[m1, n] ⊕ [m2, n] ⊕ … → [Σmᵢ, n]`. Used to stack the source and
    /// target feature blocks for the domain classifiers.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: need at least one tensor");
        let n = parts[0].shape().as_2d().1;
        let heights: Vec<usize> = parts
            .iter()
            .map(|t| {
                let (mi, ni) = t.shape().as_2d();
                assert_eq!(ni, n, "concat_rows: column count mismatch");
                mi
            })
            .collect();
        let total: usize = heights.iter().sum();
        let mut out = Vec::with_capacity(total * n);
        for t in parts {
            out.extend_from_slice(&t.data());
        }
        let parents: Vec<Tensor> = parts.iter().map(|t| (*t).clone()).collect();
        Tensor::from_op(
            out,
            &[total, n],
            parents,
            Box::new(move |g, parents| {
                let mut offset = 0usize;
                for (t, &h) in parents.iter().zip(&heights) {
                    if wants_grad(t) {
                        acc(t, &g[offset * n..(offset + h) * n]);
                    }
                    offset += h;
                }
            }),
        )
    }

    /// Stack 1-D or row tensors vertically into `[k, n]`.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows: need at least one tensor");
        let n = parts[0].numel();
        let k = parts.len();
        let mut out = Vec::with_capacity(k * n);
        for t in parts {
            assert_eq!(t.numel(), n, "stack_rows: length mismatch");
            out.extend_from_slice(&t.data());
        }
        let parents: Vec<Tensor> = parts.iter().map(|t| (*t).clone()).collect();
        Tensor::from_op(
            out,
            &[k, n],
            parents,
            Box::new(move |g, parents| {
                for (i, t) in parents.iter().enumerate() {
                    if wants_grad(t) {
                        acc(t, &g[i * n..(i + 1) * n]);
                    }
                }
            }),
        )
    }

    /// Gather rows of an embedding table `[vocab, d]` by index → `[len, d]`.
    /// Backward scatters gradients back into the gathered rows, which is the
    /// standard sparse embedding gradient.
    pub fn embedding_lookup(&self, indices: &[usize]) -> Tensor {
        let (vocab, d) = self.shape().as_2d();
        for &ix in indices {
            assert!(ix < vocab, "embedding_lookup: index {ix} out of vocab {vocab}");
        }
        let out = {
            let data = self.data();
            let dref: &[f32] = &data;
            kernels::fill_rows(indices.len(), d, 64, |row, dst| {
                let ix = indices[row];
                dst.copy_from_slice(&dref[ix * d..(ix + 1) * d]);
            })
        };
        let idx = indices.to_vec();
        Tensor::from_op(
            out,
            &[indices.len(), d],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let mut gp = vec![0.0f32; vocab * d];
                    for (row, &ix) in idx.iter().enumerate() {
                        for j in 0..d {
                            gp[ix * d + j] += g[row * d + j];
                        }
                    }
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Unfold (im2col) a batch of embedded documents for 1-D convolution:
    /// `[batch, len, d]` with window `k` → `[batch * (len-k+1), k*d]`.
    ///
    /// A convolution with `f` filters of width `k` then reduces to a single
    /// matmul with a `[k*d, f]` weight, which is how the TextCNN of §4.2 is
    /// implemented.
    pub fn unfold_windows(&self, k: usize) -> Tensor {
        let _span = crate::obs_span("ops.unfold");
        let dims = self.dims();
        assert_eq!(dims.len(), 3, "unfold_windows expects [batch, len, d]");
        let (b, l, d) = (dims[0], dims[1], dims[2]);
        assert!(k >= 1 && k <= l, "unfold_windows: window {k} out of range for len {l}");
        let t = l - k + 1;
        let out = {
            let data = self.data();
            let dref: &[f32] = &data;
            kernels::fill_rows(b * t, k * d, 16, |row, dst| {
                let (bi, wi) = (row / t, row % t);
                let doc = &dref[bi * l * d..(bi + 1) * l * d];
                dst.copy_from_slice(&doc[wi * d..(wi + k) * d]);
            })
        };
        Tensor::from_op(
            out,
            &[b * t, k * d],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    // Each document's gradient rows are disjoint; windows
                    // within a document overlap and stay sequential.
                    let mut gp = vec![0.0f32; b * l * d];
                    runtime::parallel_rows_mut(&mut gp, l * d, 1, |bi0, block| {
                        for (db, doc) in block.chunks_mut(l * d).enumerate() {
                            let bi = bi0 + db;
                            for wi in 0..t {
                                let src = &g[(bi * t + wi) * k * d..(bi * t + wi + 1) * k * d];
                                let dst = &mut doc[wi * d..(wi + k) * d];
                                for (o, &x) in dst.iter_mut().zip(src) {
                                    *o += x;
                                }
                            }
                        }
                    });
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Max-over-time pooling (Eqs. 6–7): `[batch, t, f] → [batch, f]`,
    /// taking the maximum over the time axis; backward routes gradient to
    /// the argmax position only.
    pub fn max_over_time(&self) -> Tensor {
        let dims = self.dims();
        assert_eq!(dims.len(), 3, "max_over_time expects [batch, t, f]");
        let (b, t, f) = (dims[0], dims[1], dims[2]);
        assert!(t >= 1, "max_over_time: empty time axis");
        let mut packed = vec![(f32::NEG_INFINITY, 0usize); b * f];
        {
            let data = self.data();
            let dref: &[f32] = &data;
            runtime::parallel_rows_mut(&mut packed, f, 4, |bi0, block| {
                for (db, brow) in block.chunks_mut(f).enumerate() {
                    let bi = bi0 + db;
                    for ti in 0..t {
                        for (fi, slot) in brow.iter_mut().enumerate() {
                            let v = dref[(bi * t + ti) * f + fi];
                            if v > slot.0 {
                                *slot = (v, ti);
                            }
                        }
                    }
                }
            });
        }
        let out: Vec<f32> = packed.iter().map(|&(v, _)| v).collect();
        let arg: Vec<usize> = packed.iter().map(|&(_, ti)| ti).collect();
        Tensor::from_op(
            out,
            &[b, f],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let mut gp = vec![0.0f32; b * t * f];
                    for bi in 0..b {
                        for fi in 0..f {
                            let ti = arg[bi * f + fi];
                            gp[(bi * t + ti) * f + fi] += g[bi * f + fi];
                        }
                    }
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Select rows of a 2-D tensor by index (with repetition allowed);
    /// backward scatters. Used to assemble per-batch user/item features from
    /// cached representation matrices.
    pub fn select_rows(&self, rows: &[usize]) -> Tensor {
        let (m, n) = self.shape().as_2d();
        for &r in rows {
            assert!(r < m, "select_rows: row {r} out of range {m}");
        }
        let out = {
            let d = self.data();
            let dref: &[f32] = &d;
            kernels::fill_rows(rows.len(), n, 64, |i, dst| {
                dst.copy_from_slice(&dref[rows[i] * n..(rows[i] + 1) * n]);
            })
        };
        let rows_v = rows.to_vec();
        Tensor::from_op(
            out,
            &[rows.len(), n],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let mut gp = vec![0.0f32; m * n];
                    for (i, &r) in rows_v.iter().enumerate() {
                        for j in 0..n {
                            gp[r * n + j] += g[i * n + j];
                        }
                    }
                    acc(&parents[0], &gp);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn reshape_preserves_data_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let y = x.reshape(&[4]);
        assert_eq!(y.dims(), &[4]);
        y.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn concat_cols_backward_splits() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0], &[1, 1]).requires_grad();
        let c = Tensor::concat_cols(&[&a, &b]);
        let w = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        c.mul(&w).sum_all().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![10.0, 20.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![30.0]);
    }

    #[test]
    fn concat_rows_stacks_vertically() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]).requires_grad();
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0, 7.0, 7.0], &[3, 2]);
        c.mul(&w).sum_all().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![7.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn concat_rows_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = Tensor::concat_rows(&[&a, &b]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        let m = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(m.dims(), &[2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 5.0, 5.0], &[2, 2]);
        m.mul(&w).sum_all().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![5.0, 5.0]);
    }

    #[test]
    fn embedding_lookup_gathers_and_scatters() {
        let table =
            Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], &[3, 2]).requires_grad();
        let e = table.embedding_lookup(&[2, 0, 2]);
        assert_eq!(e.to_vec(), vec![2.0, 2.0, 0.0, 0.0, 2.0, 2.0]);
        e.sum_all().backward();
        // row 2 appears twice
        assert_eq!(
            table.grad_vec().unwrap(),
            vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn unfold_windows_im2col() {
        // batch=1, len=3, d=2: rows [1,2],[3,4],[5,6]; k=2 → 2 windows
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        let u = x.unfold_windows(2);
        assert_eq!(u.dims(), &[2, 4]);
        assert_eq!(u.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn unfold_backward_overlaps_accumulate() {
        let x = Tensor::from_vec(vec![1.0; 6], &[1, 3, 2]).requires_grad();
        let u = x.unfold_windows(2);
        u.sum_all().backward();
        // middle row participates in both windows → grad 2
        assert_eq!(
            x.grad_vec().unwrap(),
            vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn max_over_time_picks_argmax() {
        // batch=1, t=3, f=2
        let x = Tensor::from_vec(vec![1.0, 9.0, 5.0, 2.0, 3.0, 4.0], &[1, 3, 2]).requires_grad();
        let m = x.max_over_time();
        assert_eq!(m.to_vec(), vec![5.0, 9.0]);
        m.sum_all().backward();
        assert_eq!(
            x.grad_vec().unwrap(),
            vec![0.0, 1.0, 1.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn select_rows_with_repeats() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let s = x.select_rows(&[1, 1, 0]);
        assert_eq!(s.dims(), &[3, 2]);
        s.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1.0, 1.0, 2.0, 2.0]);
    }
}
