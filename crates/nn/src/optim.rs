//! First-order optimizers. The paper trains with Adadelta
//! (lr = 0.02, ρ = 0.95, §5.4); SGD and Adam are provided for the baselines
//! and ablations.

use std::collections::BTreeMap;

use om_tensor::Tensor;

use crate::serialize::CheckpointError;

/// One named optimizer state slot (e.g. Adadelta's `sq_avg`), stored **by
/// parameter index** — `per_param[i]` belongs to `params()[i]`. Tensor ids
/// are ephemeral (a restarted process allocates fresh ids), so exported
/// state is keyed by position in the parameter list, which is stable for a
/// given model construction order. `None` marks a parameter the optimizer
/// has not touched yet (lazy state allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct OptSlot {
    /// Slot name, e.g. `"sq_avg"`; checked on import.
    pub name: String,
    /// Per-parameter state vector, indexed like [`Optimizer::params`].
    pub per_param: Vec<Option<Vec<f32>>>,
}

/// Portable snapshot of an optimizer's internal state, suitable for
/// checkpointing (see `om_nn::serialize::{encode_opt_state,
/// decode_opt_state}`).
#[derive(Debug, Clone, PartialEq)]
pub struct OptState {
    /// Which optimizer produced this state (`"sgd"`, `"adam"`,
    /// `"adadelta"`); import refuses a mismatched kind.
    pub kind: String,
    /// Step counter for optimizers that have one (Adam's `t`); 0 otherwise.
    pub step: u64,
    /// Named state slots in a fixed, kind-specific order.
    pub slots: Vec<OptSlot>,
}

fn export_slot(name: &str, params: &[Tensor], map: &BTreeMap<u64, Vec<f32>>) -> OptSlot {
    OptSlot {
        name: name.to_string(),
        per_param: params.iter().map(|p| map.get(&p.id()).cloned()).collect(),
    }
}

/// Validate one slot against the live parameter list and rebuild the
/// id-keyed map. Pure — touches nothing on failure, so callers can
/// validate every slot before committing any.
fn import_slot(
    state: &OptState,
    index: usize,
    expect_name: &str,
    params: &[Tensor],
) -> Result<BTreeMap<u64, Vec<f32>>, CheckpointError> {
    let slot = state
        .slots
        .get(index)
        .ok_or_else(|| CheckpointError::StateMismatch(format!("missing slot `{expect_name}`")))?;
    if slot.name != expect_name {
        return Err(CheckpointError::StateMismatch(format!(
            "slot {index} is `{}`, expected `{expect_name}`",
            slot.name
        )));
    }
    if slot.per_param.len() != params.len() {
        return Err(CheckpointError::StateMismatch(format!(
            "slot `{expect_name}` covers {} parameters, optimizer has {}",
            slot.per_param.len(),
            params.len()
        )));
    }
    let mut map = BTreeMap::new();
    for (p, entry) in params.iter().zip(&slot.per_param) {
        if let Some(v) = entry {
            if v.len() != p.numel() {
                return Err(CheckpointError::StateMismatch(format!(
                    "slot `{expect_name}` has {} values for a {}-element parameter",
                    v.len(),
                    p.numel()
                )));
            }
            map.insert(p.id(), v.clone());
        }
    }
    Ok(map)
}

fn check_kind(state: &OptState, expect: &str, n_slots: usize) -> Result<(), CheckpointError> {
    if state.kind != expect {
        return Err(CheckpointError::StateMismatch(format!(
            "state is for `{}`, optimizer is `{expect}`",
            state.kind
        )));
    }
    if state.slots.len() != n_slots {
        return Err(CheckpointError::StateMismatch(format!(
            "`{expect}` expects {n_slots} slots, state has {}",
            state.slots.len()
        )));
    }
    Ok(())
}

/// Common optimizer interface: owns handles to the parameters it updates.
pub trait Optimizer {
    /// Apply one update using the gradients currently accumulated on the
    /// parameters, then leave gradients untouched (call
    /// [`Optimizer::zero_grad`] to clear them).
    fn step(&mut self);

    /// Clear gradients on all managed parameters.
    fn zero_grad(&mut self);

    /// The managed parameters.
    fn params(&self) -> &[Tensor];
}

fn apply_update(param: &Tensor, update: impl Fn(usize, f32, f32) -> f32) {
    let grad = match param.grad_vec() {
        Some(g) => g,
        None => return, // parameter unused this step
    };
    let mut data = param.data_mut();
    for (i, (d, g)) in data.iter_mut().zip(grad.iter()).enumerate() {
        *d = update(i, *d, *g);
    }
}

// --------------------------------------------------------------------- SGD

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: BTreeMap<u64, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Sgd {
        Sgd::with_momentum(params, lr, 0.0)
    }

    /// SGD with heavy-ball momentum.
    pub fn with_momentum(params: Vec<Tensor>, lr: f32, momentum: f32) -> Sgd {
        Sgd {
            params,
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }

    /// Snapshot the momentum state, indexed by parameter position.
    pub fn export_state(&self) -> OptState {
        OptState {
            kind: "sgd".to_string(),
            step: 0,
            slots: vec![export_slot("velocity", &self.params, &self.velocity)],
        }
    }

    /// Restore a [`Sgd::export_state`] snapshot. All-or-nothing: on error
    /// the optimizer is unchanged.
    pub fn import_state(&mut self, state: &OptState) -> Result<(), CheckpointError> {
        check_kind(state, "sgd", 1)?;
        self.velocity = import_slot(state, 0, "velocity", &self.params)?;
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            let grad = match p.grad_vec() {
                Some(g) => g,
                None => continue,
            };
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| vec![0.0; p.numel()]);
                let mut data = p.data_mut();
                for ((d, g), vi) in data.iter_mut().zip(&grad).zip(v.iter_mut()) {
                    *vi = self.momentum * *vi + g;
                    *d -= self.lr * *vi;
                }
            } else {
                apply_update(p, |_, d, g| d - self.lr * g);
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

// -------------------------------------------------------------------- Adam

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: BTreeMap<u64, Vec<f32>>,
    v: BTreeMap<u64, Vec<f32>>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) betas.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Adam {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Snapshot step counter and both moment estimates, indexed by
    /// parameter position.
    pub fn export_state(&self) -> OptState {
        OptState {
            kind: "adam".to_string(),
            step: self.t,
            slots: vec![
                export_slot("m", &self.params, &self.m),
                export_slot("v", &self.params, &self.v),
            ],
        }
    }

    /// Restore an [`Adam::export_state`] snapshot. All-or-nothing: on
    /// error the optimizer is unchanged.
    pub fn import_state(&mut self, state: &OptState) -> Result<(), CheckpointError> {
        check_kind(state, "adam", 2)?;
        let m = import_slot(state, 0, "m", &self.params)?;
        let v = import_slot(state, 1, "v", &self.params)?;
        self.t = state.step;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let grad = match p.grad_vec() {
                Some(g) => g,
                None => continue,
            };
            let m = self.m.entry(p.id()).or_insert_with(|| vec![0.0; p.numel()]);
            let v = self.v.entry(p.id()).or_insert_with(|| vec![0.0; p.numel()]);
            let mut data = p.data_mut();
            for i in 0..grad.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

// ---------------------------------------------------------------- Adadelta

/// Summary of one optimizer step, collected only when observability is
/// enabled (`OM_OBS=1`). All values are L2 norms / means over every managed
/// parameter element, accumulated in f64 so the summary itself is stable.
/// Collection reads values the update loop already computes — it never
/// changes the f32 arithmetic of the update, so training results are
/// bitwise identical with stats on or off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// L2 norm of the full gradient vector.
    pub grad_norm: f64,
    /// L2 norm of the applied update (lr · delta).
    pub update_norm: f64,
    /// L2 norm of the parameters after the update.
    pub param_norm: f64,
    /// Mean of the running squared-gradient average (optimizer state).
    pub sq_avg_mean: f64,
    /// Mean of the running squared-delta accumulator (optimizer state).
    pub acc_delta_mean: f64,
}

/// Adadelta (Zeiler 2012) — the optimizer the paper uses, with
/// lr = 0.02 and ρ = 0.95 (§5.4).
pub struct Adadelta {
    params: Vec<Tensor>,
    lr: f32,
    rho: f32,
    eps: f32,
    sq_avg: BTreeMap<u64, Vec<f32>>,
    acc_delta: BTreeMap<u64, Vec<f32>>,
    last_stats: Option<StepStats>,
}

impl Adadelta {
    /// Build with explicit hyper-parameters.
    pub fn new(params: Vec<Tensor>, lr: f32, rho: f32) -> Adadelta {
        Adadelta {
            params,
            lr,
            rho,
            eps: 1e-6,
            sq_avg: BTreeMap::new(),
            acc_delta: BTreeMap::new(),
            last_stats: None,
        }
    }

    /// The paper's configuration: lr 0.02, ρ 0.95.
    pub fn paper(params: Vec<Tensor>) -> Adadelta {
        Adadelta::new(params, 0.02, 0.95)
    }

    /// Stats from the most recent [`Optimizer::step`], or `None` when
    /// observability was disabled at the time (stats are skipped entirely
    /// to keep the hot path free of extra work).
    pub fn step_stats(&self) -> Option<StepStats> {
        self.last_stats
    }

    /// Snapshot both running accumulators, indexed by parameter position.
    pub fn export_state(&self) -> OptState {
        OptState {
            kind: "adadelta".to_string(),
            step: 0,
            slots: vec![
                export_slot("sq_avg", &self.params, &self.sq_avg),
                export_slot("acc_delta", &self.params, &self.acc_delta),
            ],
        }
    }

    /// Restore an [`Adadelta::export_state`] snapshot. All-or-nothing: on
    /// error the optimizer is unchanged.
    pub fn import_state(&mut self, state: &OptState) -> Result<(), CheckpointError> {
        check_kind(state, "adadelta", 2)?;
        let sq_avg = import_slot(state, 0, "sq_avg", &self.params)?;
        let acc_delta = import_slot(state, 1, "acc_delta", &self.params)?;
        self.sq_avg = sq_avg;
        self.acc_delta = acc_delta;
        Ok(())
    }
}

impl Optimizer for Adadelta {
    // om-lint: reduction-ok(five f64 telemetry accumulators over params in
    // fixed registration order, single-threaded — the update itself is
    // element-wise; the sums only feed StepStats observability)
    fn step(&mut self) {
        // om-fault: kill-point
        om_obs::fault::kill_point("optim-step");
        let collect = om_obs::enabled();
        let mut grad_sq = 0.0f64;
        let mut upd_sq = 0.0f64;
        let mut param_sq = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut n_elems = 0u64;
        for p in &self.params {
            let grad = match p.grad_vec() {
                Some(g) => g,
                None => continue,
            };
            let sq = self
                .sq_avg
                .entry(p.id())
                .or_insert_with(|| vec![0.0; p.numel()]);
            let acc = self
                .acc_delta
                .entry(p.id())
                .or_insert_with(|| vec![0.0; p.numel()]);
            let mut data = p.data_mut();
            for i in 0..grad.len() {
                let g = grad[i];
                sq[i] = self.rho * sq[i] + (1.0 - self.rho) * g * g;
                let delta = ((acc[i] + self.eps).sqrt() / (sq[i] + self.eps).sqrt()) * g;
                acc[i] = self.rho * acc[i] + (1.0 - self.rho) * delta * delta;
                data[i] -= self.lr * delta;
                if collect {
                    let upd = (self.lr * delta) as f64;
                    grad_sq += (g as f64) * (g as f64);
                    upd_sq += upd * upd;
                    param_sq += (data[i] as f64) * (data[i] as f64);
                    sq_sum += sq[i] as f64;
                    acc_sum += acc[i] as f64;
                }
            }
            if collect {
                n_elems += grad.len() as u64;
            }
        }
        self.last_stats = if collect && n_elems > 0 {
            let n = n_elems as f64;
            Some(StepStats {
                grad_norm: grad_sq.sqrt(),
                update_norm: upd_sq.sqrt(),
                param_norm: param_sq.sqrt(),
                sq_avg_mean: sq_sum / n,
                acc_delta_mean: acc_sum / n,
            })
        } else {
            None
        };
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: loss = Σ (x - target)²; every optimizer must descend.
    fn quadratic_descends(mut make: impl FnMut(Vec<Tensor>) -> Box<dyn Optimizer>) -> f32 {
        let x = Tensor::from_vec(vec![5.0, -3.0], &[2]).requires_grad();
        let mut opt = make(vec![x.clone()]);
        let mut last = f32::INFINITY;
        for _ in 0..2000 {
            opt.zero_grad();
            let loss = x.square().sum_all();
            loss.backward();
            opt.step();
            last = loss.item();
        }
        last
    }

    #[test]
    fn sgd_descends() {
        let end = quadratic_descends(|p| Box::new(Sgd::new(p, 0.1)));
        assert!(end < 1e-4, "final loss {end}");
    }

    #[test]
    fn sgd_momentum_descends() {
        let end = quadratic_descends(|p| Box::new(Sgd::with_momentum(p, 0.05, 0.9)));
        assert!(end < 1e-4, "final loss {end}");
    }

    #[test]
    fn adam_descends() {
        let end = quadratic_descends(|p| Box::new(Adam::new(p, 0.1)));
        assert!(end < 1e-2, "final loss {end}");
    }

    #[test]
    fn adadelta_descends() {
        let end = quadratic_descends(|p| Box::new(Adadelta::new(p, 1.0, 0.9)));
        assert!(end < 1.0, "final loss {end}"); // adadelta starts slowly
    }

    #[test]
    fn unused_parameter_is_skipped() {
        let used = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let unused = Tensor::from_vec(vec![9.0], &[1]).requires_grad();
        let mut opt = Sgd::new(vec![used.clone(), unused.clone()], 0.5);
        used.square().sum_all().backward();
        opt.step();
        assert_eq!(unused.to_vec(), vec![9.0]);
        assert!(used.to_vec()[0] < 1.0);
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::ones(&[1]).requires_grad();
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        x.square().sum_all().backward();
        assert!(x.grad_vec().is_some());
        opt.zero_grad();
        assert!(x.grad_vec().is_none());
    }

    #[test]
    fn paper_adadelta_settings() {
        let opt = Adadelta::paper(vec![]);
        assert_eq!(opt.lr, 0.02);
        assert_eq!(opt.rho, 0.95);
    }

    /// One gradient step on two parameters (second deliberately unused so
    /// its state stays lazily unallocated → `None` in the export).
    fn stepped_pair() -> (Tensor, Tensor) {
        let used = Tensor::from_vec(vec![2.0, -1.0], &[2]).requires_grad();
        let unused = Tensor::from_vec(vec![7.0], &[1]).requires_grad();
        (used, unused)
    }

    #[test]
    fn adadelta_state_roundtrip_resumes_identically() {
        let (used, unused) = stepped_pair();
        let mut opt = Adadelta::new(vec![used.clone(), unused.clone()], 0.5, 0.9);
        used.square().sum_all().backward();
        opt.step();
        opt.zero_grad();
        let state = opt.export_state();
        assert_eq!(state.kind, "adadelta");
        assert_eq!(state.slots[0].name, "sq_avg");
        assert!(state.slots[0].per_param[0].is_some());
        assert!(state.slots[0].per_param[1].is_none(), "unused param lazily absent");

        // A fresh optimizer over *new tensors* (fresh ids — as after a
        // process restart) continues the exact update sequence.
        let resume = |import: bool| {
            let u2 = Tensor::from_vec(used.to_vec(), &[2]).requires_grad();
            let x2 = Tensor::from_vec(unused.to_vec(), &[1]).requires_grad();
            let mut o2 = Adadelta::new(vec![u2.clone(), x2], 0.5, 0.9);
            if import {
                o2.import_state(&state).unwrap();
            }
            u2.square().sum_all().backward();
            o2.step();
            u2.to_vec()
        };
        let with_state = resume(true);

        // Reference: keep stepping the original optimizer.
        used.square().sum_all().backward();
        opt.step();
        assert_eq!(used.to_vec(), with_state, "resumed step must be bitwise identical");
        assert_ne!(resume(false), with_state, "state must actually matter");
    }

    #[test]
    fn adam_state_roundtrip_keeps_step_counter() {
        let (used, unused) = stepped_pair();
        let mut opt = Adam::new(vec![used.clone(), unused.clone()], 0.1);
        used.square().sum_all().backward();
        opt.step();
        let state = opt.export_state();
        assert_eq!((state.kind.as_str(), state.step), ("adam", 1));
        let mut o2 = Adam::new(vec![used.clone(), unused], 0.1);
        o2.import_state(&state).unwrap();
        assert_eq!(o2.t, 1);
        assert_eq!(o2.export_state(), state);
    }

    #[test]
    fn sgd_state_roundtrip() {
        let (used, unused) = stepped_pair();
        let mut opt = Sgd::with_momentum(vec![used.clone(), unused.clone()], 0.1, 0.9);
        used.square().sum_all().backward();
        opt.step();
        let state = opt.export_state();
        let mut o2 = Sgd::with_momentum(vec![used, unused], 0.1, 0.9);
        o2.import_state(&state).unwrap();
        assert_eq!(o2.export_state(), state);
    }

    #[test]
    fn import_rejects_mismatched_state() {
        let x = Tensor::ones(&[2]).requires_grad();
        let mut ada = Adadelta::new(vec![x.clone()], 0.5, 0.9);
        let sgd_state = Sgd::new(vec![x.clone()], 0.1).export_state();
        assert!(ada.import_state(&sgd_state).is_err(), "wrong kind");

        let mut bad = ada.export_state();
        bad.slots[0].per_param.push(None);
        assert!(ada.import_state(&bad).is_err(), "wrong param count");

        let mut bad_len = ada.export_state();
        bad_len.slots[0].per_param[0] = Some(vec![1.0; 3]);
        assert!(ada.import_state(&bad_len).is_err(), "wrong vec length");

        // Valid import still works and failure left state untouched.
        let good = ada.export_state();
        ada.import_state(&good).unwrap();
        assert_eq!(ada.export_state(), good);
    }

    #[test]
    fn adadelta_step_stats_follow_obs_flag() {
        let run = |obs: bool| {
            om_obs::set_enabled(obs);
            let x = Tensor::from_vec(vec![3.0, -4.0], &[2]).requires_grad();
            let mut opt = Adadelta::new(vec![x.clone()], 1.0, 0.9);
            x.square().sum_all().backward();
            opt.step();
            let out = (x.to_vec(), opt.step_stats());
            om_obs::set_enabled(false);
            out
        };
        let (x_off, stats_off) = run(false);
        let (x_on, stats_on) = run(true);
        // Stats only exist when enabled, and collecting them never changes
        // the actual parameter update.
        assert!(stats_off.is_none());
        let s = stats_on.expect("stats collected when obs is enabled");
        assert_eq!(x_off, x_on);
        // grad = 2x = (6, -8) → ‖g‖ = 10.
        assert!((s.grad_norm - 10.0).abs() < 1e-9, "{}", s.grad_norm);
        assert!(s.update_norm > 0.0 && s.param_norm > 0.0);
        assert!(s.sq_avg_mean > 0.0 && s.acc_delta_mean > 0.0);
    }
}
