//! Offline representation precompute: contiguous embedding arenas.
//!
//! The towers are the expensive half of scoring (TextCNN over a review
//! document per entity); the rating head is a small MLP over concatenated
//! features. Serving therefore encodes every target-domain item — and
//! every warm user — **once**, into row-major `[n, dim]` f32 arenas, and
//! a request only runs the user tower when its user is cold (or not even
//! that, for warm users).
//!
//! Determinism: every forward here runs under [`om_nn::inference_mode`]
//! (no tape, no dropout, nothing drawn from the RNG), and every kernel in
//! the tower is row-independent with a fixed per-element reduction order,
//! so arena rows are bitwise identical no matter how the precompute was
//! batched — and bitwise identical to a tower run at request time. Tests
//! assert both.

use std::collections::BTreeMap;
use std::path::Path;

use om_data::types::{ItemId, UserId};
use om_tensor::seeded_rng;
use omnimatch_core::model::DomainSide;
use omnimatch_core::{CorpusViews, OmniMatchModel};

use crate::blob::{write_blob, ArenaBlob, BlobError, BlobKind, Verify};

/// Backing storage of an arena's `[len, dim]` feature block: owned rows
/// from a tower precompute / raw synthesis, or a zero-copy window into a
/// memory-mapped [`ArenaBlob`]. Scoring reads the same `&[f32]` either
/// way, so every engine path is storage-agnostic (and the blob round-trip
/// test can demand bitwise-equal scores).
pub(crate) enum Rows {
    /// Heap-owned rows.
    Owned(Vec<f32>),
    /// Rows borrowed from a memory-mapped blob.
    Mapped(crate::mmap::F32View),
}

impl Rows {
    fn as_slice(&self) -> &[f32] {
        match self {
            Rows::Owned(v) => v,
            Rows::Mapped(m) => m.as_slice(),
        }
    }
}

/// Every target-domain item's features, `[len, dim]` row-major.
pub struct ItemArena {
    ids: Vec<ItemId>,
    index: BTreeMap<ItemId, usize>,
    data: Rows,
    dim: usize,
}

impl ItemArena {
    /// Encode all items of `views` (dense-index order) in batches of
    /// `batch` documents. The batch size is a throughput knob only; it
    /// cannot affect any bit of the result.
    pub fn build(model: &OmniMatchModel, views: &CorpusViews, batch: usize) -> ItemArena {
        let _mode = om_nn::inference_mode();
        let ids = views.items();
        let dim = model.config().item_dim;
        let mut data = Vec::with_capacity(ids.len() * dim);
        // Never drawn from under inference mode; the signature demands one.
        let mut rng = seeded_rng(0);
        for chunk in ids.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&i| views.item_doc(i)).collect();
            let feats = model.item_features(&docs, false, &mut rng);
            data.extend_from_slice(&feats.data());
        }
        ItemArena::from_rows(ids, Rows::Owned(data), dim)
    }

    /// Assemble an arena from pre-computed feature rows (e.g. the
    /// serving-scale synthetic presets of `om_data::synth`). `data` is
    /// `[ids.len(), dim]` row-major; ids must be unique.
    pub fn from_raw(ids: Vec<ItemId>, data: Vec<f32>, dim: usize) -> ItemArena {
        ItemArena::from_rows(ids, Rows::Owned(data), dim)
    }

    pub(crate) fn from_rows(ids: Vec<ItemId>, data: Rows, dim: usize) -> ItemArena {
        assert_eq!(data.as_slice().len(), ids.len() * dim, "ragged item arena");
        let index: BTreeMap<ItemId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate item ids in arena");
        ItemArena { ids, index, data, dim }
    }

    /// Load an arena from an `OMAB` blob written by
    /// [`ItemArena::write_blob`].
    pub fn load_blob(path: &Path, verify: Verify) -> Result<ItemArena, BlobError> {
        let blob = ArenaBlob::open(path, verify)?;
        if blob.kind() != BlobKind::Items {
            return Err(BlobError::WrongKind { expected: BlobKind::Items, found: blob.kind() });
        }
        let ids = blob.ids().into_iter().map(ItemId).collect();
        let rows = blob.feature_rows();
        Ok(ItemArena::from_rows(ids, rows, blob.dim()))
    }

    /// Serialize the arena to a length/CRC-framed `OMAB` blob at `path`
    /// (atomic write → fsync → rename).
    pub fn write_blob(&self, path: &Path) -> Result<(), BlobError> {
        let ids: Vec<u32> = self.ids.iter().map(|id| id.0).collect();
        write_blob(path, BlobKind::Items, self.dim, &ids, self.data())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous `[len, dim]` feature block — the right-hand side of
    /// the serving cross join.
    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Item at arena row `i`.
    pub fn id_at(&self, i: usize) -> ItemId {
        self.ids[i]
    }

    /// Arena row of `item`, if present.
    pub fn row_of(&self, item: ItemId) -> Option<usize> {
        self.index.get(&item).copied()
    }
}

/// Warm users' combined target-side features, `[len, dim]` row-major.
/// Cold users are deliberately absent: their tower runs at request time
/// over the auxiliary document (that tower pass *is* the cold-start
/// inference the paper describes).
pub struct UserArena {
    ids: Vec<UserId>,
    index: BTreeMap<UserId, usize>,
    data: Rows,
    dim: usize,
}

impl UserArena {
    /// Encode `warm` users' target documents in batches of `batch`.
    /// Unknown users are skipped (they cannot be encoded without a
    /// document); duplicates collapse to one row.
    pub fn build(
        model: &OmniMatchModel,
        views: &CorpusViews,
        warm: &[UserId],
        batch: usize,
    ) -> UserArena {
        let _mode = om_nn::inference_mode();
        let cfg = model.config();
        let dim = cfg.invariant_dim + cfg.specific_dim;
        // Dedupe preserving *first-occurrence* order: a BTreeSet collect
        // would silently re-sort the arena by id, and a non-deduping pass
        // would feed `from_rows` duplicate ids (redundant rows plus a
        // last-write-wins index), skewing `len()` and
        // `serve.arena.warm_users`.
        let known: Vec<UserId> = {
            let mut seen = BTreeMap::new();
            let mut ordered = Vec::new();
            for &u in warm {
                if views.user_idx(u).is_some() && seen.insert(u, ()).is_none() {
                    ordered.push(u);
                }
            }
            ordered
        };
        let mut data = Vec::with_capacity(known.len() * dim);
        let mut rng = seeded_rng(0);
        for chunk in known.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&u| views.target_doc(u)).collect();
            let feats = model.user_features(&docs, DomainSide::Target, false, &mut rng);
            data.extend_from_slice(&feats.combined.data());
        }
        UserArena::from_rows(known, Rows::Owned(data), dim)
    }

    /// Assemble an arena from pre-computed combined feature rows. `data`
    /// is `[ids.len(), dim]` row-major; ids must be unique.
    pub fn from_raw(ids: Vec<UserId>, data: Vec<f32>, dim: usize) -> UserArena {
        UserArena::from_rows(ids, Rows::Owned(data), dim)
    }

    pub(crate) fn from_rows(ids: Vec<UserId>, data: Rows, dim: usize) -> UserArena {
        assert_eq!(data.as_slice().len(), ids.len() * dim, "ragged user arena");
        let index: BTreeMap<UserId, usize> =
            ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate user ids in arena");
        UserArena { ids, index, data, dim }
    }

    /// Load an arena from an `OMAB` blob written by
    /// [`UserArena::write_blob`].
    pub fn load_blob(path: &Path, verify: Verify) -> Result<UserArena, BlobError> {
        let blob = ArenaBlob::open(path, verify)?;
        if blob.kind() != BlobKind::Users {
            return Err(BlobError::WrongKind { expected: BlobKind::Users, found: blob.kind() });
        }
        let ids = blob.ids().into_iter().map(UserId).collect();
        let rows = blob.feature_rows();
        Ok(UserArena::from_rows(ids, rows, blob.dim()))
    }

    /// Serialize the arena to a length/CRC-framed `OMAB` blob at `path`
    /// (atomic write → fsync → rename).
    pub fn write_blob(&self, path: &Path) -> Result<(), BlobError> {
        let ids: Vec<u32> = self.ids.iter().map(|u| u.0).collect();
        write_blob(path, BlobKind::Users, self.dim, &ids, self.data.as_slice())
    }

    /// Number of warm users held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Warm users in arena row order.
    pub fn ids(&self) -> &[UserId] {
        &self.ids
    }

    /// The cached combined features of `user`, if warm.
    pub fn row(&self, user: UserId) -> Option<&[f32]> {
        self.index
            .get(&user)
            .map(|&i| &self.data.as_slice()[i * self.dim..(i + 1) * self.dim])
    }

    /// A copy of this arena with `user`'s row set to `row`: overwritten in
    /// place if the user is already warm, appended (graduation) otherwise.
    /// This is the shadow-arena build of the online update path — the live
    /// arena is never mutated; callers publish the returned arena through
    /// [`crate::update::ArenaSwap::install`]. `row.len()` must equal
    /// [`UserArena::dim`] (the engine checks and refuses with a typed
    /// error before calling).
    pub fn with_row(&self, user: UserId, row: &[f32]) -> UserArena {
        assert_eq!(row.len(), self.dim, "ragged user arena");
        let mut ids = self.ids.clone();
        let mut data = self.data.as_slice().to_vec();
        match self.index.get(&user) {
            Some(&i) => data[i * self.dim..(i + 1) * self.dim].copy_from_slice(row),
            None => {
                ids.push(user);
                data.extend_from_slice(row);
            }
        }
        UserArena::from_rows(ids, Rows::Owned(data), self.dim)
    }
}
