//! JSONL event-schema round-trip: emit a representative mix of records
//! through the real sinks, then parse every emitted line back and validate
//! it against the schema — the same [`om_obs::report::validate_events`]
//! the CI smoke job and `obs-report` apply.

use om_obs::json::Json;
use om_obs::report::validate_events;
use om_obs::{metrics, Value};

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("om-obs-schema-{tag}-{}", std::process::id()))
}

/// Serialises the tests in this binary: both toggle the process-global
/// enable flag and sink root.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn emitted_stream_round_trips_through_the_schema() {
    let _g = lock();
    let root = temp_root("roundtrip");
    let _ = std::fs::remove_dir_all(&root);
    let prev_root = om_obs::set_out_root(&root);
    let prev = om_obs::set_enabled(true);

    // One of everything the sinks can write.
    assert!(om_obs::run_begin("schema-test"));
    om_obs::emit(
        "epoch",
        &[
            ("epoch", Value::from(0usize)),
            ("total", Value::from(1.25f64)),
            ("rating", Value::from(0.75f32)),
            ("scl", Value::from(0.25f64)),
            ("domain", Value::from(0.25f64)),
        ],
    );
    om_obs::emit(
        "weird chars",
        &[("msg", Value::from("quotes \" backslash \\ newline \n tab \t unicode →"))],
    );
    {
        let _outer = om_obs::span("test.outer");
        let _inner = om_obs::span("test.inner");
    }
    om_obs::trace::busy_add(12_345);
    metrics::counter("test.flops").add(1_000_000);
    metrics::gauge("test.ratio").set(0.5);
    let h = metrics::histogram("test.latency");
    for v in [1u64, 10, 100, 1000, 10_000] {
        h.record(v);
    }
    om_obs::manifest_set("seed", Value::from(7u64));
    om_obs::info!("hello from the schema test");

    let dir = om_obs::run_finish().expect("run should write its artifact");
    om_obs::set_enabled(prev);
    match prev_root {
        Some(p) => {
            om_obs::set_out_root(p);
        }
        None => {
            om_obs::set_out_root(om_obs::out_root());
        }
    }

    // --- events.jsonl: every line parses and satisfies the schema ---
    let text = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let stats = validate_events(&text).unwrap_or_else(|e| panic!("schema violation: {e}"));
    assert!(stats.spans >= 2, "both spans present: {stats:?}");
    assert!(stats.metrics >= 3, "counter+gauge+hist present: {stats:?}");
    assert!(stats.logs >= 1, "log line present: {stats:?}");
    assert!(stats.events >= 3, "epoch + weird + thread_busy: {stats:?}");

    // Values survive the round trip exactly.
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    let epoch = lines
        .iter()
        .find(|l| l.get("kind").and_then(Json::as_str) == Some("epoch"))
        .expect("epoch event");
    assert_eq!(epoch.get("total").and_then(Json::as_f64), Some(1.25));
    assert_eq!(epoch.get("epoch").and_then(Json::as_u64), Some(0));
    let weird = lines
        .iter()
        .find(|l| l.get("kind").and_then(Json::as_str) == Some("weird chars"))
        .expect("weird event");
    assert_eq!(
        weird.get("msg").and_then(Json::as_str),
        Some("quotes \" backslash \\ newline \n tab \t unicode →")
    );
    let hist = lines
        .iter()
        .find(|l| l.get("kind").and_then(Json::as_str) == Some("hist"))
        .expect("hist snapshot");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(5));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(11_111));

    // --- trace.json: valid JSON, Chrome trace shape ---
    let trace = Json::parse(&std::fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(complete.len() >= 2, "span events exported");
    for e in &complete {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
        "thread metadata exported"
    );

    // --- manifest.json ---
    let manifest = Json::parse(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(manifest.get("run").and_then(Json::as_str), Some("schema-test"));
    assert_eq!(
        manifest.get("meta").and_then(|m| m.get("seed")).and_then(Json::as_u64),
        Some(7)
    );

    // --- and the full report renders ---
    let report = om_obs::report::summarize(&dir).unwrap();
    assert!(report.contains("top spans by self-time"), "{report}");
    assert!(report.contains("test.outer"), "{report}");
    assert!(report.contains("loss curves"), "{report}");
    assert!(report.contains("test.latency"), "{report}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn disabled_observability_emits_nothing() {
    let _g = lock();
    let root = temp_root("disabled");
    let _ = std::fs::remove_dir_all(&root);
    let prev_root = om_obs::set_out_root(&root);
    let prev = om_obs::set_enabled(false);

    om_obs::emit("epoch", &[("total", Value::from(1.0f64))]);
    let _s = om_obs::span("dead");
    assert!(!om_obs::run_begin("dead-run"));
    assert!(om_obs::run_finish().is_none());
    assert!(!root.exists(), "disabled sink must not touch the filesystem");

    om_obs::set_enabled(prev);
    if let Some(p) = prev_root {
        om_obs::set_out_root(p);
    }
}
