//! The batched scoring engine.
//!
//! A flush of `B` requests against an arena of `N` items runs:
//!
//! 1. user rows — arena lookups for warm users, one *batched* tower pass
//!    for the cold ones (their auxiliary target documents);
//! 2. `om_tensor::kernels::pair_rows` — the `[B·N, user_dim + item_dim]`
//!    cross join, assembled in parallel;
//! 3. one rating-classifier forward over all `B·N` pairs (the "one GEMM
//!    against the item arena"), then per-row expected stars;
//! 4. per-request sharded top-K via `om_metrics::topk` — the selection
//!    code path the offline eval tables share.
//!
//! Bitwise determinism: every step is per-row independent (the GEMM fixes
//! its reduction order per output element regardless of how many rows the
//! batch has), `concat`/`pair_rows` only copy, and top-K uses a strict
//! total order. Hence `serve_batch([a, b, c])` equals
//! `[serve_one(a), serve_one(b), serve_one(c)]` bit for bit, at any
//! thread count — property-tested in `tests/batching_parity.rs`.

use std::sync::{Arc, Mutex, MutexGuard};

use om_data::types::{ItemId, UserId};
use om_tensor::{kernels, seeded_rng, Tensor};
use omnimatch_core::model::DomainSide;
use omnimatch_core::{CorpusViews, OmniMatchModel};

use crate::arena::{ItemArena, UserArena};
use crate::error::ServeError;
use crate::update::{ArenaGeneration, ArenaSwap, InteractionStore, UpdateOutcome, UserEvent};

/// Engine knobs; [`ServeOptions::from_env`] reads the `OM_SERVE_*`
/// variables documented in the README.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Microbatch flush size (`OM_SERVE_BATCH`, default 8).
    pub batch: usize,
    /// Max queueing delay before a partial batch flushes, in microseconds
    /// (`OM_SERVE_WAIT_US`, default 2000).
    pub wait_us: u64,
    /// Recommendations returned per request (`OM_SERVE_TOPK`, default 10).
    pub topk: usize,
    /// Document batch size for the offline arena precompute.
    pub arena_batch: usize,
    /// Item rows per shard for the sharded engine (`OM_SERVE_SHARD`,
    /// default 8192). Partitioning is a throughput/footprint knob only;
    /// it cannot affect any bit of the result.
    pub shard_items: usize,
    /// Streamed target-domain interactions after which a cold user
    /// graduates to warm inference (`OM_SERVE_WARM_AFTER`, default 5).
    pub warm_after: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            batch: 8,
            wait_us: 2_000,
            topk: 10,
            arena_batch: 64,
            shard_items: 8_192,
            warm_after: 5,
        }
    }
}

impl ServeOptions {
    /// Defaults overridden by the `OM_SERVE_*` variables. A set variable
    /// that does not parse — or parses to zero where the knob needs at
    /// least 1 (`OM_SERVE_BATCH=0` would livelock the batcher,
    /// `OM_SERVE_SHARD=0` would divide the arena into nothing) — is a
    /// [`ServeError::BadEnv`] at parse time, not a panic deep in the
    /// batcher an hour later. Only `OM_SERVE_WAIT_US` accepts 0 (flush
    /// immediately — a duration, not a size).
    pub fn from_env() -> Result<ServeOptions, ServeError> {
        fn env_usize(key: &'static str, default: usize, min: usize) -> Result<usize, ServeError> {
            match std::env::var(key) {
                Ok(raw) => match raw.trim().parse::<usize>() {
                    Ok(v) if v >= min => Ok(v),
                    _ => Err(ServeError::BadEnv { var: key, value: raw }),
                },
                Err(_) => Ok(default),
            }
        }
        let d = ServeOptions::default();
        Ok(ServeOptions {
            batch: env_usize("OM_SERVE_BATCH", d.batch, 1)?,
            wait_us: env_usize("OM_SERVE_WAIT_US", d.wait_us as usize, 0)? as u64,
            topk: env_usize("OM_SERVE_TOPK", d.topk, 1)?,
            arena_batch: d.arena_batch,
            shard_items: env_usize("OM_SERVE_SHARD", d.shard_items, 1)?,
            warm_after: env_usize("OM_SERVE_WARM_AFTER", d.warm_after, 1)?,
        })
    }
}

/// One scoring request: rank the catalogue for `user`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller's correlation id, echoed in the [`Response`].
    pub id: u64,
    /// The user to serve (warm or cold; must be a scenario user).
    pub user: UserId,
    /// Arrival time on the caller's clock, microseconds (drives the
    /// microbatcher's wait deadline; not used by scoring).
    pub arrive_us: u64,
}

/// Top-K recommendations for one request, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::user`].
    pub user: UserId,
    /// `(item, expected_stars)`, descending score, NaN-last, ties by
    /// arena order.
    pub top: Vec<(ItemId, f32)>,
}

/// A loaded model plus its precomputed arenas, ready to score.
///
/// The user arena lives behind an [`ArenaSwap`]: scoring pins one
/// generation per microbatch, and [`ServeEngine::apply_event`] publishes
/// re-encoded shadow arenas as new generations without ever blocking or
/// tearing an in-flight batch. The item arena is immutable between model
/// versions, so it stays a plain field.
pub struct ServeEngine {
    pub(crate) model: OmniMatchModel,
    pub(crate) views: CorpusViews,
    pub(crate) items: ItemArena,
    pub(crate) users: ArenaSwap,
    pub(crate) opts: ServeOptions,
    store: Mutex<InteractionStore>,
}

/// Lock the interaction store, recovering from poison: the store is a
/// map of append-only `Vec`s, every mutation of which completes or never
/// happened, so the poison flag carries no information here.
fn store_lock(cell: &Mutex<InteractionStore>) -> MutexGuard<'_, InteractionStore> {
    match cell.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ServeEngine {
    /// Precompute the arenas and assemble the engine. `warm` lists users
    /// whose target-side features may be cached (typically the training
    /// users); everyone else runs the user tower per request — the
    /// cold-start path.
    pub fn new(
        model: OmniMatchModel,
        views: CorpusViews,
        warm: &[UserId],
        opts: ServeOptions,
    ) -> ServeEngine {
        let t0 = om_obs::clock::now_ns();
        let items = ItemArena::build(&model, &views, opts.arena_batch);
        let users = UserArena::build(&model, &views, warm, opts.arena_batch);
        om_obs::info!(
            "serve: arenas ready — {} items, {} warm users, {} ms",
            items.len(),
            users.len(),
            om_obs::clock::now_ns().saturating_sub(t0) / 1_000_000
        );
        om_obs::metrics::counter("serve.arena.items").add(items.len() as u64);
        om_obs::metrics::counter("serve.arena.warm_users").add(users.len() as u64);
        ServeEngine {
            model,
            views,
            items,
            users: ArenaSwap::new(users),
            opts,
            store: Mutex::new(InteractionStore::new()),
        }
    }

    /// Assemble an engine from pre-built arenas — the path the serving
    /// bench and the blob loader use, where arenas come from synthesis or
    /// a memory-mapped `OMAB` blob instead of a tower precompute. Users
    /// absent from `users` still run the cold tower through `views`.
    pub fn with_arenas(
        model: OmniMatchModel,
        views: CorpusViews,
        items: ItemArena,
        users: UserArena,
        opts: ServeOptions,
    ) -> ServeEngine {
        ServeEngine {
            model,
            views,
            items,
            users: ArenaSwap::new(users),
            opts,
            store: Mutex::new(InteractionStore::new()),
        }
    }

    /// The engine's options (the microbatcher is built from these).
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Number of items in the arena (the catalogue being ranked).
    pub fn catalogue_len(&self) -> usize {
        self.items.len()
    }

    /// Is this user served from the warm-user cache (of the generation
    /// current at the time of the call)?
    pub fn is_warm(&self, user: UserId) -> bool {
        self.users.pin().arena().contains(user)
    }

    /// Pin the current user-arena generation. Holding the returned handle
    /// keeps that generation alive and unchanged across any number of
    /// concurrent [`ServeEngine::apply_event`] installs.
    pub fn pin_users(&self) -> Arc<ArenaGeneration> {
        self.users.pin()
    }

    /// The currently published user-arena generation number (0 at build).
    pub fn user_generation(&self) -> u64 {
        self.users.generation()
    }

    /// Interactions seen from `user` so far via
    /// [`ServeEngine::apply_event`].
    pub fn interactions_seen(&self, user: UserId) -> usize {
        store_lock(&self.store).seen(user)
    }

    /// Expected-star scores of `user` against the whole arena, in arena
    /// (dense item) order. Single-request path; [`ServeEngine::serve_batch`]
    /// produces bitwise-identical rows for any grouping.
    pub fn score_user(&self, user: UserId) -> Result<Vec<f32>, ServeError> {
        let req = [Request { id: 0, user, arrive_us: 0 }];
        self.score_batch(&req)?
            .pop()
            .ok_or(ServeError::ScoreShape { expected: 1, got: 0 })
    }

    /// Serve one request (unbatched path — used as the parity oracle).
    pub fn serve_one(&self, req: Request) -> Result<Response, ServeError> {
        let scores = self.score_user(req.user)?;
        Ok(self.respond(req, &scores))
    }

    /// Serve a microbatch: one fused forward, then per-request top-K.
    pub fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = om_obs::clock::now_ns();
        let rows = self.score_batch(reqs)?;
        let t_scored = om_obs::clock::now_ns();
        let out: Vec<Response> = reqs
            .iter()
            .zip(&rows)
            .map(|(&req, scores)| self.respond(req, scores))
            .collect();
        let t_merged = om_obs::clock::now_ns();
        om_obs::metrics::counter("serve.requests").add(reqs.len() as u64);
        om_obs::metrics::counter("serve.flushes").add(1);
        om_obs::metrics::histogram("serve.flush_ns").record(t_merged.saturating_sub(t0));
        // Stage attribution, into both planes (see frontend.rs docs):
        // score = the fused forward; merge = per-request top-K selection.
        let score_ns = t_scored.saturating_sub(t0);
        let merge_ns = t_merged.saturating_sub(t_scored);
        om_obs::metrics::histogram("serve.score").record(score_ns);
        om_obs::live::histogram("serve.score").record(score_ns);
        om_obs::metrics::histogram("serve.merge").record(merge_ns);
        om_obs::live::histogram("serve.merge").record(merge_ns);
        Ok(out)
    }

    /// Per-request combined user feature rows, `[reqs.len(), user_dim]`:
    /// warm → arena copy; cold → one batched tower pass. Shared with the
    /// sharded engine, which must assemble user rows identically for the
    /// bitwise-parity contract to hold. `users` is the caller's pinned
    /// generation — one pin per microbatch, so a batch never mixes
    /// generations.
    pub(crate) fn user_rows_for(&self, reqs: &[Request], users: &UserArena) -> Vec<f32> {
        let user_dim = users.dim();
        let mut user_rows = vec![0.0f32; reqs.len() * user_dim];
        if user_dim == 0 {
            return user_rows;
        }
        let mut cold: Vec<(usize, UserId)> = Vec::new();
        for ((i, req), dst) in reqs
            .iter()
            .enumerate()
            .zip(user_rows.chunks_exact_mut(user_dim))
        {
            // Warm rows copy straight out of the arena (dequantized on
            // the fly when the arena is int8); cold users batch into one
            // tower pass below.
            if !users.copy_row_into(req.user, dst) {
                cold.push((i, req.user));
            }
        }
        if !cold.is_empty() {
            let docs: Vec<&[usize]> = cold
                .iter()
                .map(|&(_, user)| self.views.target_doc(user))
                .collect();
            // Inference mode: nothing is drawn from this RNG.
            let mut rng = seeded_rng(0);
            let feats = self
                .model
                .user_features(&docs, DomainSide::Target, false, &mut rng);
            let combined = feats.combined.data();
            for (&(i, _), src) in cold.iter().zip(combined.chunks_exact(user_dim)) {
                if let Some(dst) = user_rows.get_mut(i * user_dim..(i + 1) * user_dim) {
                    dst.copy_from_slice(src);
                }
            }
        }
        user_rows
    }

    /// Per-request score rows against the arena (arena order). Shared by
    /// the batched and unbatched paths, under inference mode throughout.
    fn score_batch(&self, reqs: &[Request]) -> Result<Vec<Vec<f32>>, ServeError> {
        let _mode = om_nn::inference_mode();
        if self.items.is_empty() {
            return Err(ServeError::EmptyArena);
        }
        // Pin exactly one user-arena generation for the whole batch: an
        // install racing this flush flips only *future* pins, so the
        // batch can neither tear nor mix generations, and the pin keeps
        // a superseded arena alive until this flush returns.
        let pinned = self.users.pin();
        let users = pinned.arena();
        let user_dim = users.dim();
        let n = self.items.len();

        // 1. User rows: warm → arena copy; cold → one batched tower pass.
        let user_rows = self.user_rows_for(reqs, users);

        // 2–3. Cross join + one rating-head forward over all B·N pairs.
        // `rows_f32` borrows the arena when it is f32 and dequantizes
        // into the scratch when it is int8 — either way the same block
        // feeds the same cross join.
        let pair_dim = user_dim + self.items.dim();
        let mut scratch = Vec::new();
        let item_block = self.items.rows_f32(0, n, &mut scratch);
        let pairs = kernels::pair_rows(&user_rows, item_block, user_dim, self.items.dim());
        let pairs = Tensor::from_vec(pairs, &[reqs.len() * n, pair_dim]);
        let mut rng = seeded_rng(0);
        let logits = self.model.rating_logits_from_pairs(&pairs, false, &mut rng);
        let stars = OmniMatchModel::expected_stars(&logits);
        if stars.len() != reqs.len() * n {
            return Err(ServeError::ScoreShape {
                expected: reqs.len() * n,
                got: stars.len(),
            });
        }
        Ok(stars.chunks(n).map(|row| row.to_vec()).collect())
    }

    /// Sharded top-K over one score row → a [`Response`].
    fn respond(&self, req: Request, scores: &[f32]) -> Response {
        let top = om_metrics::top_k_indices(scores, self.opts.topk)
            .into_iter()
            .filter_map(|i| scores.get(i).map(|&s| (self.items.id_at(i), s)))
            .collect();
        Response { id: req.id, user: req.user, top }
    }

    /// Naive oracle for tests/smoke: score, then *full* stable sort by
    /// `cmp_nan_last_desc` — the pre-topk code path. The engine's sharded
    /// selection must reproduce its prefix exactly.
    pub fn oracle_rank(&self, user: UserId) -> Result<Vec<(ItemId, f32)>, ServeError> {
        let scores = self.score_user(user)?;
        let mut ranked: Vec<(ItemId, f32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (self.items.id_at(i), s))
            .collect();
        ranked.sort_by(|a, b| om_metrics::cmp_nan_last_desc(a.1, b.1));
        Ok(ranked)
    }

    /// Ingest one streamed target-domain interaction — the online
    /// cold→warm graduation path.
    ///
    /// The event's review text is buffered per user; once the user has
    /// [`ServeOptions::warm_after`] interactions, every further event
    /// re-encodes that user's row (user tower only, over the accumulated
    /// texts through the *frozen* training vocabulary) into a shadow
    /// arena, which is atomically published as the next generation.
    /// In-flight batches keep their pinned generation; the superseded
    /// arena is freed when its last pin drops. The first crossing of the
    /// threshold is a graduation, counted in `serve.graduations`.
    ///
    /// Determinism: the re-encoded row flows through the same
    /// `user_target_rows` entry point as the offline arena precompute,
    /// so a post-swap engine is bitwise identical to a cold rebuild at
    /// the same interaction state (`tests/online_update.rs`).
    pub fn apply_event(&self, ev: &UserEvent) -> Result<UpdateOutcome, ServeError> {
        om_obs::metrics::counter("serve.update.events").add(1);
        om_obs::live::counter("serve.update.events").add(1);
        let seen = store_lock(&self.store).record(ev);
        if seen < self.opts.warm_after {
            return Ok(UpdateOutcome { user: ev.user, seen, graduated: false, generation: None });
        }
        // Re-encode this user's combined target-side row over everything
        // they have said so far. Clone the texts out so the store lock is
        // not held across the tower forward.
        let texts: Vec<String> = store_lock(&self.store).texts(ev.user).to_vec();
        let text_refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let doc = self.views.encode_reviews(&text_refs);
        let row = self.model.user_target_rows(&[&doc]);
        let pinned = self.users.pin();
        let live = pinned.arena();
        if row.len() != live.dim() {
            om_obs::metrics::counter("serve.update.errors").add(1);
            om_obs::live::counter("serve.update.errors").add(1);
            return Err(ServeError::UpdateDim { arena: live.dim(), row: row.len() });
        }
        let shadow = live.with_row(ev.user, &row);
        // om-fault: kill-point — sits *before* the install so a killed
        // swap provably leaves the old generation serving (CI chaos run).
        om_obs::fault::kill_point("swap");
        let generation = self.users.install(shadow);
        let graduated = seen == self.opts.warm_after;
        if graduated {
            om_obs::metrics::counter("serve.graduations").add(1);
            om_obs::live::counter("serve.graduations").add(1);
        }
        om_obs::metrics::counter("serve.update.swaps").add(1);
        om_obs::live::counter("serve.update.swaps").add(1);
        om_obs::metrics::gauge("serve.update.generation").set(generation as f64);
        om_obs::live::gauge("serve.update.generation").set(generation);
        om_obs::info!(
            "serve: user {} row re-encoded at {} interaction(s) → generation {}{}",
            ev.user.0,
            seen,
            generation,
            if graduated { " (graduated cold→warm)" } else { "" }
        );
        Ok(UpdateOutcome { user: ev.user, seen, graduated, generation: Some(generation) })
    }
}
