//! Event stream, run lifecycle and the two file sinks.
//!
//! Everything recorded while observability is enabled — [`emit`]ted events,
//! completed spans, metric snapshots — accumulates in process-global
//! buffers. A *run* gives those buffers a destination: [`run_begin`] names
//! it (first caller wins, so the table binary that wraps several
//! `Trainer::fit` calls owns one artifact), [`run_finish`] drains every
//! buffer and writes three files under `<out_root>/<run>/`:
//!
//! * `events.jsonl` — one JSON object per line; every line has `"kind"`
//!   and `"t"` (ns since the process anchor). Kinds: `run`, `log`, `span`,
//!   `thread_busy`, `counter`, `gauge`, `hist`, plus the free-form kinds
//!   callers emit (`epoch`, `batch`, `trial`, …). This is the schema the
//!   round-trip test and `obs-report` validate.
//! * `trace.json` — the same spans in Chrome trace-event format: open
//!   `chrome://tracing` (or Perfetto) and load the file.
//! * `manifest.json` — run name, record counts and the key/value pairs
//!   callers contributed via [`manifest_set`].

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{escape, number, Json};
use crate::{clock, metrics, trace};

/// Schema version stamped into the `run` header line and the manifest.
pub const SCHEMA_VERSION: u64 = 1;

/// A field value on an emitted event.
#[derive(Debug, Clone)]
pub enum Value {
    /// Text.
    Str(String),
    /// Floating point (losses, norms, rates).
    F64(f64),
    /// Unsigned integer (counts, indices, nanoseconds).
    U64(u64),
    /// Boolean flag.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Str(s) => Json::Str(s.clone()),
            Value::F64(v) => Json::Num(*v),
            Value::U64(v) => Json::Num(*v as f64),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

struct Event {
    t_ns: u64,
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static RUN: Mutex<Option<String>> = Mutex::new(None);
static RUN_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static OUT_ROOT: Mutex<Option<PathBuf>> = Mutex::new(None);
static MANIFEST: Mutex<Option<BTreeMap<String, Value>>> = Mutex::new(None);

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    // A panic while holding one of these only interrupts bookkeeping
    // appends; the data is still structurally sound, so poisoning is
    // deliberately ignored.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Append one event to the stream. No-op (one branch) when observability
/// is disabled. `kind` must not be one of the sink-reserved kinds and
/// field names must avoid the reserved keys `t` and `kind`.
pub fn emit(kind: &'static str, fields: &[(&'static str, Value)]) {
    if !crate::enabled() {
        return;
    }
    debug_assert!(
        fields.iter().all(|(k, _)| *k != "t" && *k != "kind"),
        "emit: field names `t` and `kind` are reserved"
    );
    lock(&EVENTS).push(Event {
        t_ns: clock::now_ns(),
        kind,
        fields: fields.to_vec(),
    });
}

/// Record a key/value pair into the active run's `manifest.json` (config
/// knobs, seeds, dataset names). Last write per key wins. No-op when
/// observability is disabled.
pub fn manifest_set(key: &str, value: Value) {
    if !crate::enabled() {
        return;
    }
    lock(&MANIFEST)
        .get_or_insert_with(BTreeMap::new)
        .insert(key.to_string(), value);
}

/// Root directory the sinks write under: the last [`set_out_root`] value,
/// else `OM_OBS_DIR`, else `results/obs`.
pub fn out_root() -> PathBuf {
    if let Some(p) = lock(&OUT_ROOT).clone() {
        return p;
    }
    match std::env::var("OM_OBS_DIR") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from("results/obs"),
    }
}

/// Override the sink root (tests point this at a temp dir). Returns the
/// previous override, if any.
pub fn set_out_root(path: impl Into<PathBuf>) -> Option<PathBuf> {
    lock(&OUT_ROOT).replace(path.into())
}

/// Is a run currently open?
pub fn run_active() -> bool {
    lock(&RUN).is_some()
}

/// The directory mid-run artifacts (e.g. the flight recorder's
/// `flightrec.jsonl`) should land in. With a run active this resolves —
/// and **pins** — the run's output directory, so a dump written now and
/// the `events.jsonl` written by [`run_finish`] later end up side by
/// side. With no run active, a fresh unique directory named `fallback`
/// under [`out_root`].
pub(crate) fn artifact_dir(fallback: &str) -> PathBuf {
    let run_name = lock(&RUN).clone();
    match run_name {
        Some(name) => {
            let mut pinned = lock(&RUN_DIR);
            if let Some(dir) = pinned.clone() {
                return dir;
            }
            let dir = unique_dir(&out_root(), &name);
            // Reserve it on disk so a concurrent `unique_dir` probe can
            // never hand the same name to someone else.
            let _ = std::fs::create_dir_all(&dir);
            *pinned = Some(dir.clone());
            dir
        }
        None => unique_dir(&out_root(), fallback),
    }
}

/// Open a run named `name`. Returns `true` if this call took ownership
/// (observability enabled and no run was active); the owner must
/// eventually call [`run_finish`] — or hold the [`RunScope`] from
/// [`run_scope`], which does it on drop.
pub fn run_begin(name: &str) -> bool {
    if !crate::enabled() {
        return false;
    }
    let mut run = lock(&RUN);
    if run.is_some() {
        return false;
    }
    *run = Some(name.to_string());
    drop(run);
    emit("run_begin", &[("name", Value::from(name))]);
    true
}

/// RAII run ownership: see [`run_scope`].
pub struct RunScope {
    owned: bool,
}

impl RunScope {
    /// Did this scope open the run (vs. joining an already-active one)?
    pub fn owns(&self) -> bool {
        self.owned
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        if self.owned {
            let _ = run_finish();
        }
    }
}

/// Open a run if none is active; the returned guard finishes the run when
/// dropped **iff** it took ownership. Inner scopes (a `Trainer::fit`
/// inside a table binary) become no-ops and feed the outer run's stream.
pub fn run_scope(name: &str) -> RunScope {
    RunScope {
        owned: run_begin(name),
    }
}

/// Close the active run: drain every buffer (events, spans, metrics) and
/// write `events.jsonl`, `trace.json` and `manifest.json` under
/// `<out_root>/<run>/`. Returns the run directory, or `None` when no run
/// was active or the filesystem refused (a warning is printed; training
/// results are never affected by sink failures).
pub fn run_finish() -> Option<PathBuf> {
    let name = lock(&RUN).take()?;
    let t_end = clock::now_ns();
    let events = std::mem::take(&mut *lock(&EVENTS));
    let threads = trace::drain();
    let metric_snaps = metrics::snapshot();
    let meta = lock(&MANIFEST).take().unwrap_or_default();

    // Reuse the directory a mid-run artifact dump already pinned, so the
    // flight recorder and the event stream describe the same run dir.
    let dir = lock(&RUN_DIR)
        .take()
        .unwrap_or_else(|| unique_dir(&out_root(), &name));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[WARN  om_obs] cannot create {}: {e}", dir.display());
        return None;
    }

    let mut jsonl = String::new();
    // Header line first, so any consumer can identify the stream.
    jsonl.push_str(&format!(
        "{{\"kind\":\"run\",\"t\":{t_end},\"name\":{},\"schema\":{SCHEMA_VERSION}}}\n",
        escape(&name)
    ));
    let mut n_spans = 0usize;
    for ev in &events {
        jsonl.push_str(&event_line(ev));
    }
    for th in &threads {
        n_spans += th.spans.len();
        for s in &th.spans {
            jsonl.push_str(&format!(
                "{{\"kind\":\"span\",\"t\":{},\"name\":{},\"dur_ns\":{},\"tid\":{},\"thread\":{}}}\n",
                s.t0_ns,
                escape(s.name),
                s.dur_ns,
                th.tid,
                escape(&th.label)
            ));
        }
        if th.busy_ns > 0 {
            jsonl.push_str(&format!(
                "{{\"kind\":\"thread_busy\",\"t\":{t_end},\"tid\":{},\"thread\":{},\"busy_ns\":{}}}\n",
                th.tid,
                escape(&th.label),
                th.busy_ns
            ));
        }
    }
    for m in &metric_snaps {
        jsonl.push_str(&metric_line(m, t_end));
    }

    let trace_json = chrome_trace(&threads);
    let manifest = manifest_json(&name, &meta, events.len(), n_spans, threads.len(), t_end);

    for (file, text) in [
        ("events.jsonl", jsonl),
        ("trace.json", trace_json),
        ("manifest.json", manifest),
    ] {
        if let Err(e) = write_file(&dir.join(file), &text) {
            eprintln!("[WARN  om_obs] cannot write {file}: {e}");
            return None;
        }
    }
    Some(dir)
}

fn write_file(path: &Path, text: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// First non-existing directory of `name`, `name-2`, `name-3`, … so
/// successive runs in one process never clobber each other's artifacts.
fn unique_dir(root: &Path, name: &str) -> PathBuf {
    let first = root.join(name);
    if !first.exists() {
        return first;
    }
    for i in 2..1000 {
        let cand = root.join(format!("{name}-{i}"));
        if !cand.exists() {
            return cand;
        }
    }
    first
}

fn event_line(ev: &Event) -> String {
    let mut line = format!("{{\"kind\":{},\"t\":{}", escape(ev.kind), ev.t_ns);
    for (k, v) in &ev.fields {
        line.push_str(&format!(",{}:{}", escape(k), v.to_json()));
    }
    line.push_str("}\n");
    line
}

fn metric_line(m: &metrics::MetricSnapshot, t_end: u64) -> String {
    match m {
        metrics::MetricSnapshot::Counter { name, value } => format!(
            "{{\"kind\":\"counter\",\"t\":{t_end},\"name\":{},\"value\":{value}}}\n",
            escape(name)
        ),
        metrics::MetricSnapshot::Gauge { name, value } => format!(
            "{{\"kind\":\"gauge\",\"t\":{t_end},\"name\":{},\"value\":{}}}\n",
            escape(name),
            number(*value)
        ),
        metrics::MetricSnapshot::Histogram {
            name,
            count,
            sum,
            buckets,
        } => {
            let pairs: Vec<String> = buckets.iter().map(|(i, c)| format!("[{i},{c}]")).collect();
            format!(
                "{{\"kind\":\"hist\",\"t\":{t_end},\"name\":{},\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}\n",
                escape(name),
                pairs.join(",")
            )
        }
    }
}

/// Chrome trace-event JSON: one `X` (complete) event per span, plus `M`
/// metadata naming each thread. Timestamps are microseconds (Chrome's
/// unit) relative to the process anchor.
fn chrome_trace(threads: &[trace::ThreadSpans]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };
    for th in threads {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                th.tid,
                escape(&th.label)
            ),
            &mut first,
        );
        for s in &th.spans {
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                    th.tid,
                    escape(s.name),
                    number(s.t0_ns as f64 / 1000.0),
                    number(s.dur_ns as f64 / 1000.0)
                ),
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

fn manifest_json(
    name: &str,
    meta: &BTreeMap<String, Value>,
    n_events: usize,
    n_spans: usize,
    n_threads: usize,
    t_end: u64,
) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("run".to_string(), Json::Str(name.to_string()));
    obj.insert("schema".to_string(), Json::Num(SCHEMA_VERSION as f64));
    obj.insert("events".to_string(), Json::Num(n_events as f64));
    obj.insert("spans".to_string(), Json::Num(n_spans as f64));
    obj.insert("threads".to_string(), Json::Num(n_threads as f64));
    obj.insert("finished_t_ns".to_string(), Json::Num(t_end as f64));
    let meta_obj: BTreeMap<String, Json> = meta
        .iter()
        .map(|(k, v)| (k.clone(), v.to_json()))
        .collect();
    obj.insert("meta".to_string(), Json::Obj(meta_obj));
    format!("{}\n", Json::Obj(obj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let _g = crate::test_lock();
        let prev = crate::set_enabled(false);
        emit("noop", &[("x", Value::from(1u64))]);
        assert!(!run_begin("nope"));
        assert!(run_finish().is_none());
        crate::set_enabled(prev);
    }

    #[test]
    fn run_lifecycle_writes_all_three_files() {
        let _g = crate::test_lock();
        let prev = crate::set_enabled(true);
        let dir = std::env::temp_dir().join(format!("om-obs-sink-{}", std::process::id()));
        let prev_root = set_out_root(&dir);
        {
            let scope = run_scope("unit");
            assert!(scope.owns());
            assert!(run_active());
            let inner = run_scope("inner");
            assert!(!inner.owns(), "second scope must not steal the run");
            emit("thing", &[("value", Value::from(0.5f64)), ("n", Value::from(3usize))]);
            manifest_set("seed", Value::from(42u64));
            let _s = crate::span("sink.test");
        }
        assert!(!run_active(), "scope drop must close the run");
        let run_dir = dir.join("unit");
        for f in ["events.jsonl", "trace.json", "manifest.json"] {
            assert!(run_dir.join(f).is_file(), "missing {f}");
        }
        let manifest =
            Json::parse(&std::fs::read_to_string(run_dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest.get("run").and_then(Json::as_str), Some("unit"));
        assert_eq!(
            manifest.get("meta").and_then(|m| m.get("seed")).and_then(Json::as_u64),
            Some(42)
        );
        crate::set_enabled(prev);
        match prev_root {
            Some(p) => {
                set_out_root(p);
            }
            None => {
                *super::lock(&super::OUT_ROOT) = None;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn successive_runs_get_unique_dirs() {
        let root = std::env::temp_dir().join(format!("om-obs-uniq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("r")).unwrap();
        assert_eq!(unique_dir(&root, "r"), root.join("r-2"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
