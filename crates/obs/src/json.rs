//! Minimal JSON value model, writer and parser — just enough for the
//! observability sinks (JSONL events, Chrome trace, run manifest) and for
//! the report/tests to parse those artifacts back. No external crates, no
//! serde: the whole surface is [`Json`], [`Json::parse`] and `Display`.
//!
//! Numbers are stored as `f64`. All values the sinks write (nanosecond
//! offsets from the process anchor, bucket counts, loss components) are far
//! below 2^53, so the round-trip is exact in practice; the writer renders
//! integral values without a fractional part so `u64` fields re-parse
//! cleanly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 (numeric, non-negative, integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a number the way the sinks want it: integral values without a
/// fractional part, non-finite values as `null` (JSON has no NaN).
pub fn number(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{}", number(*n)),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Json::Str("gemm \"hot\"\n".to_string()));
        obj.insert("t".to_string(), Json::Num(123456789.0));
        obj.insert("ratio".to_string(), Json::Num(0.5));
        obj.insert(
            "buckets".to_string(),
            Json::Arr(vec![
                Json::Arr(vec![Json::Num(3.0), Json::Num(17.0)]),
                Json::Bool(true),
                Json::Null,
            ]),
        );
        let text = Json::Obj(obj.clone()).to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, Json::Obj(obj));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(number(42.0), "42");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"s\" : \"héllo → ok\" } ").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("héllo → ok"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips_controls() {
        let s = "tab\t nl\n quote\" back\\ bell\u{7}";
        let v = Json::parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
