//! Shape bookkeeping for row-major, contiguous tensors.

use std::fmt;

/// A tensor shape: the extent of every axis, row-major.
///
/// Tensors in this library are always contiguous, so a shape fully
/// determines the memory layout (strides are derived).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Build a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Extent of axis `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The dims as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let n = self.0.len();
        let mut s = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Interpret this shape as a 2-D `(rows, cols)` pair, flattening all
    /// leading axes into `rows`. A 1-D shape becomes `(1, n)`.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.0.len() {
            0 => (1, 1),
            1 => (1, self.0[0]),
            _ => {
                let cols = *self.0.last().expect("non-empty");
                (self.numel() / cols.max(1), cols)
            }
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape(d.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(d: Vec<usize>) -> Self {
        Shape(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn as_2d_flattens_leading_axes() {
        assert_eq!(Shape::new(&[2, 3, 4]).as_2d(), (6, 4));
        assert_eq!(Shape::new(&[7]).as_2d(), (1, 7));
        assert_eq!(Shape::new(&[3, 5]).as_2d(), (3, 5));
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.as_2d(), (1, 1));
    }
}
