//! # om-data
//!
//! Data model and corpus machinery for the OmniMatch reproduction:
//!
//! * [`types`] — users, items, ratings and review interactions;
//! * [`domain`] — a single-domain review corpus with the two preprocessed
//!   dictionaries of §4.1's complexity analysis (user → records and
//!   (item, rating) → users);
//! * [`split`] — cross-domain scenario construction: overlapping-user
//!   computation and the 80/10/10 train / validation / test cold-start
//!   split of §5.2, plus training-fraction subsampling for Table 4;
//! * [`synth`] — the synthetic review-corpus simulator standing in for the
//!   Amazon Review and Douban datasets (substitution rationale in
//!   DESIGN.md), with `amazon()` and `douban()` presets;
//! * [`loader`] — a loader for real corpora in JSON-lines or TSV form so
//!   the pipeline runs unchanged on the genuine datasets when available.

pub mod domain;
pub mod loader;
pub mod split;
pub mod synth;
pub mod types;

pub use domain::Domain;
pub use split::{CrossDomainScenario, SplitConfig};
pub use synth::{synth_feature_rows, ArenaPreset, SynthConfig, SynthWorld};
pub use types::{Interaction, ItemId, Rating, UserId};
