//! Monotonic timestamps, nanoseconds since a process-wide anchor.
//!
//! The anchor is the first call site, so timestamps are small, strictly
//! non-decreasing and comparable across threads — exactly what span
//! records and the Chrome trace need. Wall-clock time never enters the
//! event stream (determinism: two runs of the same seed differ only in
//! timing fields, never in model-visible values).

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process anchor (the first `now_ns` call).
#[inline]
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_anchored() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
