//! Serving benchmark: replays a synthetic request trace through the
//! microbatching engine and writes `BENCH_serve.json`.
//!
//! The trace uses a *virtual* arrival clock (deterministic jittered
//! inter-arrival gaps) so the batching pattern is reproducible run to
//! run; only the compute inside each flush is measured with `Instant`.
//! A request's reported latency is its virtual queue wait plus the real
//! compute time of the flush that scored it. Latency percentiles come
//! from an `om_obs` histogram; exact f64 samples feed the
//! `bench_json`-schema summaries that `bench_gate` compares.
//!
//! Usage: `cargo run --release -p om-bench --bin serve_bench [out_dir]`.

use std::collections::BTreeMap;
use std::time::Instant;

use om_bench::bench_scenario;
use om_obs::json::Json;
use om_obs::metrics::histogram;
use om_serve::{Microbatcher, Request, ServeEngine, ServeOptions};
use omnimatch_core::{OmniMatchConfig, Trainer};

const REQUESTS: usize = 400;
/// Mean virtual inter-arrival gap; ~1/3 of the batcher deadline so most
/// flushes fill up and a tail flushes on the deadline — both paths hot.
const MEAN_GAP_US: u64 = 650;
/// Trace replays: one discarded warmup, then this many measured. Flush
/// compute is tens of microseconds, so medians need the pooled samples
/// to be stable enough for the regression gate.
const REPLAYS: usize = 3;

/// Summary of one benchmark's samples (nearest-rank percentiles) —
/// matches the `bench_json` schema that `bench_gate` reads.
fn summarize(name: &str, mut samples: Vec<f64>) -> Json {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    let pct = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
    let mut o = BTreeMap::new();
    o.insert("name".to_string(), Json::Str(name.to_string()));
    o.insert("iters".to_string(), Json::Num(n as f64));
    o.insert("median_ms".to_string(), Json::Num(pct(0.5)));
    o.insert("p95_ms".to_string(), Json::Num(pct(0.95)));
    o.insert(
        "mean_ms".to_string(),
        Json::Num(samples.iter().sum::<f64>() / n as f64),
    );
    o.insert("min_ms".to_string(), Json::Num(samples[0]));
    o.insert("max_ms".to_string(), Json::Num(samples[n - 1]));
    Json::Obj(o)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create benchmark output dir");

    // ---- model + engine -------------------------------------------------
    let scenario = bench_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(5)).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();

    let t0 = Instant::now();
    let opts = ServeOptions::from_env();
    let engine = ServeEngine::new(model, views, &warm, opts.clone());
    let arena_ms = t0.elapsed().as_secs_f64() * 1e3;

    // ---- synthetic trace -------------------------------------------------
    // Deterministic jittered arrivals: gap in [MEAN_GAP/2, 3*MEAN_GAP/2).
    let mut trace = Vec::with_capacity(REQUESTS);
    let mut now_us = 0u64;
    let mut h = 0x1234_5678_9ABC_DEF1u64;
    for i in 0..REQUESTS {
        h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(23) ^ (i as u64);
        now_us += MEAN_GAP_US / 2 + h % MEAN_GAP_US;
        trace.push(Request {
            id: i as u64,
            user: users[(h >> 32) as usize % users.len()],
            arrive_us: now_us,
        });
    }

    // ---- replay ----------------------------------------------------------
    let lat = histogram("serve.request_latency_ns");
    let mut flush_ms: Vec<f64> = Vec::new();
    let mut latency_ms: Vec<f64> = Vec::new();
    let mut compute_s = 0.0f64;
    let mut total_served = 0usize;
    for replay in 0..=REPLAYS {
        let warmup = replay == 0;
        let mut batcher = Microbatcher::new(opts.batch, opts.wait_us);
        let mut served = 0usize;
        let mut flush = |reqs: Vec<Request>, virtual_now: u64| {
            let t = Instant::now();
            let responses = engine.serve_batch(&reqs);
            let dt = t.elapsed().as_secs_f64();
            served += responses.len();
            if warmup {
                return;
            }
            compute_s += dt;
            flush_ms.push(dt * 1e3);
            for r in &reqs {
                let wait_ms = (virtual_now - r.arrive_us) as f64 / 1e3;
                let total = wait_ms + dt * 1e3;
                latency_ms.push(total);
                lat.record((total * 1e6) as u64);
            }
        };
        for req in &trace {
            if let Some(due) = batcher.poll(req.arrive_us) {
                // Deadline flush fires at (oldest arrival + wait_us), not
                // at the arrival that exposed it.
                let fired_at = due[0].arrive_us + opts.wait_us;
                flush(due, fired_at);
            }
            let now = req.arrive_us;
            if let Some(full) = batcher.submit(*req, now) {
                flush(full, now);
            }
        }
        let end = trace.last().expect("non-empty trace").arrive_us + opts.wait_us;
        if let Some(rest) = batcher.drain() {
            flush(rest, end);
        }
        assert_eq!(served, REQUESTS, "trace replay dropped requests");
        if !warmup {
            total_served += served;
        }
    }

    // ---- report ----------------------------------------------------------
    let qps = total_served as f64 / compute_s;
    let q = |p: f64| lat.quantile(p).unwrap_or(0) as f64 / 1e6;
    let mut serve = BTreeMap::new();
    serve.insert("requests".to_string(), Json::Num(total_served as f64));
    serve.insert("flushes".to_string(), Json::Num(flush_ms.len() as f64));
    serve.insert("batch".to_string(), Json::Num(opts.batch as f64));
    serve.insert("wait_us".to_string(), Json::Num(opts.wait_us as f64));
    serve.insert("catalogue".to_string(), Json::Num(engine.catalogue_len() as f64));
    serve.insert("qps".to_string(), Json::Num(qps));
    serve.insert("p50_ms".to_string(), Json::Num(q(0.50)));
    serve.insert("p95_ms".to_string(), Json::Num(q(0.95)));
    serve.insert("p99_ms".to_string(), Json::Num(q(0.99)));
    serve.insert("arena_build_ms".to_string(), Json::Num(arena_ms));

    let mut o = BTreeMap::new();
    o.insert("schema".to_string(), Json::Num(1.0));
    o.insert("group".to_string(), Json::Str("serve".to_string()));
    o.insert("unit".to_string(), Json::Str("ms".to_string()));
    o.insert(
        "benches".to_string(),
        Json::Arr(vec![
            summarize("serve_flush_compute", flush_ms),
            summarize("serve_request_latency", latency_ms),
        ]),
    );
    o.insert("serve".to_string(), Json::Obj(serve));

    let path = out_dir.join("BENCH_serve.json");
    std::fs::write(&path, format!("{}\n", Json::Obj(o))).expect("write benchmark report");
    println!("wrote {path} ({qps:.0} qps)", path = path.display());
}
