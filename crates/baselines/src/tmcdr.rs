//! TMCDR — Transfer-Meta framework for Cross-Domain Recommendation
//! (Zhu et al. 2021), the meta-learning successor of EMCDR discussed in
//! the paper's §7.1. Instead of fitting one mapping by plain regression,
//! the mapping is trained with a Reptile-style meta loop over per-user
//! "tasks": for each overlapping user, an inner step adapts the mapping on
//! that user alone, and the outer loop moves the initialisation toward the
//! adapted weights — producing a mapping whose initialisation transfers to
//! unseen (cold-start) users rather than one that merely interpolates the
//! training users.
//!
//! Not part of the paper's comparison tables; provided as an extension
//! baseline with the same [`Recommender`] interface.

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_nn::{mse_loss, HasParams, Mlp};
use om_tensor::{seeded_rng, Tensor};

use crate::mf::{MatrixFactorization, MfConfig};
use crate::{clamp_stars, Recommender};

/// Trained TMCDR model.
pub struct TMCDR {
    mf_source: MatrixFactorization,
    mf_target: MatrixFactorization,
    mapping: Mlp,
    seed: u64,
}

impl TMCDR {
    /// Fit: per-domain MF, then Reptile meta-training of the mapping over
    /// per-user tasks.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> TMCDR {
        let mut rng = seeded_rng(seed);
        let src_refs: Vec<&Interaction> = scenario.source.interactions().iter().collect();
        let tgt_refs: Vec<&Interaction> = scenario.target_train.interactions().iter().collect();
        let mf_source = MatrixFactorization::fit(&src_refs, MfConfig::default(), &mut rng);
        let mf_target = MatrixFactorization::fit(&tgt_refs, MfConfig::default(), &mut rng);
        let dim = mf_source.dim();

        // per-user tasks: (source factor, target factor)
        let tasks: Vec<(Vec<f32>, Vec<f32>)> = scenario
            .train_users
            .iter()
            .filter_map(|&u| {
                Some((
                    mf_source.user_factor(u)?.to_vec(),
                    mf_target.user_factor(u)?.to_vec(),
                ))
            })
            .collect();

        let mapping = Mlp::new(&[dim, dim * 2, dim], 0.0, &mut rng);
        if tasks.len() >= 2 {
            reptile_train(&mapping, &tasks, 60, 0.05, 0.5, &mut rng);
        }
        TMCDR {
            mf_source,
            mf_target,
            mapping,
            seed,
        }
    }

    /// Map a cold-start user's source factor into the target space.
    pub fn mapped_factor(&self, user: UserId) -> Option<Vec<f32>> {
        let s = self.mf_source.user_factor(user)?;
        let x = Tensor::from_vec(s.to_vec(), &[1, s.len()]);
        let _guard = om_tensor::no_grad();
        let mut rng = seeded_rng(self.seed);
        Some(self.mapping.forward(&x, false, &mut rng).to_vec())
    }
}

/// Reptile meta-training: for each sampled task, take `k` inner SGD steps
/// on that task alone, then move the initialisation a fraction `meta_lr`
/// toward the adapted weights.
fn reptile_train(
    mapping: &Mlp,
    tasks: &[(Vec<f32>, Vec<f32>)],
    outer_steps: usize,
    inner_lr: f32,
    meta_lr: f32,
    rng: &mut om_tensor::Rng,
) {
    use rand::RngExt as _;
    let params = mapping.params();
    for _ in 0..outer_steps {
        let (src, tgt) = &tasks[rng.random_range(0..tasks.len())];
        let init: Vec<Vec<f32>> = params.iter().map(|p| p.to_vec()).collect();
        // inner adaptation: 3 SGD steps on the single-user task
        let x = Tensor::from_vec(src.clone(), &[1, src.len()]);
        for _ in 0..3 {
            mapping.zero_grad();
            let pred = mapping.forward(&x, true, rng);
            mse_loss(&pred, tgt).backward();
            for p in &params {
                if let Some(g) = p.grad_vec() {
                    let mut d = p.data_mut();
                    for (v, gi) in d.iter_mut().zip(&g) {
                        *v -= inner_lr * gi;
                    }
                }
            }
        }
        // outer (Reptile) step: init ← init + meta_lr (adapted − init)
        for (p, w0) in params.iter().zip(&init) {
            let mut d = p.data_mut();
            for (v, &w) in d.iter_mut().zip(w0) {
                *v = w + meta_lr * (*v - w);
            }
        }
        mapping.zero_grad();
    }
}

impl Recommender for TMCDR {
    fn name(&self) -> &'static str {
        "TMCDR"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        let raw = if self.mf_target.user_factor(user).is_some() {
            self.mf_target.raw_predict(user, item)
        } else {
            match self.mapped_factor(user) {
                Some(f) => self.mf_target.predict_with_user_factor(&f, item),
                None => self
                    .mf_target
                    .predict_with_user_factor(&vec![0.0; self.mf_target.dim()], item),
            }
        };
        clamp_stars(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    fn scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn evaluation_is_finite() {
        let sc = scenario();
        let m = TMCDR::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn cold_users_get_mapped_factors() {
        let sc = scenario();
        let m = TMCDR::fit(&sc, 1);
        for &u in sc.test_users.iter().take(3) {
            assert!(m.mapped_factor(u).is_some());
        }
    }

    #[test]
    fn deterministic() {
        let sc = scenario();
        let a = TMCDR::fit(&sc, 9);
        let b = TMCDR::fit(&sc, 9);
        let it = sc.test_pairs()[0];
        assert_eq!(a.predict(it.user, it.item), b.predict(it.user, it.item));
    }

    #[test]
    fn meta_training_moves_the_mapping() {
        // the mapping must differ from its random init after meta-training
        let sc = scenario();
        let m = TMCDR::fit(&sc, 3);
        let mut rng = om_tensor::seeded_rng(3);
        // rebuild an untrained mapping with the same init path is not
        // possible without replaying MF rngs, so check a weaker property:
        // two users with different source factors map differently
        let _ = &mut rng;
        let u1 = sc.test_users[0];
        let u2 = *sc.test_users.last().unwrap();
        assert_ne!(m.mapped_factor(u1), m.mapped_factor(u2));
    }
}
