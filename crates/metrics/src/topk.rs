//! Sharded partial top-K selection shared by offline evaluation
//! ([`crate::RankedList`], `TrainedOmniMatch::rank_items`) and the online
//! serving engine (`om-serve`), so ranked tables and served
//! recommendations come from one code path.
//!
//! The order is the one the rest of the crate already uses — score
//! descending under [`crate::cmp_nan_last_desc`] (NaN ranks worst) — made
//! *strictly* total by breaking ties on the original index, ascending.
//! That tie-break is exactly what a stable full sort produces, so
//! `top_k_indices(s, k)` equals the first `k` entries of the stable
//! full-sort ranking bit for bit, for every `k`, every shard boundary,
//! and every thread count.
//!
//! Selection is sharded: candidates are split into fixed-size shards
//! (independent of the worker count, like the tensor kernels' fixed
//! reduction chunks), each shard keeps its own bounded worst-out heap of
//! `k` candidates on a worker of the `om_tensor::runtime` pool, and the
//! per-shard survivors — at most `⌈n/SHARD⌉·k` of them — are merged by a
//! final sort. Replacing an `n log n` full sort with `n log k` selection
//! is the point: serving ranks thousands of items per request to return
//! a ten-item page.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use om_tensor::runtime;

/// Fixed shard width. Chosen like the tensor kernels' reduction chunk:
/// big enough that a shard amortises task dispatch, small enough that a
/// typical candidate set still fans out. Results never depend on it (the
/// order is strictly total); it is pure performance tuning.
const SHARD: usize = 1024;

/// The strict total order of the ranking: score descending, NaN last,
/// ties broken by original index ascending (= stable-sort order).
#[inline]
fn cmp_entry(a: (f32, usize), b: (f32, usize)) -> Ordering {
    crate::cmp_nan_last_desc(a.0, b.0).then(a.1.cmp(&b.1))
}

/// A candidate in a shard heap. `Ord` is [`cmp_entry`] — `Less` means
/// "ranks earlier" — so a max-heap's root is the *worst-ranked* candidate
/// held, which is the one a better arrival evicts.
#[derive(Clone, Copy, PartialEq)]
struct Entry(f32, usize);

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        cmp_entry((self.0, self.1), (other.0, other.1))
    }
}

/// Bounded selection over one shard: push every entry, evict the
/// worst-ranked whenever the heap exceeds `k`. Returns the shard's top
/// `min(k, len)` candidates, best first.
fn shard_top(scores: &[f32], base: usize, k: usize) -> Vec<Entry> {
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        let e = Entry(s, base + i);
        if heap.len() < k {
            heap.push(e);
        } else if let Some(worst) = heap.peek() {
            if e < *worst {
                heap.pop();
                heap.push(e);
            }
        }
    }
    // Ascending by `Ord` = best-ranked first.
    heap.into_sorted_vec()
}

/// Indices of the top `k` scores in ranking order (score descending,
/// NaN-scored candidates last, ties by index). Bitwise identical to
/// `rank_desc_indices(scores)[..k]`; `k >= scores.len()` returns the full
/// ranking. Deterministic at any `OM_THREADS` setting.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let n = scores.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // Small inputs (or near-full selections) don't benefit from sharding;
    // the strict total order makes any sort return the same answer.
    if n <= SHARD || k * 4 >= n {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_unstable_by(|&a, &b| cmp_entry((scores[a], a), (scores[b], b)));
        idx.truncate(k);
        return idx;
    }
    let shards = n.div_ceil(SHARD);
    let mut survivors: Vec<Vec<Entry>> = vec![Vec::new(); shards];
    runtime::parallel_rows_mut(&mut survivors, 1, 1, |s0, block| {
        for (ds, out) in block.iter_mut().enumerate() {
            let s = s0 + ds;
            let lo = s * SHARD;
            let hi = (lo + SHARD).min(n);
            *out = shard_top(&scores[lo..hi], lo, k);
        }
    });
    let mut merged: Vec<Entry> = survivors.into_iter().flatten().collect();
    merged.sort_unstable();
    merged.truncate(k);
    merged.into_iter().map(|e| e.1).collect()
}

/// The full ranking permutation (descending, NaN last, stable on ties) —
/// what [`crate::RankedList`] sorts by. Equivalent to a stable sort by
/// [`crate::cmp_nan_last_desc`].
pub fn rank_desc_indices(scores: &[f32]) -> Vec<usize> {
    top_k_indices(scores, scores.len())
}

/// Merge `(score, index)` candidates — typically the concatenation of
/// per-shard [`top_k_indices`] survivors, with indices already offset to
/// the global candidate space — into the global top `k` under the same
/// strict total order selection uses. Because each shard's top-`k` is a
/// superset of that shard's contribution to the global top-`k`, the merge
/// of per-shard winners is bit-identical to running [`top_k_indices`]
/// over the full concatenated score array, for every shard partition.
pub fn merge_top_k(mut candidates: Vec<(f32, usize)>, k: usize) -> Vec<(f32, usize)> {
    candidates.sort_unstable_by(|a, b| cmp_entry(*a, *b));
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serialise tests that mutate the global thread count.
    fn thread_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Deterministic pseudo-random scores with plenty of exact ties and
    /// a sprinkling of NaNs.
    fn scores(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                if h.is_multiple_of(97) {
                    f32::NAN
                } else {
                    ((h >> 32) % 127) as f32 * 0.25 - 12.0
                }
            })
            .collect()
    }

    /// The oracle: a stable full sort by `cmp_nan_last_desc`.
    fn oracle(s: &[f32]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..s.len()).collect();
        idx.sort_by(|&a, &b| crate::cmp_nan_last_desc(s[a], s[b]));
        idx
    }

    #[test]
    fn top_k_equals_stable_full_sort_prefix() {
        // Sizes straddle the shard boundary; ks straddle the sort/heap
        // crossover inside `top_k_indices`.
        for &n in &[1usize, 7, 1023, 1024, 1025, 3 * 1024 + 17] {
            let s = scores(n, 42);
            let full = oracle(&s);
            for &k in &[1usize, 2, 10, 100, n / 2 + 1, n, n + 5] {
                let got = top_k_indices(&s, k);
                assert_eq!(got, full[..k.min(n)], "n={n} k={k}");
            }
        }
    }

    #[test]
    fn full_ranking_matches_stable_sort() {
        for &n in &[1usize, 100, 2048, 5000] {
            let s = scores(n, 7);
            assert_eq!(rank_desc_indices(&s), oracle(&s), "n={n}");
        }
    }

    #[test]
    fn thread_count_never_changes_the_selection() {
        let _guard = thread_lock();
        let s = scores(10_000, 3);
        let reference = top_k_indices(&s, 25);
        for threads in [1usize, 2, 3, 0] {
            let prev = runtime::set_threads(threads);
            let got = top_k_indices(&s, 25);
            runtime::set_threads(prev);
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn nans_rank_last_and_ties_keep_index_order() {
        let s = [1.0, f32::NAN, 3.0, 1.0, f32::NAN, 3.0];
        assert_eq!(rank_desc_indices(&s), vec![2, 5, 0, 3, 1, 4]);
        assert_eq!(top_k_indices(&s, 3), vec![2, 5, 0]);
    }

    #[test]
    fn empty_and_zero_k_are_safe() {
        assert!(top_k_indices(&[], 5).is_empty());
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn merging_per_shard_winners_equals_global_selection() {
        // Split the scores into uneven shards, take each shard's local
        // top-k (offset to global indices), merge — must equal the global
        // top-k for every k and every partition width.
        let s = scores(4_000, 9);
        for &width in &[1usize, 3, 64, 1000, 1024, 4_001] {
            for &k in &[1usize, 2, 10, 137] {
                let mut cands: Vec<(f32, usize)> = Vec::new();
                let mut lo = 0;
                while lo < s.len() {
                    let hi = (lo + width).min(s.len());
                    for i in top_k_indices(&s[lo..hi], k) {
                        cands.push((s[lo + i], lo + i));
                    }
                    lo = hi;
                }
                let merged = merge_top_k(cands, k);
                let global = top_k_indices(&s, k);
                assert_eq!(
                    merged.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
                    global,
                    "width={width} k={k}"
                );
                for (&(ms, mi), &gi) in merged.iter().zip(&global) {
                    assert_eq!(ms.to_bits(), s[gi].to_bits(), "score bits at {mi}");
                }
            }
        }
    }

    #[test]
    fn merge_handles_empty_and_short_inputs() {
        assert!(merge_top_k(Vec::new(), 5).is_empty());
        let out = merge_top_k(vec![(1.0, 3), (2.0, 1)], 10);
        assert_eq!(out, vec![(2.0, 1), (1.0, 3)]);
    }
}
