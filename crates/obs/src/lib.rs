//! # om-obs
//!
//! Zero-dependency observability for the OmniMatch stack: a span-based
//! tracer, a metrics registry (counters / gauges / fixed-bucket
//! histograms), a leveled logging facade and two file sinks (a JSONL event
//! stream and a `chrome://tracing`-compatible trace), all designed around
//! two hard constraints:
//!
//! 1. **Near-zero overhead when disabled.** Every public entry point
//!    guards on one relaxed atomic load ([`enabled`]). A disabled
//!    [`span`] returns an inert guard; a disabled [`emit`] is a branch.
//! 2. **No perturbation of determinism.** Instrumentation only *reads*
//!    clocks and model state — it never draws from an RNG, never reorders
//!    work, and never mutates tensors — so training results are bitwise
//!    identical with observability on or off (enforced by
//!    `crates/core/tests/determinism.rs`).
//!
//! ## Control surface
//!
//! | knob | effect |
//! |---|---|
//! | `OM_OBS=1` | enable tracing/metrics/telemetry (default off) |
//! | `OM_LOG=error…trace` | stderr log level of the [`info!`]-family macros (default `info`) |
//! | `OM_OBS_DIR=path` | sink root (default `results/obs/`) |
//! | `OM_OBS_ADDR=host:port` | serve `/metrics`, `/healthz`, `/statz` over HTTP (see [`http`]; default: no socket) |
//! | `OM_FAULT=site:nth` | fault injection: kill the process at a named kill point (see [`fault`]) |
//!
//! Independent of `OM_OBS`, the **live stats plane** ([`live`]) is always
//! on: cheap atomic counters/gauges and seqlock histograms readable at
//! any moment, exposed over HTTP by [`http`] and complemented by the
//! [`flightrec`] crash flight recorder.
//!
//! Tests override all three programmatically ([`set_enabled`],
//! [`logger::set_level`], [`set_out_root`]) — environment reads happen
//! once, on first use.
//!
//! ## Runs
//!
//! Events accumulate in process-global buffers and are written out when a
//! *run* finishes: [`run_begin`] names the run (first caller wins, so a
//! table binary owns the run and the `Trainer::fit` calls inside it feed
//! the same stream), [`run_finish`] drains every buffer into
//! `<out_root>/<run>/{events.jsonl, trace.json, manifest.json}`.
//! `cargo obs-report <dir>` renders a summary (top spans by self-time,
//! loss sparklines, histogram quantiles).

pub mod clock;
pub mod fault;
pub mod flightrec;
pub mod http;
pub mod json;
pub mod live;
pub mod logger;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

pub use sink::{
    emit, manifest_set, out_root, run_active, run_begin, run_finish, run_scope, set_out_root,
    RunScope, Value,
};
pub use trace::{span, span_if, Span};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn ensure_env() {
    ENV_INIT.call_once(|| {
        let on = std::env::var("OM_OBS")
            .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "off"))
            .unwrap_or(false);
        ENABLED.store(on, Ordering::Relaxed);
    });
}

/// Is observability collection on? One relaxed load after the first call;
/// seeded from `OM_OBS` (default off).
#[inline]
pub fn enabled() -> bool {
    ensure_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically enable/disable collection (overrides `OM_OBS`).
/// Returns the previous state. Intended for tests that assert the
/// disabled path is byte-identical to the enabled one.
pub fn set_enabled(on: bool) -> bool {
    ensure_env();
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Log at ERROR level to stderr (always) and into the event stream (when
/// [`enabled`]). `OM_LOG` / [`logger::set_level`] gate the stderr side.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Log at WARN level; see [`error!`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Log at INFO level — the progress-output replacement for raw
/// `eprintln!` (the default `OM_LOG` level shows it); see [`error!`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Log at DEBUG level (hidden unless `OM_LOG=debug|trace`); see [`error!`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

/// Serialises unit tests that toggle the global enable flag or drain the
/// global buffers, so they cannot steal each other's records.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn set_enabled_roundtrip() {
        let _g = super::test_lock();
        let prev = super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
        super::set_enabled(prev);
    }
}
