//! Length/CRC-framed arena blobs (`OMAB` v1/v2) — the on-disk form of
//! [`crate::ItemArena`]/[`crate::UserArena`], written atomically and
//! loaded all-or-nothing, OMCK v2 style.
//!
//! Version 1 layout (all integers little-endian):
//!
//! ```text
//! off  0  magic   b"OMAB"
//!      4  version u32 = 1
//!      8  kind    u32        (0 = items, 1 = users)
//!     12  dim     u32        feature width per row
//!     16  n       u64        row count
//!     24  ids_crc u32        crc32 of the raw ids bytes
//!     28  data_crc u32       crc32 of the raw feature bytes
//!     32  header_crc u32     crc32 of bytes [0, 32)
//!     36  pad     4 zero bytes
//!     40  ids     n × u32    arena row order
//!     …   pad     to the next 8-byte boundary
//!     …   data    n × dim × f32
//! ```
//!
//! Version 2 is the **quantized** form: the same 40-byte header with
//! `version = 2`, and the f32 feature block replaced by a per-row-scale
//! int8 payload (see [`crate::quant`] for the code semantics):
//!
//! ```text
//!     40  ids     n × u32    arena row order
//!     …   pad     to the next 8-byte boundary
//!     …   scales  n × f32    one dequant scale per row
//!     …   pad     to the next 8-byte boundary
//!     …   qdata   n × dim × i8
//! ```
//!
//! In v2, `data_crc` covers everything from the scales section to the end
//! of file (scales, the inter-section pad, and the codes) as one
//! contiguous region. A v1 reader rejects a v2 blob with
//! [`BlobError::BadVersion`] rather than misreading int8 codes as floats.
//!
//! The header pins the exact file length, so truncation *and* trailing
//! garbage are rejected even in [`Verify::Quick`] mode without touching a
//! single data page. [`Verify::Full`] additionally checks both payload
//! CRCs — O(file), the right default for tests and one-off tooling, while
//! a production cold start uses `Quick` and keeps start-up cost at
//! O(pages touched) (CRCs were verified when the blob was written; the
//! frame still catches the torn/partial-file failure modes).

use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Arc;

use om_nn::serialize::crc32;

use crate::mmap::{F32View, I8View, Mmap};

const MAGIC: &[u8; 4] = b"OMAB";
const VERSION: u32 = 1;
const VERSION_Q8: u32 = 2;
const HEADER_LEN: usize = 40;
const IDS_OFF: usize = 40;

/// Which arena a blob holds; loading a blob as the wrong arena type is an
/// error, not a silent reinterpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlobKind {
    /// An item arena (`kind = 0`).
    Items,
    /// A user arena (`kind = 1`).
    Users,
}

impl BlobKind {
    fn code(self) -> u32 {
        match self {
            BlobKind::Items => 0,
            BlobKind::Users => 1,
        }
    }

    fn from_code(code: u32) -> Option<BlobKind> {
        match code {
            0 => Some(BlobKind::Items),
            1 => Some(BlobKind::Users),
            _ => None,
        }
    }
}

/// How much of the blob to validate at open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verify {
    /// Header CRC + exact-length frame only: O(1) pages touched.
    Quick,
    /// Everything `Quick` checks plus both payload CRCs: O(file).
    Full,
}

/// Why a blob was rejected. Every variant is all-or-nothing: no arena is
/// ever built from a file that produced one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// Underlying IO failure (open/read/write/rename).
    Io(String),
    /// The first four bytes are not `OMAB`.
    BadMagic,
    /// A version this build does not understand.
    BadVersion(u32),
    /// An unknown kind code in the header.
    BadKind(u32),
    /// The blob holds the other arena type.
    WrongKind {
        /// Kind the caller asked for.
        expected: BlobKind,
        /// Kind the header declares.
        found: BlobKind,
    },
    /// Header bytes fail their CRC.
    HeaderCrc,
    /// The ids section fails its CRC.
    IdsCrc,
    /// The feature data fails its CRC.
    DataCrc,
    /// The file is shorter than the header-declared frame.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Actual file length.
        actual: u64,
    },
    /// The file is longer than the header-declared frame.
    TrailingBytes {
        /// Byte length the header implies.
        expected: u64,
        /// Actual file length.
        actual: u64,
    },
    /// Declared sizes overflow or a section is misaligned.
    BadFrame,
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::Io(e) => write!(f, "io error: {e}"),
            BlobError::BadMagic => write!(f, "not an OMAB arena blob"),
            BlobError::BadVersion(v) => write!(f, "unsupported OMAB version {v}"),
            BlobError::BadKind(k) => write!(f, "unknown arena kind code {k}"),
            BlobError::WrongKind { expected, found } => {
                write!(f, "arena kind mismatch: expected {expected:?}, found {found:?}")
            }
            BlobError::HeaderCrc => write!(f, "header CRC mismatch"),
            BlobError::IdsCrc => write!(f, "ids section CRC mismatch"),
            BlobError::DataCrc => write!(f, "feature data CRC mismatch"),
            BlobError::Truncated { expected, actual } => {
                write!(f, "truncated blob: expected {expected} bytes, found {actual}")
            }
            BlobError::TrailingBytes { expected, actual } => {
                write!(f, "trailing bytes: expected {expected} bytes, found {actual}")
            }
            BlobError::BadFrame => write!(f, "inconsistent frame lengths"),
        }
    }
}

impl std::error::Error for BlobError {}

impl From<io::Error> for BlobError {
    fn from(e: io::Error) -> BlobError {
        BlobError::Io(e.to_string())
    }
}

fn align8(off: usize) -> usize {
    off.div_ceil(8) * 8
}

/// Byte offsets of the two sections and the total frame length for a
/// v1 blob of `n` rows × `dim`. `None` on arithmetic overflow.
fn frame(n: usize, dim: usize) -> Option<(usize, usize, usize)> {
    let ids_len = n.checked_mul(4)?;
    let data_off = align8(IDS_OFF.checked_add(ids_len)?);
    let data_len = n.checked_mul(dim)?.checked_mul(4)?;
    let total = data_off.checked_add(data_len)?;
    Some((IDS_OFF, data_off, total))
}

/// Byte offsets `(scales_off, q_off, total)` for a v2 quantized blob of
/// `n` rows × `dim`. `None` on arithmetic overflow.
fn frame_q8(n: usize, dim: usize) -> Option<(usize, usize, usize)> {
    let ids_len = n.checked_mul(4)?;
    let scales_off = align8(IDS_OFF.checked_add(ids_len)?);
    let q_off = align8(scales_off.checked_add(n.checked_mul(4)?)?);
    let total = q_off.checked_add(n.checked_mul(dim)?)?;
    Some((scales_off, q_off, total))
}

/// Serialize one arena to `path`, atomically: write `path.tmp`, fsync,
/// rename. `data.len()` must equal `ids.len() * dim`.
pub fn write_blob(
    path: &Path,
    kind: BlobKind,
    dim: usize,
    ids: &[u32],
    data: &[f32],
) -> Result<(), BlobError> {
    assert_eq!(data.len(), ids.len() * dim, "ragged arena blob");
    let n = ids.len();
    let (ids_off, data_off, total) = frame(n, dim).ok_or(BlobError::BadFrame)?;

    let mut ids_bytes = Vec::with_capacity(n * 4);
    for id in ids {
        ids_bytes.extend_from_slice(&id.to_le_bytes());
    }
    let mut data_bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        data_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&kind.code().to_le_bytes());
    header.extend_from_slice(&u32::try_from(dim).map_err(|_| BlobError::BadFrame)?.to_le_bytes());
    header.extend_from_slice(&(n as u64).to_le_bytes());
    header.extend_from_slice(&crc32(&ids_bytes).to_le_bytes());
    header.extend_from_slice(&crc32(&data_bytes).to_le_bytes());
    let hcrc = crc32(&header);
    header.extend_from_slice(&hcrc.to_le_bytes());
    header.extend_from_slice(&[0u8; 4]);
    debug_assert_eq!(header.len(), HEADER_LEN);

    let tmp = path.with_extension("omab.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&header)?;
        f.write_all(&ids_bytes)?;
        f.write_all(&vec![0u8; data_off - ids_off - ids_bytes.len()])?;
        f.write_all(&data_bytes)?;
        f.sync_all()?;
        debug_assert_eq!(HEADER_LEN + ids_bytes.len() + (data_off - ids_off - ids_bytes.len()) + data_bytes.len(), total);
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Serialize one quantized arena to `path` as an `OMAB` v2 blob,
/// atomically. `q.len()` must equal `ids.len() * dim` and `scales.len()`
/// must equal `ids.len()`.
pub fn write_blob_q8(
    path: &Path,
    kind: BlobKind,
    dim: usize,
    ids: &[u32],
    q: &[i8],
    scales: &[f32],
) -> Result<(), BlobError> {
    assert_eq!(q.len(), ids.len() * dim, "ragged quantized arena blob");
    assert_eq!(scales.len(), ids.len(), "one scale per quantized arena row");
    let n = ids.len();
    let (scales_off, q_off, total) = frame_q8(n, dim).ok_or(BlobError::BadFrame)?;

    let mut ids_bytes = Vec::with_capacity(n * 4);
    for id in ids {
        ids_bytes.extend_from_slice(&id.to_le_bytes());
    }
    // The data CRC covers the whole scales..end region, pad included, so
    // the open-time check is one contiguous crc32 over the map.
    let mut data_bytes = Vec::with_capacity(total - scales_off);
    for s in scales {
        data_bytes.extend_from_slice(&s.to_le_bytes());
    }
    data_bytes.resize(q_off - scales_off, 0u8);
    data_bytes.extend(q.iter().map(|&c| c as u8));
    debug_assert_eq!(data_bytes.len(), total - scales_off);

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION_Q8.to_le_bytes());
    header.extend_from_slice(&kind.code().to_le_bytes());
    header.extend_from_slice(&u32::try_from(dim).map_err(|_| BlobError::BadFrame)?.to_le_bytes());
    header.extend_from_slice(&(n as u64).to_le_bytes());
    header.extend_from_slice(&crc32(&ids_bytes).to_le_bytes());
    header.extend_from_slice(&crc32(&data_bytes).to_le_bytes());
    let hcrc = crc32(&header);
    header.extend_from_slice(&hcrc.to_le_bytes());
    header.extend_from_slice(&[0u8; 4]);
    debug_assert_eq!(header.len(), HEADER_LEN);

    let tmp = path.with_extension("omab.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&header)?;
        f.write_all(&ids_bytes)?;
        f.write_all(&vec![0u8; scales_off - IDS_OFF - ids_bytes.len()])?;
        f.write_all(&data_bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Section offsets past the header — which sections exist depends on the
/// format version.
enum Layout {
    /// v1: one f32 feature block.
    F32 {
        /// Offset of the `n × dim` f32 block.
        data_off: usize,
    },
    /// v2: per-row scales + int8 codes.
    Q8 {
        /// Offset of the `n` f32 scales.
        scales_off: usize,
        /// Offset of the `n × dim` i8 codes.
        q_off: usize,
    },
}

/// An opened, frame-validated arena blob.
pub struct ArenaBlob {
    map: Arc<Mmap>,
    kind: BlobKind,
    dim: usize,
    n: usize,
    layout: Layout,
}

impl ArenaBlob {
    /// Open and validate `path` (see [`Verify`] for how much validation).
    pub fn open(path: &Path, verify: Verify) -> Result<ArenaBlob, BlobError> {
        let map = Arc::new(Mmap::open(path)?);
        let bytes = map.as_bytes();
        if bytes.len() < HEADER_LEN {
            return Err(BlobError::Truncated {
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        if &bytes[0..4] != MAGIC {
            return Err(BlobError::BadMagic);
        }
        if u32_at(32) != crc32(&bytes[0..32]) {
            return Err(BlobError::HeaderCrc);
        }
        let version = u32_at(4);
        if version != VERSION && version != VERSION_Q8 {
            return Err(BlobError::BadVersion(version));
        }
        let kind = BlobKind::from_code(u32_at(8)).ok_or(BlobError::BadKind(u32_at(8)))?;
        let dim = u32_at(12) as usize;
        let n = usize::try_from(u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")))
            .map_err(|_| BlobError::BadFrame)?;
        let (layout, data_region, total) = if version == VERSION {
            let (_, data_off, total) = frame(n, dim).ok_or(BlobError::BadFrame)?;
            (Layout::F32 { data_off }, data_off, total)
        } else {
            let (scales_off, q_off, total) = frame_q8(n, dim).ok_or(BlobError::BadFrame)?;
            (Layout::Q8 { scales_off, q_off }, scales_off, total)
        };
        match bytes.len().cmp(&total) {
            std::cmp::Ordering::Less => {
                return Err(BlobError::Truncated { expected: total as u64, actual: bytes.len() as u64 })
            }
            std::cmp::Ordering::Greater => {
                return Err(BlobError::TrailingBytes { expected: total as u64, actual: bytes.len() as u64 })
            }
            std::cmp::Ordering::Equal => {}
        }
        if verify == Verify::Full {
            if u32_at(24) != crc32(&bytes[IDS_OFF..IDS_OFF + n * 4]) {
                return Err(BlobError::IdsCrc);
            }
            if u32_at(28) != crc32(&bytes[data_region..total]) {
                return Err(BlobError::DataCrc);
            }
        }
        om_obs::metrics::counter("serve.blob.opens").add(1);
        Ok(ArenaBlob { map, kind, dim, n, layout })
    }

    /// Whether the blob holds the int8 quantized payload (v2) rather than
    /// the f32 block (v1).
    pub fn is_quantized(&self) -> bool {
        matches!(self.layout, Layout::Q8 { .. })
    }

    /// Which arena type the blob holds.
    pub fn kind(&self) -> BlobKind {
        self.kind
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the blob holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the feature data is genuinely page-mapped (vs. the heap
    /// fallback on unsupported targets).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Decode the row-order id section (a copy — ids are 4 bytes/row, the
    /// cheap part of the blob).
    pub fn ids(&self) -> Vec<u32> {
        let bytes = self.map.as_bytes();
        (0..self.n)
            .map(|i| {
                let off = IDS_OFF + i * 4;
                u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
            })
            .collect()
    }

    /// A zero-copy f32 window on little-endian targets, an owned decode
    /// elsewhere: `count` floats starting `off` bytes into the map.
    fn f32_rows(&self, off: usize, count: usize) -> crate::arena::Rows {
        if cfg!(target_endian = "little") {
            crate::arena::Rows::Mapped(F32View::new(Arc::clone(&self.map), off, count))
        } else {
            let bytes = self.map.as_bytes();
            let data = (0..count)
                .map(|i| {
                    let o = off + i * 4;
                    f32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"))
                })
                .collect();
            crate::arena::Rows::Owned(data)
        }
    }

    /// The `[n, dim]` feature block of a v1 blob. Panics on a quantized
    /// blob — the arena loader branches on [`ArenaBlob::is_quantized`]
    /// first.
    pub(crate) fn feature_rows(&self) -> crate::arena::Rows {
        match self.layout {
            Layout::F32 { data_off } => self.f32_rows(data_off, self.n * self.dim),
            Layout::Q8 { .. } => panic!("feature_rows on a quantized (v2) blob"),
        }
    }

    /// The `(codes, scales)` payload of a v2 blob: codes are a zero-copy
    /// i8 window (no endianness concern), scales follow the same
    /// endian-gated path as v1 feature rows. Panics on a v1 blob.
    pub(crate) fn q8_payload(&self) -> (crate::arena::QBytes, crate::arena::Rows) {
        match self.layout {
            Layout::Q8 { scales_off, q_off } => {
                let q = crate::arena::QBytes::Mapped(I8View::new(
                    Arc::clone(&self.map),
                    q_off,
                    self.n * self.dim,
                ));
                (q, self.f32_rows(scales_off, self.n))
            }
            Layout::F32 { .. } => panic!("q8_payload on an f32 (v1) blob"),
        }
    }
}
