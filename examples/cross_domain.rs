//! Cross-domain comparison: train OmniMatch and every baseline of §5.3 on
//! one scenario and print a Table 2-style comparison row.
//!
//! ```text
//! cargo run --release --example cross_domain [-- <source> <target>]
//! ```

use omnimatch::baselines::{Recommender, CMF, EMCDR, HeroGraph, LightGCN, NGCF, PTUPCDR};
use omnimatch::core::{OmniMatchConfig, Trainer};
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let source = args.get(1).map(String::as_str).unwrap_or("Books");
    let target = args.get(2).map(String::as_str).unwrap_or("Movies");

    println!("generating the Amazon-preset synthetic world…");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies", "Music"]);
    let scenario = world.scenario(source, target, SplitConfig::default());
    let pairs = scenario.test_pairs();
    println!(
        "{}: {} train users, {} cold-start test users, {} test pairs\n",
        scenario.name(),
        scenario.train_users.len(),
        scenario.test_users.len(),
        pairs.len()
    );

    println!("{:<11} {:>7} {:>7}   (lower is better)", "method", "RMSE", "MAE");
    let baselines: Vec<Box<dyn Recommender>> = vec![
        Box::new(NGCF::fit(&scenario, 1)),
        Box::new(LightGCN::fit(&scenario, 1)),
        Box::new(CMF::fit(&scenario, 1)),
        Box::new(EMCDR::fit(&scenario, 1)),
        Box::new(PTUPCDR::fit(&scenario, 1)),
        Box::new(HeroGraph::fit(&scenario, 1)),
    ];
    let mut best_other = f32::INFINITY;
    for model in &baselines {
        let e = model.evaluate(&pairs);
        best_other = best_other.min(e.rmse);
        println!("{:<11} {:>7.3} {:>7.3}", model.name(), e.rmse, e.mae);
    }

    println!("training OmniMatch…");
    let trained = Trainer::new(OmniMatchConfig::default()).fit(&scenario);
    let e = trained.evaluate(&pairs);
    println!("{:<11} {:>7.3} {:>7.3}", "Ours", e.rmse, e.mae);
    println!(
        "\nΔ% over best competitor (RMSE): {:+.1}%",
        omnimatch::metrics::improvement_pct(e.rmse, best_other)
    );
}
