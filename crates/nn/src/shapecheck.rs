//! Static shape/graph checking: validate a model's wiring **before** a
//! single forward pass runs.
//!
//! A [`ShapeGraph`] is a symbolic mirror of a network: nodes are layers
//! (or inputs, or loss heads), edges are tensor flows. Calling
//! [`ShapeGraph::check`] propagates symbolic shapes (a free batch
//! dimension plus concrete widths) through every node, reporting the
//! first inconsistency as a [`ShapeError`] that names the offending
//! layer, and flags every parameter-bearing node that is *unreachable*
//! from the total loss — the class of silent miswiring bug (a
//! discriminator head that never receives gradient, a projection head
//! orphaned by an ablation flag) that adversarial-plus-contrastive
//! stacks like OmniMatch's GRL objective are notoriously sensitive to.
//!
//! The checker is deliberately conservative: it understands exactly the
//! layer vocabulary this workspace uses (Linear / Embedding / TextCNN /
//! Transformer / MLP / gradient reversal / concat / the three loss
//! heads) and refuses shapes it cannot prove.

use std::collections::BTreeSet;
use std::fmt;

/// One symbolic dimension: either a named free variable (the batch axis)
/// or a concrete width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dim {
    /// A free symbolic dimension, e.g. `B` for the batch axis.
    Sym(&'static str),
    /// A concrete, known extent.
    Fixed(usize),
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Sym(s) => write!(f, "{s}"),
            Dim::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// A symbolic tensor shape (empty = scalar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape(pub Vec<Dim>);

impl Shape {
    /// The conventional scalar-loss shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    fn last_fixed(&self) -> Option<usize> {
        match self.0.last() {
            Some(Dim::Fixed(n)) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Symbolic layer vocabulary — the shape transform of every module kind
/// the workspace's models are assembled from.
#[derive(Debug, Clone)]
pub enum Op {
    /// A graph input with a declared shape.
    Input(Shape),
    /// Token-id lookup `[.., L] → [.., L, dim]`.
    Embedding {
        /// Vocabulary size (rows of the table).
        vocab: usize,
        /// Embedding width.
        dim: usize,
    },
    /// Multi-width convolution + max-over-time:
    /// `[B, L, emb_dim] → [B, widths.len()·filters]`.
    TextCnn {
        /// Expected embedding width.
        emb_dim: usize,
        /// Kernel widths; every width must fit in the document length.
        widths: Vec<usize>,
        /// Filters per width.
        filters: usize,
    },
    /// Pre-norm encoder + mean pooling: `[B, L, dim] → [B, dim]`.
    Transformer {
        /// Model width (must divide evenly by `heads`).
        dim: usize,
        /// Attention heads.
        heads: usize,
        /// Positional-embedding capacity; `L` must not exceed it.
        max_len: usize,
    },
    /// Dense layer `[.., input] → [.., output]`.
    Linear {
        /// Expected input width.
        input: usize,
        /// Output width.
        output: usize,
    },
    /// A stack of dense layers `dims[0] → … → dims.last()`.
    Mlp {
        /// Layer widths, length ≥ 2.
        dims: Vec<usize>,
    },
    /// Shape-preserving elementwise module (ReLU, dropout, L2-normalise).
    Activation,
    /// Gradient reversal — identity on shapes, sign flip on gradients.
    GradReversal,
    /// Concatenate all inputs along the last axis.
    ConcatLast,
    /// Softmax cross-entropy `[B, classes] → scalar`.
    CrossEntropy {
        /// Number of target classes.
        classes: usize,
    },
    /// Supervised contrastive loss over projected views `[B, D] → scalar`.
    SupCon,
    /// Weighted sum of scalar losses → scalar. An input with weight `0`
    /// contributes no gradient and is treated as disconnected by the
    /// reachability pass.
    WeightedSum {
        /// One weight per input, in input order.
        weights: Vec<f32>,
    },
}

/// Handle to a node inside a [`ShapeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(usize);

struct Node {
    name: String,
    op: Op,
    inputs: Vec<NodeId>,
    trainable: bool,
}

/// A wiring inconsistency, anchored to the layer that rejects its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Name of the offending node.
    pub node: String,
    /// What went wrong, with the expected and actual shapes.
    pub msg: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape check failed at `{}`: {}", self.node, self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// The result of a successful check.
#[derive(Debug, Clone)]
pub struct ShapeReport {
    /// Every node's resolved output shape, in insertion order.
    pub shapes: Vec<(String, Shape)>,
    /// Parameter-bearing nodes with no gradient path from the total loss.
    pub unreachable_params: Vec<String>,
}

/// A symbolic model graph under construction.
#[derive(Default)]
pub struct ShapeGraph {
    nodes: Vec<Node>,
}

impl ShapeGraph {
    /// An empty graph.
    pub fn new() -> ShapeGraph {
        ShapeGraph::default()
    }

    /// Add a node. `inputs` must already be part of the graph, which
    /// keeps the node list topologically ordered by construction.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: &[NodeId],
        trainable: bool,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        for i in inputs {
            assert!(i.0 < id.0, "ShapeGraph::add: input node not yet defined");
        }
        self.nodes.push(Node {
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
            trainable,
        });
        id
    }

    /// Convenience: a non-trainable input node.
    pub fn input(&mut self, name: impl Into<String>, shape: Shape) -> NodeId {
        self.add(name, Op::Input(shape), &[], false)
    }

    fn err(node: &Node, msg: String) -> ShapeError {
        ShapeError {
            node: node.name.clone(),
            msg,
        }
    }

    fn infer(node: &Node, ins: &[&Shape]) -> Result<Shape, ShapeError> {
        let one = |ins: &[&Shape]| -> Result<Shape, ShapeError> {
            if ins.len() != 1 {
                return Err(Self::err(node, format!("expected 1 input, got {}", ins.len())));
            }
            Ok(ins[0].clone())
        };
        match &node.op {
            Op::Input(shape) => Ok(shape.clone()),
            Op::Embedding { vocab, dim } => {
                if *vocab == 0 || *dim == 0 {
                    return Err(Self::err(node, "vocab and dim must be positive".into()));
                }
                let mut s = one(ins)?;
                s.0.push(Dim::Fixed(*dim));
                Ok(s)
            }
            Op::TextCnn {
                emb_dim,
                widths,
                filters,
            } => {
                let s = one(ins)?;
                if widths.is_empty() || *filters == 0 {
                    return Err(Self::err(node, "needs ≥1 kernel width and ≥1 filter".into()));
                }
                if s.0.len() != 3 {
                    return Err(Self::err(node, format!("expects [B, L, emb], got {s}")));
                }
                if s.last_fixed() != Some(*emb_dim) {
                    return Err(Self::err(
                        node,
                        format!("embedding width mismatch: expects {emb_dim}, got {s}"),
                    ));
                }
                if let Dim::Fixed(l) = s.0[1] {
                    if let Some(&w) = widths.iter().find(|&&w| w > l) {
                        return Err(Self::err(
                            node,
                            format!("kernel width {w} exceeds document length {l}"),
                        ));
                    }
                }
                Ok(Shape(vec![s.0[0].clone(), Dim::Fixed(widths.len() * filters)]))
            }
            Op::Transformer { dim, heads, max_len } => {
                let s = one(ins)?;
                if *heads == 0 || !dim.is_multiple_of(*heads) {
                    return Err(Self::err(
                        node,
                        format!("width {dim} must divide evenly by {heads} heads"),
                    ));
                }
                if s.0.len() != 3 || s.last_fixed() != Some(*dim) {
                    return Err(Self::err(
                        node,
                        format!("expects [B, L, {dim}], got {s}"),
                    ));
                }
                if let Dim::Fixed(l) = s.0[1] {
                    if l > *max_len {
                        return Err(Self::err(
                            node,
                            format!("sequence length {l} exceeds max_len {max_len}"),
                        ));
                    }
                }
                Ok(Shape(vec![s.0[0].clone(), Dim::Fixed(*dim)]))
            }
            Op::Linear { input, output } => {
                let mut s = one(ins)?;
                if s.last_fixed() != Some(*input) {
                    return Err(Self::err(
                        node,
                        format!("expects input width {input}, got {s}"),
                    ));
                }
                *s.0.last_mut().expect("non-scalar") = Dim::Fixed(*output);
                Ok(s)
            }
            Op::Mlp { dims } => {
                let mut s = one(ins)?;
                if dims.len() < 2 {
                    return Err(Self::err(node, "MLP needs at least two widths".into()));
                }
                if s.last_fixed() != Some(dims[0]) {
                    return Err(Self::err(
                        node,
                        format!("expects input width {}, got {s}", dims[0]),
                    ));
                }
                *s.0.last_mut().expect("non-scalar") = Dim::Fixed(*dims.last().expect("≥2"));
                Ok(s)
            }
            Op::Activation | Op::GradReversal => one(ins),
            Op::ConcatLast => {
                if ins.is_empty() {
                    return Err(Self::err(node, "concat of zero inputs".into()));
                }
                let lead = &ins[0].0[..ins[0].0.len().saturating_sub(1)];
                let mut total = 0usize;
                for s in ins {
                    if s.0.is_empty() || &s.0[..s.0.len() - 1] != lead {
                        return Err(Self::err(
                            node,
                            format!("inputs disagree on leading dims: {} vs {}", ins[0], s),
                        ));
                    }
                    total += s.last_fixed().ok_or_else(|| {
                        Self::err(node, format!("cannot concat symbolic last dim of {s}"))
                    })?;
                }
                let mut out = lead.to_vec();
                out.push(Dim::Fixed(total));
                Ok(Shape(out))
            }
            Op::CrossEntropy { classes } => {
                let s = one(ins)?;
                if s.0.len() != 2 || s.last_fixed() != Some(*classes) {
                    return Err(Self::err(
                        node,
                        format!("expects [B, {classes}] logits, got {s}"),
                    ));
                }
                Ok(Shape::scalar())
            }
            Op::SupCon => {
                for s in ins {
                    if s.0.len() != 2 {
                        return Err(Self::err(
                            node,
                            format!("expects projected views [B, D], got {s}"),
                        ));
                    }
                    if s.last_fixed() != ins[0].last_fixed() {
                        return Err(Self::err(
                            node,
                            format!("views disagree on width: {} vs {}", ins[0], s),
                        ));
                    }
                }
                Ok(Shape::scalar())
            }
            Op::WeightedSum { weights } => {
                if weights.len() != ins.len() {
                    return Err(Self::err(
                        node,
                        format!("{} weights for {} inputs", weights.len(), ins.len()),
                    ));
                }
                for s in ins {
                    if !s.0.is_empty() {
                        return Err(Self::err(
                            node,
                            format!("expects scalar loss terms, got {s}"),
                        ));
                    }
                }
                Ok(Shape::scalar())
            }
        }
    }

    /// Propagate shapes through the whole graph and audit gradient
    /// reachability from `total_loss`. Returns the first inconsistency as
    /// an error naming the offending layer.
    pub fn check(&self, total_loss: NodeId) -> Result<ShapeReport, ShapeError> {
        assert!(total_loss.0 < self.nodes.len(), "unknown loss node");
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let ins: Vec<&Shape> = node.inputs.iter().map(|i| &shapes[i.0]).collect();
            shapes.push(Self::infer(node, &ins)?);
        }
        if !shapes[total_loss.0].0.is_empty() {
            return Err(ShapeError {
                node: self.nodes[total_loss.0].name.clone(),
                msg: format!(
                    "total loss must be scalar, got {}",
                    shapes[total_loss.0]
                ),
            });
        }

        // Backward reachability: which nodes can receive gradient from the
        // total loss? Zero-weighted loss terms are dead edges.
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![total_loss.0];
        while let Some(i) = stack.pop() {
            if !reached.insert(i) {
                continue;
            }
            let node = &self.nodes[i];
            for (k, input) in node.inputs.iter().enumerate() {
                if let Op::WeightedSum { weights } = &node.op {
                    if weights[k] == 0.0 {
                        continue;
                    }
                }
                stack.push(input.0);
            }
        }
        // A name may label several nodes (weight sharing — e.g. a head
        // applied to both domains, or one embedding table used by every
        // backbone); the parameter is dead only if *every* use is cut off.
        let reached_names: BTreeSet<&str> = reached
            .iter()
            .filter(|&&i| self.nodes[i].trainable)
            .map(|&i| self.nodes[i].name.as_str())
            .collect();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut unreachable_params: Vec<String> = Vec::new();
        for n in &self.nodes {
            if n.trainable
                && !reached_names.contains(n.name.as_str())
                && seen.insert(n.name.as_str())
            {
                unreachable_params.push(n.name.clone());
            }
        }

        Ok(ShapeReport {
            shapes: self
                .nodes
                .iter()
                .zip(&shapes)
                .map(|(n, s)| (n.name.clone(), s.clone()))
                .collect(),
            unreachable_params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(widths: &[usize]) -> Shape {
        let mut v = vec![Dim::Sym("B")];
        v.extend(widths.iter().map(|&w| Dim::Fixed(w)));
        Shape(v)
    }

    #[test]
    fn linear_chain_propagates() {
        let mut g = ShapeGraph::new();
        let x = g.input("x", batch(&[8]));
        let l1 = g.add("l1", Op::Linear { input: 8, output: 4 }, &[x], true);
        let l2 = g.add("l2", Op::Linear { input: 4, output: 3 }, &[l1], true);
        let loss = g.add("loss", Op::CrossEntropy { classes: 3 }, &[l2], false);
        let r = g.check(loss).unwrap();
        assert_eq!(r.shapes[2].1, batch(&[3]));
        assert!(r.unreachable_params.is_empty());
    }

    #[test]
    fn mismatched_linear_names_offender() {
        let mut g = ShapeGraph::new();
        let x = g.input("x", batch(&[8]));
        let l1 = g.add("l1", Op::Linear { input: 8, output: 4 }, &[x], true);
        let bad = g.add("bad_head", Op::Linear { input: 5, output: 3 }, &[l1], true);
        let loss = g.add("loss", Op::CrossEntropy { classes: 3 }, &[bad], false);
        let e = g.check(loss).unwrap_err();
        assert_eq!(e.node, "bad_head");
        assert!(e.msg.contains("expects input width 5"), "{e}");
    }

    #[test]
    fn embedding_then_textcnn() {
        let mut g = ShapeGraph::new();
        let ids = g.input("docs", batch(&[16]));
        let emb = g.add("emb", Op::Embedding { vocab: 100, dim: 12 }, &[ids], true);
        let cnn = g.add(
            "cnn",
            Op::TextCnn { emb_dim: 12, widths: vec![3, 4, 5], filters: 8 },
            &[emb],
            true,
        );
        let head = g.add("head", Op::Linear { input: 24, output: 5 }, &[cnn], true);
        let loss = g.add("loss", Op::CrossEntropy { classes: 5 }, &[head], false);
        let r = g.check(loss).unwrap();
        assert_eq!(r.shapes[2].1, batch(&[24]));
        assert!(r.unreachable_params.is_empty());
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let mut g = ShapeGraph::new();
        let ids = g.input("docs", batch(&[4]));
        let emb = g.add("emb", Op::Embedding { vocab: 100, dim: 12 }, &[ids], true);
        let cnn = g.add(
            "cnn",
            Op::TextCnn { emb_dim: 12, widths: vec![3, 9], filters: 8 },
            &[emb],
            true,
        );
        let loss = g.add("loss", Op::CrossEntropy { classes: 16 }, &[cnn], false);
        let e = g.check(loss).unwrap_err();
        assert_eq!(e.node, "cnn");
        assert!(e.msg.contains("kernel width 9 exceeds document length 4"), "{e}");
    }

    #[test]
    fn zero_weighted_branch_is_unreachable() {
        let mut g = ShapeGraph::new();
        let x = g.input("x", batch(&[8]));
        let main = g.add("main", Op::Linear { input: 8, output: 2 }, &[x], true);
        let aux = g.add("aux_head", Op::Linear { input: 8, output: 2 }, &[x], true);
        let l_main = g.add("l_main", Op::CrossEntropy { classes: 2 }, &[main], false);
        let l_aux = g.add("l_aux", Op::CrossEntropy { classes: 2 }, &[aux], false);
        let total = g.add(
            "total",
            Op::WeightedSum { weights: vec![1.0, 0.0] },
            &[l_main, l_aux],
            false,
        );
        let r = g.check(total).unwrap();
        assert_eq!(r.unreachable_params, vec!["aux_head".to_string()]);
    }

    #[test]
    fn concat_sums_widths_and_rejects_ragged() {
        let mut g = ShapeGraph::new();
        let a = g.input("a", batch(&[3]));
        let b = g.input("b", batch(&[5]));
        let cat = g.add("cat", Op::ConcatLast, &[a, b], false);
        let head = g.add("head", Op::Linear { input: 8, output: 1 }, &[cat], true);
        // Scalar-ify via a 1-class cross entropy to reuse check().
        let loss = g.add("loss", Op::CrossEntropy { classes: 1 }, &[head], false);
        assert!(g.check(loss).is_ok());

        let mut g2 = ShapeGraph::new();
        let a = g2.input("a", batch(&[3]));
        let b = g2.input("b", Shape(vec![Dim::Sym("C"), Dim::Fixed(5)]));
        let cat = g2.add("cat", Op::ConcatLast, &[a, b], false);
        let loss = g2.add("loss", Op::CrossEntropy { classes: 8 }, &[cat], false);
        let e = g2.check(loss).unwrap_err();
        assert_eq!(e.node, "cat");
    }

    #[test]
    fn transformer_head_divisibility() {
        let mut g = ShapeGraph::new();
        let ids = g.input("docs", batch(&[6]));
        let emb = g.add("emb", Op::Embedding { vocab: 50, dim: 9 }, &[ids], true);
        let tr = g.add(
            "transformer",
            Op::Transformer { dim: 9, heads: 2, max_len: 16 },
            &[emb],
            true,
        );
        let loss = g.add("loss", Op::CrossEntropy { classes: 9 }, &[tr], false);
        let e = g.check(loss).unwrap_err();
        assert_eq!(e.node, "transformer");
        assert!(e.msg.contains("divide evenly"), "{e}");
    }
}
