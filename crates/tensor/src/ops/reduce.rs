//! Reductions over all elements or single axes.

use super::{acc, wants_grad};
use crate::{kernels, runtime};
use crate::Tensor;

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    ///
    /// Uses the fixed-chunk deterministic reduction of [`kernels::sum`], so
    /// the result is bitwise identical at every thread count.
    pub fn sum_all(&self) -> Tensor {
        let s: f32 = kernels::sum(&self.data());
        let n = self.numel();
        Tensor::from_op(
            vec![s],
            &[1],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = vec![g[0]; n];
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.numel() as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// Sum over rows of a 2-D view: `[m, n] -> [n]`.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = self.shape().as_2d();
        let d = self.data();
        let mut out = vec![0.0f32; n];
        {
            // Parallel over column blocks; each out[j] still accumulates in
            // row order, so results match the serial loop bit for bit.
            let dref: &[f32] = &d;
            runtime::parallel_rows_mut(&mut out, 1, 256, |j0, block| {
                for i in 0..m {
                    let row = &dref[i * n + j0..i * n + j0 + block.len()];
                    for (o, &v) in block.iter_mut().zip(row) {
                        *o += v;
                    }
                }
            });
        }
        drop(d);
        Tensor::from_op(
            out,
            &[n],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::fill_rows(m, n, 8, |_, row| row.copy_from_slice(g));
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Sum over columns of a 2-D view: `[m, n] -> [m]`.
    pub fn sum_cols(&self) -> Tensor {
        let (m, n) = self.shape().as_2d();
        let d = self.data();
        let out = {
            let dref: &[f32] = &d;
            kernels::fill_rows(m, 1, 64, |i, slot| {
                slot[0] = dref[i * n..(i + 1) * n].iter().sum();
            })
        };
        drop(d);
        Tensor::from_op(
            out,
            &[m],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::fill_rows(m, n, 8, |i, row| row.fill(g[i]));
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Mean over columns of a 2-D view: `[m, n] -> [m]`.
    pub fn mean_cols(&self) -> Tensor {
        let (_, n) = self.shape().as_2d();
        self.sum_cols().scale(1.0 / n as f32)
    }

    /// Mean over rows of a 2-D view: `[m, n] -> [n]`. This is the batch-mean
    /// used for pooled statistics.
    pub fn mean_rows(&self) -> Tensor {
        let (m, _) = self.shape().as_2d();
        self.sum_rows().scale(1.0 / m as f32)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn sum_all_and_mean_all() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let s = x.sum_all();
        assert_eq!(s.item(), 10.0);
        let m = x.mean_all();
        assert_eq!(m.item(), 2.5);
        m.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn sum_rows_collapses_batch() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).requires_grad();
        let r = x.sum_rows();
        assert_eq!(r.to_vec(), vec![5.0, 7.0, 9.0]);
        r.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1.0; 6]);
    }

    #[test]
    fn sum_cols_collapses_features() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).requires_grad();
        let c = x.sum_cols();
        assert_eq!(c.to_vec(), vec![6.0, 15.0]);
        // weight rows differently to check the backward spread
        let w = Tensor::from_vec(vec![1.0, 10.0], &[2]);
        c.mul(&w).sum_all().backward();
        assert_eq!(
            x.grad_vec().unwrap(),
            vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0]
        );
    }

    #[test]
    fn mean_cols_and_rows() {
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(x.mean_cols().to_vec(), vec![3.0, 7.0]);
        assert_eq!(x.mean_rows().to_vec(), vec![4.0, 6.0]);
    }
}
