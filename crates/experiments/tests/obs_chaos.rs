//! Chaos coverage for the serving telemetry plane, from the outside: run
//! the `serve_obs_smoke` binary as a child process and assert
//!
//! * a clean run exits 0 and leaves the scraped `/metrics` body (with all
//!   five per-request stage histograms) in its artifact directory;
//! * a run killed by `OM_FAULT=scorer:2` — the injected fault on the
//!   second microbatch flush — exits with the fault code and dumps a
//!   parseable `flightrec.jsonl` postmortem holding the requests the
//!   first flush served.
//!
//! Fault injection is configured purely through the child's environment,
//! so this test never mutates its own process env and is safe under the
//! parallel test runner. Each child gets its own working directory, so
//! their `results/` trees cannot collide.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_serve_obs_smoke")
}

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("om-obs-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Recursively find `name` under `dir`.
fn find_file(dir: &Path, name: &str) -> Option<PathBuf> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.file_name().is_some_and(|f| f == name) {
                return Some(p);
            }
        }
    }
    None
}

#[test]
fn clean_smoke_exits_zero_and_archives_the_scrape() {
    let root = tmp_root("clean");
    let out = Command::new(bin())
        .arg(root.join("smoke.omck"))
        .current_dir(&root)
        .env("OM_OBS_ADDR", "127.0.0.1:0")
        .env_remove("OM_FAULT")
        .output()
        .expect("spawn clean smoke");
    assert!(
        out.status.success(),
        "clean smoke failed: {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    // The last stdout line is the artifact directory, relative to the
    // child's working directory.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rel = stdout.lines().last().expect("smoke prints its artifact dir");
    let dir = root.join(rel);
    let metrics = std::fs::read_to_string(dir.join("metrics.txt")).expect("archived scrape");
    for hist in
        ["serve_queue_wait", "serve_batch_wait", "serve_score", "serve_merge", "serve_e2e"]
    {
        assert!(
            metrics.contains(&format!("# TYPE {hist} histogram")),
            "archived /metrics is missing `{hist}`"
        );
    }
    assert!(dir.join("statz.json").is_file());
    assert!(dir.join("healthz.txt").is_file());
    assert!(
        find_file(&dir, "flightrec.jsonl").is_none(),
        "a clean run must not leave a postmortem"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn faulted_smoke_exits_86_and_dumps_the_flight_recorder() {
    let root = tmp_root("fault");
    let status = Command::new(bin())
        .arg(root.join("smoke.omck"))
        .current_dir(&root)
        .env("OM_OBS_ADDR", "127.0.0.1:0")
        // The 2nd flush dies, so the 1st flush's served records are in
        // the ring when the postmortem is written.
        .env("OM_FAULT", "scorer:2")
        .status()
        .expect("spawn faulted smoke");
    assert_eq!(
        status.code(),
        Some(om_obs::fault::EXIT_CODE),
        "faulted smoke must die with the fault-injection exit code"
    );

    let dump = find_file(&root, "flightrec.jsonl").expect("fault must dump flightrec.jsonl");
    let text = std::fs::read_to_string(&dump).expect("read postmortem");
    let (reason, records) =
        om_obs::flightrec::parse_dump(&text).expect("postmortem parses as flightrec JSONL");
    assert_eq!(reason, "fault:scorer");
    assert!(!records.is_empty(), "the first flush's records must be retained");
    assert!(
        records.iter().all(|r| {
            r.get("event").and_then(om_obs::json::Json::as_str) == Some("served")
                && r.get("e2e_ns").and_then(om_obs::json::Json::as_u64).is_some()
        }),
        "postmortem records carry the served event and stage timings:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
