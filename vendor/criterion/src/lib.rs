//! Offline, dependency-free subset of the `criterion` benchmark API.
//!
//! Implements the surface the `om-bench` suite uses: `Criterion`,
//! benchmark groups with `sample_size`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; the mean, minimum and maximum per-iteration times
//! are printed in a criterion-like single line. There are no saved
//! baselines, plots or statistical comparisons.
//!
//! CLI: `--test` (as passed by `cargo test --benches` or a CI smoke run)
//! executes every benchmark body exactly once without timing; all other
//! flags (`--bench`, filters) are accepted and ignored.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name provides the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    /// Mean/min/max per-iteration wall time of the last `iter` call.
    result: &'a mut Option<(Duration, Duration, Duration)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher<'_> {
    /// Run `f` repeatedly and record its per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::TestOnce {
            black_box(f());
            return;
        }
        // Warm-up: run until ~50 ms elapsed to stabilise caches/frequency,
        // and learn an iteration count per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Aim for ~10 ms per sample, at least one iteration.
        let iters_per_sample = (Duration::from_millis(10).as_nanos()
            / per_iter.as_nanos().max(1)) as u64;
        let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed() / iters_per_sample as u32);
        }
        let min = *samples.iter().min().expect("sample_size >= 1");
        let max = *samples.iter().max().expect("sample_size >= 1");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        *self.result = Some((mean, min, max));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Benchmark registry/driver.
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode { Mode::TestOnce } else { Mode::Measure },
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepts and ignores criterion CLI configuration (kept for drop-in
    /// compatibility with generated mains).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            sample_size,
            result: &mut result,
        };
        f(&mut b);
        match (self.mode, result) {
            (Mode::TestOnce, _) => println!("{name}: test passed"),
            (Mode::Measure, Some((mean, min, max))) => println!(
                "{name:<50} time: [{} {} {}]",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max)
            ),
            (Mode::Measure, None) => println!("{name}: no measurement recorded"),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, self.default_sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Collect benchmark functions into a named runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            mode: Mode::Measure,
            default_sample_size: 3,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_respects_test_mode() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            default_sample_size: 50,
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(runs, 1, "--test mode must run the body exactly once");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
