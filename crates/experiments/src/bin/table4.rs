//! Regenerates **Table 4**: RMSE/MAE of EMCDR, PTUPCDR and Ours when
//! training with 100/80/50/20 % of the overlapping training users
//! (Amazon preset; Books→Movies, Movies→Music, Books→Music).

use om_data::{SynthConfig, SynthWorld};
use om_experiments::paper;
use om_experiments::report::Table;
use om_experiments::runner::{cli_trials, run_trials, Method};
use omnimatch_core::OmniMatchConfig;

fn main() {
    let _run = om_obs::run_scope("table4");
    let trials = cli_trials(2);
    om_obs::manifest_set("experiment.trials", (trials as u64).into());
    om_obs::info!("generating world ({trials} trial(s) per cell)…");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies", "Music"]);
    let methods = [
        Method::Emcdr,
        Method::Ptupcdr,
        Method::Ours(OmniMatchConfig::default()),
    ];

    let header = build_header();
    let hdr_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 4 — training-user fractions (Amazon preset)",
        &hdr_refs,
    );

    for (mi, method) in methods.iter().enumerate() {
        let mut rmse_row = vec![method.label().to_string(), "RMSE".to_string()];
        let mut mae_row = vec![String::new(), "MAE".to_string()];
        let mut rmse_paper = vec![String::new(), "RMSE(paper)".to_string()];
        let mut mae_paper = vec![String::new(), "MAE(paper)".to_string()];
        for (si, (src, tgt)) in paper::TABLE4_SCENARIOS.iter().enumerate() {
            for (fi, &frac) in paper::TABLE4_FRACTIONS.iter().enumerate() {
                om_obs::info!("{} {src}->{tgt} {}%…", method.label(), (frac * 100.0) as u32);
                let r = run_trials(&world, src, tgt, method, trials, frac);
                rmse_row.push(format!("{:.3}", r.rmse.mean));
                mae_row.push(format!("{:.3}", r.mae.mean));
                rmse_paper.push(format!("{:.3}", paper::TABLE4_RMSE[mi][si][fi]));
                mae_paper.push(format!("{:.3}", paper::TABLE4_MAE[mi][si][fi]));
            }
        }
        table.row(rmse_row);
        table.row(mae_row);
        table.row(rmse_paper);
        table.row(mae_paper);
    }

    println!("{}", table.render());
    table.write_tsv("table4.tsv").expect("write results TSV");
    println!("TSV written to results/table4.tsv");
}

fn build_header() -> Vec<String> {
    let mut header = vec!["Method".to_string(), "Metric".to_string()];
    for (src, tgt) in paper::TABLE4_SCENARIOS {
        for f in paper::TABLE4_FRACTIONS {
            header.push(format!(
                "{}->{} {}%",
                &src[..2],
                &tgt[..2],
                (f * 100.0) as u32
            ));
        }
    }
    header
}
