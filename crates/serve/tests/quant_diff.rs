//! Differential proptest suite for the int8 quantized scorer: random
//! arenas are quantized, dequantized, and scored, and every result is
//! held against the f32 path.
//!
//! Three contracts:
//!
//! * **Round trip** — quantize → dequantize moves no element by more than
//!   half a quantization step (`scale / 2`), and the dispatched
//!   `om_tensor::kernels::dequant_rows` is bitwise identical to the
//!   scalar reference `om_serve::quant::dequantize_row_into`.
//! * **Score drift** — a quantized engine's expected-star score for any
//!   (user, item) pair stays within the committed
//!   [`om_serve::quant::QUANT_MAX_SCORE_ABS`] of the f32 engine's.
//! * **Shard invariance** — the sharded quantized engine is bitwise
//!   identical to the unsharded quantized engine at any shard width
//!   (dequantization is per-element, so partitioning cannot move a bit).
//!
//! One trained checkpoint is shared per test thread (training is the
//! expensive part); cases vary the arenas, not the model.

use std::cell::OnceCell;

use om_data::synth_feature_rows;
use om_data::types::{ItemId, UserId};
use om_data::{CrossDomainScenario, SplitConfig, SynthConfig, SynthWorld};
use om_serve::{load_model, quant, ItemArena, ServeEngine, ServeOptions, ShardedEngine, UserArena};
use om_tensor::{kernels, seeded_rng};
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};
use proptest::prelude::*;

const ITEM_DIM: usize = 12; // OmniMatchConfig::fast() dims
const USER_DIM: usize = 24;

struct Ctx {
    cfg: OmniMatchConfig,
    ckpt: Vec<u8>,
    vocab_size: usize,
    scenario: CrossDomainScenario,
}

fn build_ctx() -> Ctx {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(23);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let ckpt = trained.export_checkpoint().to_vec();
    let (_, views, _) = trained.into_parts();
    let vocab_size = views.vocab.len();
    Ctx { cfg, ckpt, vocab_size, scenario }
}

// `Tensor` is an `Rc` handle, so the trained state cannot live in a
// shared static; each test thread builds (and re-uses) its own.
thread_local! {
    static CTX: OnceCell<Ctx> = const { OnceCell::new() };
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        if c.get().is_none() {
            let _ = c.set(build_ctx());
        }
        f(c.get().expect("ctx initialised"))
    })
}

/// A sharded engine over the given arenas, with a fresh model decode from
/// the shared checkpoint (engines consume their model).
fn mk_engine(ctx: &Ctx, items: ItemArena, users: UserArena, shard_items: usize) -> ShardedEngine {
    let model = load_model(&ctx.cfg, ctx.vocab_size, &ctx.ckpt).expect("decode checkpoint");
    let views = CorpusViews::build(&ctx.scenario, &ctx.cfg, &mut seeded_rng(ctx.cfg.seed));
    let opts = ServeOptions { shard_items, ..ServeOptions::default() };
    ShardedEngine::new(ServeEngine::with_arenas(model, views, items, users, opts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn quantize_dequantize_moves_nothing_more_than_half_a_step(
        rows in 1usize..48,
        dim in 1usize..64,
        seed in 0u64..100_000,
    ) {
        let data = synth_feature_rows(rows, dim, seed);
        let (q, scales) = quant::quantize_rows(&data, rows, dim);
        prop_assert_eq!(q.len(), rows * dim);
        prop_assert_eq!(scales.len(), rows);

        // The dispatched kernel (AVX2 when active) must agree bitwise
        // with the scalar reference — dequantization is exact in f32.
        let deq = kernels::dequant_rows(&q, &scales, dim);
        let mut reference = Vec::new();
        for r in 0..rows {
            let mut row = Vec::new();
            quant::dequantize_row_into(&q[r * dim..(r + 1) * dim], scales[r], &mut row);
            reference.extend_from_slice(&row);
        }
        for (a, b) in deq.iter().zip(&reference) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "dequant kernel diverged from scalar");
        }

        for r in 0..rows {
            let scale = scales[r];
            for c in 0..dim {
                let v = data[r * dim + c];
                let d = deq[r * dim + c];
                prop_assert!(
                    (v - d).abs() <= scale * 0.5 + 1e-7,
                    "row {} col {}: {} -> {} exceeds half step {}",
                    r, c, v, d, scale * 0.5
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn quantized_scores_stay_within_the_committed_pair_bound(
        n_items in 1usize..80,
        n_users in 1usize..10,
        seed in 0u64..100_000,
        shard_items in 1usize..97,
    ) {
        with_ctx(|ctx| {
            let item_ids: Vec<ItemId> = (0..n_items as u32).map(ItemId).collect();
            let user_ids: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
            let item_data = synth_feature_rows(n_items, ITEM_DIM, seed ^ 0xA11C);
            let user_data = synth_feature_rows(n_users, USER_DIM, seed ^ 0xB22D);

            let items = ItemArena::from_raw(item_ids.clone(), item_data.clone(), ITEM_DIM);
            let users = UserArena::from_raw(user_ids.clone(), user_data.clone(), USER_DIM);
            let qitems = items.quantized();
            let qusers = users.quantized();
            prop_assert!(qitems.is_quantized() && qusers.is_quantized());

            let f32_engine = mk_engine(ctx, items, users, shard_items);
            let q_engine = mk_engine(ctx, qitems, qusers, shard_items);

            for &u in &user_ids {
                let f = f32_engine.inner().score_user(u).expect("score f32");
                let q = q_engine.inner().score_user(u).expect("score quantized");
                let q_sharded = q_engine.score_user(u).expect("score quantized sharded");
                prop_assert_eq!(f.len(), q.len());
                // Shard invariance of the quantized path, bit for bit.
                for (a, b) in q.iter().zip(&q_sharded) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "sharded quantized diverged");
                }
                // Per-pair drift against the f32 engine.
                for (i, (&a, &b)) in f.iter().zip(&q).enumerate() {
                    let d = (a as f64 - b as f64).abs();
                    prop_assert!(
                        d <= quant::QUANT_MAX_SCORE_ABS,
                        "user {:?} item row {}: |{} - {}| = {} exceeds {}",
                        u, i, a, b, d, quant::QUANT_MAX_SCORE_ABS
                    );
                }
            }
        });
    }
}
