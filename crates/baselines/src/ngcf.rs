//! NGCF and LightGCN — single-domain graph collaborative filtering
//! (Wang et al. 2019; He et al. 2020). Trained on the target domain only;
//! cold-start users are absent from the interaction graph and fall back to
//! item-mean predictions, which is exactly why these baselines plateau in
//! the paper's cold-start tables (their rows repeat across source domains).

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_tensor::seeded_rng;

use crate::graph::{BipartiteGraph, GraphCF, Propagation};
use crate::{clamp_stars, Recommender};

fn fit_graph(
    scenario: &CrossDomainScenario,
    propagation: Propagation,
    seed: u64,
) -> GraphCF {
    let refs: Vec<&Interaction> = scenario.target_train.interactions().iter().collect();
    let graph = BipartiteGraph::build(&refs);
    let mut rng = seeded_rng(seed);
    let mut model = GraphCF::new(graph, 16, 2, propagation, &mut rng);
    model.fit(120, 0.03);
    model
}

/// Neural Graph Collaborative Filtering (nonlinear propagation).
pub struct NGCF {
    model: GraphCF,
}

impl NGCF {
    /// Train on the scenario's target-domain training corpus.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> NGCF {
        NGCF {
            model: fit_graph(scenario, Propagation::Nonlinear, seed),
        }
    }
}

impl Recommender for NGCF {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        clamp_stars(self.model.predict(user, item))
    }
}

/// LightGCN (propagation without transforms or nonlinearities).
pub struct LightGCN {
    model: GraphCF,
}

impl LightGCN {
    /// Train on the scenario's target-domain training corpus.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> LightGCN {
        LightGCN {
            model: fit_graph(scenario, Propagation::Light, seed),
        }
    }
}

impl Recommender for LightGCN {
    fn name(&self) -> &'static str {
        "LIGHTGCN"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        clamp_stars(self.model.predict(user, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    fn scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn lightgcn_valid_predictions() {
        let sc = scenario();
        let m = LightGCN::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn ngcf_valid_predictions() {
        let sc = scenario();
        let m = NGCF::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn cold_users_are_not_in_target_graph() {
        // The defining property of single-domain baselines: for a cold
        // user the prediction cannot depend on the user.
        let sc = scenario();
        let m = LightGCN::fit(&sc, 2);
        let u1 = sc.test_users[0];
        let u2 = *sc.test_users.last().unwrap();
        let item = sc.target_train.items().next().unwrap();
        assert_eq!(m.predict(u1, item), m.predict(u2, item));
    }
}
