//! Fault injection: named kill points that terminate the process on their
//! n-th hit, driven by the `OM_FAULT` environment variable.
//!
//! `OM_FAULT=<site>:<nth>` arms exactly one site; the process exits with
//! [`EXIT_CODE`] on that site's `nth` hit (1-based; `OM_FAULT=<site>` means
//! the first hit). Registered sites:
//!
//! | site | location |
//! |---|---|
//! | `ckpt-save` | after a checkpoint tmp file is written, **before** the atomic rename |
//! | `optim-step` | entry of `Adadelta::step` (once per batch) |
//! | `trial` | start of each experiment trial in the runner |
//! | `scorer` | the serving front-end, just before a microbatch flush scores |
//! | `swap` | the online update path, after the shadow arena is built and **before** the generation install — a killed swap leaves the old generation serving |
//!
//! Before exiting, the injected fault is mirrored into the om-obs event
//! stream (`kind: "fault"`), the flight recorder is dumped
//! (`flightrec.jsonl` — the last N per-request records, the serving
//! postmortem), and the active run is flushed, so `obs-report` shows
//! exactly where a chaos run died. When `OM_FAULT` is unset every
//! kill point is a single relaxed atomic load.
//!
//! Every `kill_point` call site outside this crate must carry a
//! `// om-fault: kill-point` marker comment (enforced by om-lint), keeping
//! the set of registered sites auditable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// Exit status of a process killed by an injected fault — distinct from
/// panic (101) and success, so harnesses can assert the fault fired.
pub const EXIT_CODE: i32 = 86;

struct Spec {
    site: String,
    nth: u64,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static SPEC: Mutex<Option<Spec>> = Mutex::new(None);

fn lock_spec() -> std::sync::MutexGuard<'static, Option<Spec>> {
    SPEC.lock().unwrap_or_else(|e| e.into_inner())
}

/// Parse an `OM_FAULT` value: `site:nth` or bare `site` (nth = 1).
/// Returns `None` for empty / malformed specs (nth must be ≥ 1).
pub fn parse_spec(s: &str) -> Option<(String, u64)> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    match s.rsplit_once(':') {
        None => Some((s.to_string(), 1)),
        Some((site, nth)) => {
            let site = site.trim();
            let nth: u64 = nth.trim().parse().ok()?;
            if site.is_empty() || nth == 0 {
                return None;
            }
            Some((site.to_string(), nth))
        }
    }
}

fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("OM_FAULT") {
            if let Some((site, nth)) = parse_spec(&v) {
                *lock_spec() = Some(Spec { site, nth, hits: 0 });
                ARMED.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Programmatically arm (or with `None`, disarm) fault injection,
/// overriding `OM_FAULT`. Resets the hit counter. For tests.
pub fn set_spec(spec: Option<(&str, u64)>) {
    ensure_env();
    let mut g = lock_spec();
    match spec {
        Some((site, nth)) if nth > 0 => {
            *g = Some(Spec {
                site: site.to_string(),
                nth,
                hits: 0,
            });
            ARMED.store(true, Ordering::Relaxed);
        }
        _ => {
            *g = None;
            ARMED.store(false, Ordering::Relaxed);
        }
    }
}

/// The decision half of [`kill_point`]: record a hit at `site` and report
/// whether this hit is the armed `nth` one. Exposed (rather than private)
/// so tests can exercise the counting logic without dying.
pub fn should_kill(site: &str) -> bool {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut g = lock_spec();
    match g.as_mut() {
        Some(spec) if spec.site == site => {
            spec.hits += 1;
            spec.hits == spec.nth
        }
        _ => false,
    }
}

/// A named kill point. When `OM_FAULT=<site>:<nth>` targets this site and
/// this is the `nth` hit: emit a `fault` event, dump the flight recorder,
/// flush the active om-obs run, and terminate the process with
/// [`EXIT_CODE`]. Otherwise (the overwhelmingly common case) this is one
/// relaxed atomic load.
pub fn kill_point(site: &str) {
    if !should_kill(site) {
        return;
    }
    let nth = lock_spec().as_ref().map(|s| s.nth).unwrap_or(0);
    crate::error!("injected fault at kill point `{site}` (hit {nth}); exiting {EXIT_CODE}");
    crate::emit(
        "fault",
        &[
            ("site", crate::Value::Str(site.to_string())),
            ("nth", crate::Value::U64(nth)),
        ],
    );
    // Dump before `run_finish` so the postmortem lands in the same run
    // directory the event stream is about to be written to.
    let _ = crate::flightrec::dump(&format!("fault:{site}"));
    let _ = crate::run_finish();
    std::process::exit(EXIT_CODE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_forms() {
        assert_eq!(parse_spec("ckpt-save:3"), Some(("ckpt-save".to_string(), 3)));
        assert_eq!(parse_spec("trial"), Some(("trial".to_string(), 1)));
        assert_eq!(parse_spec(" optim-step : 2 "), Some(("optim-step".to_string(), 2)));
        assert_eq!(parse_spec(""), None);
        assert_eq!(parse_spec("site:0"), None, "nth is 1-based");
        assert_eq!(parse_spec("site:x"), None);
        assert_eq!(parse_spec(":3"), None);
    }

    #[test]
    fn should_kill_counts_hits_per_armed_site() {
        let _g = crate::test_lock();
        set_spec(Some(("ckpt-save", 3)));
        assert!(!should_kill("ckpt-save"), "hit 1 of 3");
        assert!(!should_kill("optim-step"), "other sites never fire");
        assert!(!should_kill("ckpt-save"), "hit 2 of 3");
        assert!(should_kill("ckpt-save"), "hit 3 fires");
        assert!(!should_kill("ckpt-save"), "fires exactly once");
        set_spec(None);
        assert!(!should_kill("ckpt-save"), "disarmed");
    }

    #[test]
    fn disarmed_kill_point_is_inert() {
        let _g = crate::test_lock();
        set_spec(None);
        // Must return (not exit) when disarmed.
        kill_point("ckpt-save");
        kill_point("optim-step");
    }
}
