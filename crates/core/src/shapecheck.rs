//! Static wiring check for the OmniMatch network.
//!
//! [`build_graph`] mirrors [`crate::model::OmniMatchModel`]'s construction
//! as a symbolic [`ShapeGraph`] — every layer, both gradient-reversal
//! branches, and the three loss heads of
//! `L_total = L_rating + α·L_SCL + β·L_domain` (Eq. 21) — so that any
//! [`OmniMatchConfig`] can be validated *before a single forward pass*:
//! dimension mismatches are rejected with an error naming the offending
//! layer, and parameters with no gradient path from the total loss are
//! reported. Weight sharing is modelled by node name: the embedding table
//! feeds all three backbones and the invariant head serves both domains,
//! so those parameters stay live as long as *any* use is reachable.
//!
//! Ablation switches map onto the loss weights: `use_scl = false` zeroes
//! α and `use_da = false` zeroes β, which is exactly how the trainer
//! drops those terms — the reachability report then shows which heads the
//! ablation orphans (e.g. `w/o SCL` leaves the projection head `proj`
//! without gradient).

use om_data::types::Rating;
use om_nn::shapecheck::{Dim, NodeId, Op, Shape, ShapeError, ShapeGraph, ShapeReport};

use crate::config::{ExtractorKind, OmniMatchConfig};

fn backbone_op(cfg: &OmniMatchConfig) -> Op {
    match cfg.extractor {
        ExtractorKind::TextCnn => Op::TextCnn {
            emb_dim: cfg.emb_dim,
            widths: cfg.kernel_widths.clone(),
            filters: cfg.filters,
        },
        // Mirrors `Backbone::build`: 2 heads, positions for `doc_len` tokens.
        ExtractorKind::Transformer => Op::Transformer {
            dim: cfg.emb_dim,
            heads: 2,
            max_len: cfg.doc_len,
        },
    }
}

fn feat_dim(cfg: &OmniMatchConfig) -> usize {
    match cfg.extractor {
        ExtractorKind::TextCnn => cfg.kernel_widths.len() * cfg.filters,
        ExtractorKind::Transformer => cfg.emb_dim,
    }
}

/// Build the symbolic OmniMatch graph for `cfg` over a vocabulary of
/// `vocab_size` tokens. Returns the graph and the `L_total` node.
pub fn build_graph(cfg: &OmniMatchConfig, vocab_size: usize) -> (ShapeGraph, NodeId) {
    let mut g = ShapeGraph::new();
    let feat = feat_dim(cfg);
    let pair_dim = cfg.invariant_dim + cfg.specific_dim + cfg.item_dim;
    let doc = Shape(vec![Dim::Sym("B"), Dim::Fixed(cfg.doc_len)]);
    let emb_op = Op::Embedding {
        vocab: vocab_size,
        dim: cfg.emb_dim,
    };

    // Shared-private feature extraction (§4.2). One embedding table serves
    // all three backbones — same node name, so it stays live if any path is.
    let src_docs = g.input("src_docs", doc.clone());
    let src_emb = g.add("embedding", emb_op.clone(), &[src_docs], true);
    let src_pool = g.add("src_backbone", backbone_op(cfg), &[src_emb], true);
    let tgt_docs = g.input("tgt_docs", doc.clone());
    let tgt_emb = g.add("embedding", emb_op.clone(), &[tgt_docs], true);
    let tgt_pool = g.add("tgt_backbone", backbone_op(cfg), &[tgt_emb], true);
    let item_docs = g.input("item_docs", doc);
    let item_emb = g.add("embedding", emb_op, &[item_docs], true);
    let item_pool = g.add("item_backbone", backbone_op(cfg), &[item_emb], true);

    let inv_op = Op::Linear {
        input: feat,
        output: cfg.invariant_dim,
    };
    let spec_op = Op::Linear {
        input: feat,
        output: cfg.specific_dim,
    };
    // The invariant head is *shared* between domains (same weights — the
    // crux of §4.2), hence the same node name for both uses.
    let src_inv = g.add("shared_invariant", inv_op.clone(), &[src_pool], true);
    let tgt_inv = g.add("shared_invariant", inv_op, &[tgt_pool], true);
    let src_spec = g.add("src_specific", spec_op.clone(), &[src_pool], true);
    let tgt_spec = g.add("tgt_specific", spec_op, &[tgt_pool], true);
    let item_feat = g.add(
        "item_head",
        Op::Linear {
            input: feat,
            output: cfg.item_dim,
        },
        &[item_pool],
        true,
    );
    let src_user = g.add("src_combined", Op::ConcatLast, &[src_inv, src_spec], false);
    let tgt_user = g.add("tgt_combined", Op::ConcatLast, &[tgt_inv, tgt_spec], false);

    // L_rating: rating classifier over r_target ⊕ r_item (Eqs. 18–19).
    let tgt_pair = g.add("tgt_pair", Op::ConcatLast, &[tgt_user, item_feat], false);
    let rating_logits = g.add(
        "rating_clf",
        Op::Mlp {
            dims: vec![pair_dim, pair_dim, Rating::CLASSES],
        },
        &[tgt_pair],
        true,
    );
    let l_rating = g.add(
        "L_rating",
        Op::CrossEntropy {
            classes: Rating::CLASSES,
        },
        &[rating_logits],
        false,
    );

    // L_SCL: both domains' user⊕item pairs through the shared projection
    // head, contrasted against each other (Eqs. 11–13).
    let src_pair = g.add("src_pair", Op::ConcatLast, &[src_user, item_feat], false);
    let proj_op = Op::Mlp {
        dims: vec![pair_dim, pair_dim, cfg.proj_dim],
    };
    let src_proj = g.add("proj", proj_op.clone(), &[src_pair], true);
    let tgt_proj = g.add("proj", proj_op, &[tgt_pair], true);
    let l_scl = g.add("L_SCL", Op::SupCon, &[src_proj, tgt_proj], false);

    // L_domain: invariant features behind the GRL (confuse the classifier,
    // Eqs. 14–15), specific features classified normally (Eqs. 16–17).
    let src_rev = g.add("grl(src_invariant)", Op::GradReversal, &[src_inv], false);
    let tgt_rev = g.add("grl(tgt_invariant)", Op::GradReversal, &[tgt_inv], false);
    let inv_clf = Op::Mlp {
        dims: vec![cfg.invariant_dim, cfg.invariant_dim, 2],
    };
    let spec_clf = Op::Mlp {
        dims: vec![cfg.specific_dim, cfg.specific_dim, 2],
    };
    let d_inv_src = g.add("domain_clf_invariant", inv_clf.clone(), &[src_rev], true);
    let d_inv_tgt = g.add("domain_clf_invariant", inv_clf, &[tgt_rev], true);
    let d_spec_src = g.add("domain_clf_specific", spec_clf.clone(), &[src_spec], true);
    let d_spec_tgt = g.add("domain_clf_specific", spec_clf, &[tgt_spec], true);
    let ce = Op::CrossEntropy { classes: 2 };
    let l_inv_src = g.add("L_dom_inv_src", ce.clone(), &[d_inv_src], false);
    let l_inv_tgt = g.add("L_dom_inv_tgt", ce.clone(), &[d_inv_tgt], false);
    let l_spec_src = g.add("L_dom_spec_src", ce.clone(), &[d_spec_src], false);
    let l_spec_tgt = g.add("L_dom_spec_tgt", ce, &[d_spec_tgt], false);
    let l_domain = g.add(
        "L_domain",
        Op::WeightedSum {
            weights: vec![1.0; 4],
        },
        &[l_inv_src, l_inv_tgt, l_spec_src, l_spec_tgt],
        false,
    );

    // L_total = L_rating + α·L_SCL + β·L_domain (Eq. 21); ablation flags
    // zero the corresponding weight, exactly as the trainer drops the term.
    let alpha = if cfg.use_scl { cfg.alpha } else { 0.0 };
    let beta = if cfg.use_da { cfg.beta } else { 0.0 };
    let total = g.add(
        "L_total",
        Op::WeightedSum {
            weights: vec![1.0, alpha, beta],
        },
        &[l_rating, l_scl, l_domain],
        false,
    );
    (g, total)
}

/// Statically validate `cfg` against a vocabulary of `vocab_size` tokens.
///
/// `Err` means the configuration cannot produce a well-formed network and
/// names the offending layer. `Ok` carries every node's resolved shape
/// plus the parameters the configuration leaves without a gradient path
/// from `L_total` (empty for the full objective; ablations legitimately
/// orphan their heads).
pub fn shape_check(cfg: &OmniMatchConfig, vocab_size: usize) -> Result<ShapeReport, ShapeError> {
    let (g, total) = build_graph(cfg, vocab_size);
    g.check(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn unreachable(cfg: &OmniMatchConfig) -> BTreeSet<String> {
        shape_check(cfg, 500)
            .expect("shape check must pass")
            .unreachable_params
            .into_iter()
            .collect()
    }

    #[test]
    fn full_objective_reaches_every_parameter() {
        for cfg in [
            OmniMatchConfig::fast(),
            OmniMatchConfig::default(),
            OmniMatchConfig::fast().with_transformer(),
        ] {
            assert!(unreachable(&cfg).is_empty(), "orphans under {:?}", cfg.extractor);
        }
    }

    #[test]
    fn scl_ablation_orphans_projection_head() {
        let dead = unreachable(&OmniMatchConfig::fast().without_scl());
        assert_eq!(dead, BTreeSet::from(["proj".to_string()]));
    }

    #[test]
    fn da_ablation_orphans_domain_classifiers() {
        let dead = unreachable(&OmniMatchConfig::fast().without_da());
        let want: BTreeSet<String> = ["domain_clf_invariant", "domain_clf_specific"]
            .map(String::from)
            .into_iter()
            .collect();
        assert_eq!(dead, want);
    }

    #[test]
    fn dropping_both_aux_losses_cuts_off_the_source_path() {
        // Without SCL and DA only L_rating remains, which never sees the
        // source domain: its backbone and private head get no gradient.
        let dead = unreachable(&OmniMatchConfig::fast().without_scl().without_da());
        let want: BTreeSet<String> = [
            "src_backbone",
            "src_specific",
            "proj",
            "domain_clf_invariant",
            "domain_clf_specific",
        ]
        .map(String::from)
        .into_iter()
        .collect();
        assert_eq!(dead, want);
        // …while the shared embedding/invariant head stay live via the
        // target and item paths.
        assert!(!dead.contains("embedding") && !dead.contains("shared_invariant"));
    }

    #[test]
    fn oversized_kernel_is_rejected_naming_the_backbone() {
        let cfg = OmniMatchConfig {
            doc_len: 4,
            kernel_widths: vec![3, 9],
            ..OmniMatchConfig::fast()
        };
        let e = shape_check(&cfg, 500).unwrap_err();
        assert_eq!(e.node, "src_backbone");
        assert!(
            e.msg.contains("kernel width 9 exceeds document length 4"),
            "unhelpful error: {e}"
        );
    }

    #[test]
    fn odd_transformer_width_is_rejected_naming_the_backbone() {
        let cfg = OmniMatchConfig {
            emb_dim: 13,
            ..OmniMatchConfig::fast().with_transformer()
        };
        let e = shape_check(&cfg, 500).unwrap_err();
        assert_eq!(e.node, "src_backbone");
        assert!(e.msg.contains("divide evenly"), "unhelpful error: {e}");
    }

    #[test]
    fn report_resolves_concrete_widths() {
        let cfg = OmniMatchConfig::fast();
        let report = shape_check(&cfg, 500).unwrap();
        let shape_of = |name: &str| {
            report
                .shapes
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| format!("{s}"))
                .expect("node present")
        };
        // fast(): 3 widths × 8 filters = 24-d features, 12-d heads.
        assert_eq!(shape_of("src_backbone"), "[B, 24]");
        assert_eq!(shape_of("tgt_pair"), "[B, 36]");
        assert_eq!(shape_of("rating_clf"), "[B, 5]");
        assert_eq!(shape_of("L_total"), "[]");
    }
}
