//! Metrics registry: named counters, gauges and fixed-bucket histograms.
//!
//! Handles are `Arc`-backed atomics: look one up once (the hot kernels
//! cache handles in `OnceLock` statics) and every update is a single
//! relaxed atomic op — no lock on the update path. [`snapshot`] reads and
//! *resets* all values in place, so successive runs in one process report
//! independent windows while cached handles stay valid.
//!
//! Histograms use 64 power-of-two buckets (bucket 0 holds exact zeros,
//! bucket *i* holds `[2^(i-1), 2^i)`), which makes `record` branch-free
//! (`leading_zeros`) and thread-count independent, and gives quantile
//! *estimates* with a guaranteed ≤ 2× relative error — ample for timing
//! distributions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets (zero bucket + 63 power-of-two ranges).
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins f64 value.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct Histogram(Arc<Histo>);

pub(crate) struct Histo {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index of a sample: 0 for 0, else `64 - leading_zeros`, capped.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= HIST_BUCKETS - 1 {
        (1u64 << (HIST_BUCKETS - 2), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let h = &self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (exact, unlike the bucketed quantiles).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact mean of the recorded samples; `None` when empty. Serving
    /// latency reports pair this with the bucketed p50/p95/p99.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(self.sum() as f64 / n as f64)
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by nearest rank over the
    /// bucket counts; the returned value is the midpoint of the bucket
    /// holding that rank (≤ 2× relative error). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        quantile_of(&counts, q)
    }
}

/// Nearest-rank quantile estimate over raw bucket counts (shared by live
/// histograms and the report's re-parse of serialized snapshots).
pub fn quantile_of(bucket_counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = bucket_counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest rank, 1-based: ceil(q * total), at least 1.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &c) in bucket_counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            let (lo, hi) = bucket_bounds(i);
            return Some(lo + (hi - lo) / 2);
        }
    }
    let (lo, hi) = bucket_bounds(bucket_counts.len() - 1);
    Some(lo + (hi - lo) / 2)
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Look up (or create) the counter `name`. Cache the handle at hot sites.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Look up (or create) the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Look up (or create) the histogram `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().unwrap();
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(Histo {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter {
        /// Registered name.
        name: String,
        /// Accumulated value since the previous snapshot.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Registered name.
        name: String,
        /// Last written value.
        value: f64,
    },
    /// Histogram state: sparse `(bucket, count)` pairs plus summary.
    Histogram {
        /// Registered name.
        name: String,
        /// Samples since the previous snapshot.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Non-empty `(bucket_index, count)` pairs.
        buckets: Vec<(usize, u64)>,
    },
}

/// Read **and reset** every registered metric. Empty metrics (zero
/// counters, zero gauges, unsampled histograms) are omitted.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().unwrap();
    let mut out = Vec::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                let value = c.0.swap(0, Ordering::Relaxed);
                if value > 0 {
                    out.push(MetricSnapshot::Counter {
                        name: name.clone(),
                        value,
                    });
                }
            }
            Metric::Gauge(g) => {
                let value = f64::from_bits(g.0.swap(0.0f64.to_bits(), Ordering::Relaxed));
                if value != 0.0 {
                    out.push(MetricSnapshot::Gauge {
                        name: name.clone(),
                        value,
                    });
                }
            }
            Metric::Histogram(h) => {
                let count = h.0.count.swap(0, Ordering::Relaxed);
                let sum = h.0.sum.swap(0, Ordering::Relaxed);
                let mut buckets = Vec::new();
                for (i, b) in h.0.buckets.iter().enumerate() {
                    let c = b.swap(0, Ordering::Relaxed);
                    if c > 0 {
                        buckets.push((i, c));
                    }
                }
                if count > 0 {
                    out.push(MetricSnapshot::Histogram {
                        name: name.clone(),
                        count,
                        sum,
                        buckets,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} bounds=({lo},{hi})");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bucket_accurate() {
        let _g = crate::test_lock();
        let h = histogram("test.quantiles");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p0 = h.quantile(0.0).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p0 <= p50 && p50 <= p95 && p95 <= p100);
        // True p50 = 500 lives in bucket [256, 511]; the estimate must too.
        assert!((256..=511).contains(&p50), "p50 estimate {p50}");
        // True p95 = 950 lives in bucket [512, 1023].
        assert!((512..=1023).contains(&p95), "p95 estimate {p95}");
        let _ = snapshot(); // reset for other tests
    }

    #[test]
    fn constant_samples_pin_every_quantile() {
        let _g = crate::test_lock();
        let h = histogram("test.constant");
        for _ in 0..32 {
            h.record(7);
        }
        let (lo, hi) = bucket_bounds(super::bucket_index(7));
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((lo..=hi).contains(&est), "q={q} est={est}");
        }
        let _ = snapshot();
    }

    #[test]
    fn zero_only_histogram_reports_zero() {
        let _g = crate::test_lock();
        let h = histogram("test.zeros");
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(0));
        let _ = snapshot();
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let _g = crate::test_lock();
        let h = histogram("test.empty");
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn snapshot_resets_but_handles_survive() {
        let _g = crate::test_lock();
        let c = counter("test.reset");
        c.add(5);
        let snap = snapshot();
        let mine = snap.iter().find_map(|m| match m {
            MetricSnapshot::Counter { name, value } if name == "test.reset" => Some(*value),
            _ => None,
        });
        assert_eq!(mine, Some(5));
        assert_eq!(c.get(), 0, "snapshot must reset in place");
        c.add(2);
        assert_eq!(counter("test.reset").get(), 2, "same underlying atomic");
        let _ = snapshot();
    }

    #[test]
    fn quantile_of_matches_live_histogram() {
        let counts = vec![0u64; HIST_BUCKETS];
        assert_eq!(quantile_of(&counts, 0.5), None);
        let mut counts = vec![0u64; HIST_BUCKETS];
        counts[3] = 10; // values in [4,7]
        let est = quantile_of(&counts, 0.5).unwrap();
        assert!((4..=7).contains(&est));
    }
}
