//! The crash flight recorder as the serving postmortem:
//!
//! * property: whatever goes into the ring — hostile detail strings
//!   included — the dump is well-formed JSONL that `om_obs::json` parses
//!   back, record for record;
//! * integration: a scorer error inside the front-end dumps
//!   `flightrec.jsonl` to disk *at the failure*, holding the errored
//!   requests with their stage timings.
//!
//! (These live in om-serve rather than om-obs because om-obs is
//! deliberately dependency-free and proptest is a dev-dependency here.)

use std::sync::mpsc::channel;

use om_data::types::UserId;
use om_obs::flightrec::{parse_dump, FlightRecord, FlightRecorder};
use om_serve::{BatchScorer, Frontend, FrontendOptions, Request, Response, ServeError};
use proptest::prelude::*;

const EVENTS: [&str; 4] = ["served", "rejected", "scorer_error", "shutdown"];
const STAGE_KEYS: [&str; 4] = ["queue_wait_ns", "batch_wait_ns", "e2e_ns", "score_ns"];

/// om-obs Json stores numbers as f64, exact for integers below 2^53 —
/// which every real field (ns offsets, sequence numbers) is.
const MAX_EXACT: u64 = 1 << 53;

/// splitmix64 finaliser: derive independent-looking field values from one
/// drawn seed (the vendored proptest has range strategies only, so the
/// structured record is a pure function of plain integers).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hostile detail strings: quotes, backslashes, newlines, control chars,
/// unicode — everything the JSONL escaper must survive.
fn detail_from_seed(seed: u64) -> String {
    const PIECES: [&str; 8] =
        ["", "\"", "\\", "\n\t", "score {} fail", "naïve 🚀", "a\"b\\c", "line1\nline2\u{1}"];
    let n = (mix(seed) % 4) as usize;
    (0..n as u64)
        .map(|i| PIECES[(mix(seed ^ (i + 1)) % PIECES.len() as u64) as usize])
        .collect()
}

fn reason_from_seed(seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz_:";
    let len = 1 + (mix(seed) % 20) as usize;
    (0..len as u64)
        .map(|i| ALPHABET[(mix(seed.wrapping_add(i)) % ALPHABET.len() as u64) as usize] as char)
        .collect()
}

fn record_from_seed(seed: u64) -> FlightRecord {
    let field = |k: u64| mix(seed ^ k) % MAX_EXACT;
    // Distinct stage keys per record: duplicate JSON keys would make the
    // parsed round-trip ambiguous.
    let n_stages = (mix(seed ^ 7) % (STAGE_KEYS.len() as u64 + 1)) as usize;
    let start = (mix(seed ^ 8) as usize) % STAGE_KEYS.len();
    let stages = (0..n_stages)
        .map(|j| (STAGE_KEYS[(start + j) % STAGE_KEYS.len()], field(100 + j as u64)))
        .collect();
    FlightRecord {
        seq: field(1),
        req_id: field(2),
        user: field(3),
        event: EVENTS[(mix(seed ^ 4) % EVENTS.len() as u64) as usize],
        t_ns: field(5),
        stages,
        detail: detail_from_seed(seed ^ 6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dumped_records_are_well_formed_jsonl(
        seeds in collection::vec(0u64..u64::MAX, 0..20),
        capacity in 1usize..16,
        reason_seed in 0u64..MAX_EXACT,
    ) {
        let records: Vec<FlightRecord> =
            seeds.iter().map(|&s| record_from_seed(s)).collect();
        let reason = reason_from_seed(reason_seed);
        let rec = FlightRecorder::new(capacity);
        for r in &records {
            rec.push(r.clone());
        }
        let dump = rec.to_jsonl(&reason);
        let (parsed_reason, parsed) =
            parse_dump(&dump).expect("dump must parse as flightrec JSONL");
        prop_assert_eq!(parsed_reason, reason);
        prop_assert_eq!(parsed.len(), records.len().min(capacity));
        // The retained tail is the *newest* records, oldest first.
        let tail = &records[records.len().saturating_sub(capacity)..];
        for (json, rec) in parsed.iter().zip(tail) {
            prop_assert_eq!(json.get("seq").and_then(|v| v.as_u64()), Some(rec.seq));
            prop_assert_eq!(json.get("req").and_then(|v| v.as_u64()), Some(rec.req_id));
            prop_assert_eq!(json.get("user").and_then(|v| v.as_u64()), Some(rec.user));
            prop_assert_eq!(json.get("t").and_then(|v| v.as_u64()), Some(rec.t_ns));
            prop_assert_eq!(
                json.get("event").and_then(|v| v.as_str()),
                Some(rec.event)
            );
            for &(key, val) in &rec.stages {
                prop_assert_eq!(json.get(key).and_then(|v| v.as_u64()), Some(val));
            }
            if !rec.detail.is_empty() {
                prop_assert_eq!(
                    json.get("detail").and_then(|v| v.as_str()),
                    Some(rec.detail.as_str())
                );
            }
        }
    }
}

/// A scorer that always fails — every flush becomes a postmortem.
struct FailingScorer;

impl BatchScorer for FailingScorer {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        Err(ServeError::ScoreShape { expected: reqs.len(), got: 0 })
    }
}

#[test]
fn scorer_error_dumps_a_postmortem_to_disk() {
    let tmp = std::env::temp_dir().join(format!(
        "om_flightrec_test_{}_{}",
        std::process::id(),
        om_obs::clock::now_ns()
    ));
    std::fs::create_dir_all(&tmp).expect("mk tmp");
    om_obs::set_out_root(&tmp);

    let (resp_tx, resp_rx) = channel();
    // om-lint: allow(thread-spawn) — spawning the front-end under test.
    let fe = Frontend::spawn(
        || FailingScorer,
        FrontendOptions { queue_cap: 16, batch: 4, wait_us: 50 },
        resp_tx,
    )
    .expect("spawn front-end");
    let handle = fe.handle();
    for id in 0..4u64 {
        handle
            .try_send(Request { id, user: UserId(id as u32), arrive_us: 0 })
            .expect("submit");
    }
    let stats = fe.shutdown().expect("shutdown");
    assert!(stats.scorer_errors >= 1, "the failing scorer must have errored");
    assert_eq!(stats.served, 0);
    assert_eq!(resp_rx.iter().count(), 0);

    // A flightrec.jsonl landed under the out root, and it parses.
    let mut dumps = Vec::new();
    for entry in std::fs::read_dir(&tmp).expect("read tmp").flatten() {
        let f = entry.path().join("flightrec.jsonl");
        if f.is_file() {
            dumps.push(f);
        }
    }
    assert!(!dumps.is_empty(), "no flightrec.jsonl under {}", tmp.display());
    let text = std::fs::read_to_string(&dumps[0]).expect("read dump");
    let (reason, records) = parse_dump(&text).expect("dump parses");
    assert!(
        reason.starts_with("scorer_error") || reason.starts_with("shutdown_with_errors"),
        "unexpected dump reason {reason}"
    );
    assert!(
        records
            .iter()
            .any(|r| r.get("event").and_then(|v| v.as_str()) == Some("scorer_error")),
        "postmortem must hold the errored requests"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}
