//! End-to-end pipeline on *real-format* data: parse Amazon-style JSON
//! lines (embedded sample below; point the loader at the genuine
//! 5-core dumps to reproduce on the real corpora), build the cross-domain
//! scenario, and train OmniMatch.
//!
//! ```text
//! cargo run --release --example real_data [-- <books.json> <movies.json>]
//! ```

use omnimatch::core::{OmniMatchConfig, Trainer};
use omnimatch::data::loader::{load_amazon_json_lines, IdInterner};
use omnimatch::data::{CrossDomainScenario, SplitConfig};

/// A miniature Amazon-format corpus so the example runs out of the box.
/// 12 users overlap across the two snippets; texts follow the §5.10 style.
fn embedded_sample() -> (String, String) {
    let mut books = String::new();
    let mut movies = String::new();
    let themes = [
        ("vampire romance", "sexy vampire movie"),
        ("space opera saga", "great galaxy battles"),
        ("detective thriller", "noir suspense classic"),
        ("funny family tale", "hilarious family comedy"),
    ];
    for u in 0..24 {
        let (b, m) = themes[u % themes.len()];
        let stars = 3 + (u % 3);
        for k in 0..3 {
            books.push_str(&format!(
                r#"{{"reviewerID": "U{u}", "asin": "B{:03}", "overall": {stars}.0, "summary": "{b} vol {k}", "reviewText": "{b} — loved every page of volume {k}"}}"#,
                u % 8 + k * 10
            ));
            books.push('\n');
        }
        for k in 0..3 {
            movies.push_str(&format!(
                r#"{{"reviewerID": "U{u}", "asin": "M{:03}", "overall": {stars}.0, "summary": "{m} part {k}", "reviewText": "{m}, watched part {k} twice"}}"#,
                u % 8 + k * 10
            ));
            movies.push('\n');
        }
    }
    (books, movies)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (books_json, movies_json) = match (args.get(1), args.get(2)) {
        (Some(b), Some(m)) => (
            std::fs::read_to_string(b).expect("read books file"),
            std::fs::read_to_string(m).expect("read movies file"),
        ),
        _ => {
            println!("no files given — using the embedded miniature corpus\n");
            embedded_sample()
        }
    };

    // One shared user interner preserves cross-domain overlap; items get a
    // fresh interner per domain.
    let mut users = IdInterner::new();
    let books = load_amazon_json_lines("Books", &books_json, &mut users, &mut IdInterner::new())
        .expect("parse books corpus");
    let movies = load_amazon_json_lines("Movies", &movies_json, &mut users, &mut IdInterner::new())
        .expect("parse movies corpus");
    println!(
        "Books: {} reviews / {} users; Movies: {} reviews / {} users",
        books.len(),
        books.num_users(),
        movies.len(),
        movies.num_users()
    );

    let scenario = CrossDomainScenario::build(&books, &movies, SplitConfig::default());
    println!(
        "overlap {} users → {} train / {} valid / {} test",
        scenario.overlapping.len(),
        scenario.train_users.len(),
        scenario.valid_users.len(),
        scenario.test_users.len()
    );

    let cfg = OmniMatchConfig {
        epochs: 6,
        ..OmniMatchConfig::fast()
    };
    let trained = Trainer::new(cfg).fit(&scenario);
    let eval = trained.evaluate(&scenario.test_pairs());
    println!("cold-start RMSE {:.3} MAE {:.3}", eval.rmse, eval.mae);
}
