//! Core record types: users, items, ratings, and review interactions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A user identifier, unique across the whole multi-domain world (so
/// overlap between domains is literal id equality, as in §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// An item identifier, unique within its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A 1–5 star rating, the label space of both datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rating(u8);

impl Rating {
    /// Minimum star value.
    pub const MIN: u8 = 1;
    /// Maximum star value.
    pub const MAX: u8 = 5;
    /// Number of distinct rating classes.
    pub const CLASSES: usize = 5;

    /// Construct from stars; returns `None` outside 1–5.
    pub fn new(stars: u8) -> Option<Rating> {
        (Self::MIN..=Self::MAX).contains(&stars).then_some(Rating(stars))
    }

    /// Construct from a float by clamping to [1, 5] and rounding, the way
    /// the synthetic generator discretises latent scores.
    pub fn from_score(score: f32) -> Rating {
        Rating(score.round().clamp(Self::MIN as f32, Self::MAX as f32) as u8)
    }

    /// The star value.
    pub fn stars(self) -> u8 {
        self.0
    }

    /// The star value as f32 (for RMSE/MAE computation).
    pub fn value(self) -> f32 {
        self.0 as f32
    }

    /// Zero-based class label (stars − 1), for classifiers.
    pub fn label(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Inverse of [`Rating::label`].
    pub fn from_label(label: usize) -> Rating {
        Rating::new(label as u8 + 1).expect("label must be 0..5")
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}★", self.0)
    }
}

/// One review record `{u, i, txt, r}` of §2: a user's rating of an item
/// plus the associated text. `summary` is the short "review summary" field
/// the paper found superior (§5.2); `full_text` is the complete review used
/// by the `OmniMatch-ReviewText` ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interaction {
    /// The reviewing user.
    pub user: UserId,
    /// The reviewed item.
    pub item: ItemId,
    /// The star rating.
    pub rating: Rating,
    /// The short review-summary text.
    pub summary: String,
    /// The full review body.
    pub full_text: String,
}

impl Interaction {
    /// Convenience constructor; the full text defaults to the summary when
    /// the corpus has no separate body field.
    pub fn new(user: UserId, item: ItemId, rating: Rating, summary: impl Into<String>) -> Self {
        let summary = summary.into();
        Interaction {
            user,
            item,
            rating,
            full_text: summary.clone(),
            summary,
        }
    }

    /// The text selected by the given field switch.
    pub fn text(&self, field: TextField) -> &str {
        match field {
            TextField::Summary => &self.summary,
            TextField::FullText => &self.full_text,
        }
    }
}

/// Which review text field feeds the feature extractors — the paper's
/// default is the summary (§5.2); the full text is an ablation (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextField {
    /// The short "review summary" field (paper default).
    Summary,
    /// The complete "reviewText" body (`OmniMatch-ReviewText` ablation).
    FullText,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_bounds() {
        assert!(Rating::new(0).is_none());
        assert!(Rating::new(6).is_none());
        assert_eq!(Rating::new(3).unwrap().stars(), 3);
    }

    #[test]
    fn rating_from_score_clamps_and_rounds() {
        assert_eq!(Rating::from_score(7.9).stars(), 5);
        assert_eq!(Rating::from_score(-2.0).stars(), 1);
        assert_eq!(Rating::from_score(3.4).stars(), 3);
        assert_eq!(Rating::from_score(3.6).stars(), 4);
    }

    #[test]
    fn label_roundtrip() {
        for s in 1..=5u8 {
            let r = Rating::new(s).unwrap();
            assert_eq!(Rating::from_label(r.label()), r);
        }
        assert_eq!(Rating::new(1).unwrap().label(), 0);
    }

    #[test]
    fn interaction_text_field_switch() {
        let mut i = Interaction::new(UserId(1), ItemId(2), Rating::new(5).unwrap(), "great");
        i.full_text = "great in every way, really".into();
        assert_eq!(i.text(TextField::Summary), "great");
        assert!(i.text(TextField::FullText).len() > 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(ItemId(9).to_string(), "i9");
        assert_eq!(Rating::new(4).unwrap().to_string(), "4★");
    }
}
