//! The dependency-free stats endpoint: a hand-rolled HTTP/1.0 server over
//! `std::net::TcpListener` exposing the live stats plane.
//!
//! Three routes, all `GET`, all `Connection: close`:
//!
//! | route | body |
//! |---|---|
//! | `/metrics` | Prometheus text exposition of [`crate::live::snapshot_all`] |
//! | `/healthz` | readiness: every registered [`set_health`] probe, `200` when all pass, `503` naming the failures |
//! | `/statz` | the live snapshot as one JSON object |
//!
//! Gated by `OM_OBS_ADDR` ([`spawn_from_env`]): unset means no socket is
//! ever opened; `127.0.0.1:0` binds an ephemeral loopback port (the CI
//! smoke job's choice). The accept loop runs on one named thread and
//! handles connections serially — a scrape endpoint, not a serving path.
//!
//! **Threat model / scope**: this endpoint is an operator convenience on
//! the level of a debug port. It speaks minimal HTTP/1.0, supports no
//! TLS, no authentication and no request bodies, caps request headers at
//! [`MAX_REQUEST_BYTES`], enforces a read deadline so a stalled client
//! cannot wedge the acceptor, and should only ever be bound to loopback
//! or a trusted network. It can read metric values and nothing else —
//! there is no route that mutates state.
//!
//! This file is part of the om-lint `panic-freedom` policy: a malformed
//! request must degrade to a `400`, never take the endpoint (let alone
//! the process) down.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::live;

/// Hard cap on the bytes read from one request (headers included).
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Read deadline per connection; a client that stalls longer is dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A named readiness probe: `true` means healthy.
pub type HealthProbe = Box<dyn Fn() -> bool + Send + Sync>;

static HEALTH: OnceLock<Mutex<BTreeMap<String, HealthProbe>>> = OnceLock::new();

fn health_registry() -> &'static Mutex<BTreeMap<String, HealthProbe>> {
    HEALTH.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_health() -> MutexGuard<'static, BTreeMap<String, HealthProbe>> {
    // Probes are pure reads over atomics; poison carries no information.
    health_registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Register (or replace) the readiness probe `name`. Probes must be cheap
/// and non-blocking — they run inline on the endpoint thread per
/// `/healthz` request.
pub fn set_health(name: &str, probe: HealthProbe) {
    lock_health().insert(name.to_string(), probe);
}

/// Remove the probe `name` (a shut-down front-end deregisters itself so
/// it stops failing readiness forever after).
pub fn clear_health(name: &str) {
    lock_health().remove(name);
}

/// Run every registered probe: `(all_healthy, per-probe results)` sorted
/// by name. No probes registered reads as healthy ("nothing claims to be
/// unready").
pub fn health_report() -> (bool, Vec<(String, bool)>) {
    let reg = lock_health();
    let results: Vec<(String, bool)> = reg.iter().map(|(n, p)| (n.clone(), p())).collect();
    let all = results.iter().all(|(_, ok)| *ok);
    (all, results)
}

/// The running stats endpoint. Dropping it (or calling
/// [`StatsServer::shutdown`]) stops the accept loop and joins the thread.
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl StatsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start the accept loop on a
    /// named thread. Errors are the bind/spawn errors only; everything
    /// after is handled per-connection.
    // om-lint: allow(thread-spawn) — constructor of the endpoint's one
    // acceptor thread (the marked Builder::spawn below).
    pub fn spawn(addr: &str) -> std::io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("om-obs-http".into())
            // om-lint: allow(thread-spawn) — the stats endpoint needs its
            // own long-lived acceptor; it must not occupy the tensor pool.
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    match conn {
                        Ok(stream) => handle_connection(stream),
                        Err(e) => {
                            crate::debug!("obs http: accept error: {e}");
                        }
                    }
                }
            })?;
        crate::info!("obs http: stats endpoint listening on {local}");
        Ok(StatsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// Spawn iff `OM_OBS_ADDR` is set and non-empty. A bind failure is a
    /// WARN and `None` — telemetry must never stop the server from
    /// serving.
    pub fn spawn_from_env() -> Option<StatsServer> {
        let addr = std::env::var("OM_OBS_ADDR").ok().filter(|a| !a.trim().is_empty())?;
        // om-lint: allow(thread-spawn) — delegates to the marked
        // constructor above.
        match StatsServer::spawn(addr.trim()) {
            Ok(server) => Some(server),
            Err(e) => {
                crate::warn!("obs http: cannot bind OM_OBS_ADDR={addr}: {e}");
                None
            }
        }
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the acceptor with a self-connection, and
    /// join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // `incoming()` blocks in accept(2); a throwaway connection wakes
        // it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, READ_TIMEOUT);
        let _ = thread.join();
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Read one request (up to the cap / deadline), answer it, close.
fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let (status, content_type, body) = respond(&buf);
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Route a raw request to `(status line, content type, body)`.
fn respond(raw: &[u8]) -> (&'static str, &'static str, String) {
    let Some((method, path)) = parse_request_line(raw) else {
        return ("400 Bad Request", "text/plain", "bad request\n".to_string());
    };
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n".to_string(),
        );
    }
    // Ignore any query string: `/metrics?x=y` is `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            live::render_prometheus(&live::snapshot_all()),
        ),
        "/healthz" => {
            let (all, probes) = health_report();
            let mut body = String::new();
            for (name, ok) in &probes {
                body.push_str(&format!("{name} {}\n", if *ok { "ok" } else { "FAIL" }));
            }
            if all {
                body.push_str("ok\n");
                ("200 OK", "text/plain", body)
            } else {
                body.push_str("unhealthy\n");
                ("503 Service Unavailable", "text/plain", body)
            }
        }
        "/statz" => {
            let mut body = live::render_statz(&live::snapshot_all()).to_string();
            body.push('\n');
            ("200 OK", "application/json", body)
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    }
}

/// The `(method, path)` of an HTTP request line, if the bytes hold one.
fn parse_request_line(raw: &[u8]) -> Option<(&str, &str)> {
    let text = std::str::from_utf8(raw).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") || !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.0\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line(b"POST /statz HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("POST", "/statz"))
        );
        assert_eq!(parse_request_line(b"GET metrics HTTP/1.0\r\n"), None, "path must be absolute");
        assert_eq!(parse_request_line(b"GET /metrics\r\n"), None, "version required");
        assert_eq!(parse_request_line(b"\xff\xfe"), None, "not UTF-8");
        assert_eq!(parse_request_line(b""), None);
    }

    #[test]
    fn endpoint_serves_metrics_healthz_statz() {
        let c = crate::live::counter("test.http.hits");
        c.add(3);
        let h = crate::live::histogram("test.http.lat");
        h.record(100);
        // om-lint: allow(thread-spawn) — test exercising the endpoint.
        let server = StatsServer::spawn("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();

        let metrics = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
        assert!(metrics.contains("test_http_hits 3"), "{metrics}");
        assert!(metrics.contains("# TYPE test_http_lat histogram"), "{metrics}");
        assert!(metrics.contains("test_http_lat_count 1"), "{metrics}");

        let statz = get(addr, "GET /statz?pretty=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(statz.starts_with("HTTP/1.0 200 OK"), "{statz}");
        let body = statz.split("\r\n\r\n").nth(1).expect("body");
        let json = crate::json::Json::parse(body.trim()).expect("statz parses");
        assert_eq!(
            json.get("test.http.hits").and_then(crate::json::Json::as_u64),
            Some(3)
        );

        set_health("test.http.good", Box::new(|| true));
        let healthz = get(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(healthz.starts_with("HTTP/1.0 200 OK"), "{healthz}");
        assert!(healthz.contains("test.http.good ok"), "{healthz}");

        set_health("test.http.bad", Box::new(|| false));
        let healthz = get(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(healthz.starts_with("HTTP/1.0 503"), "{healthz}");
        assert!(healthz.contains("test.http.bad FAIL"), "{healthz}");
        clear_health("test.http.bad");
        clear_health("test.http.good");

        let missing = get(addr, "GET /nope HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let post = get(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(post.starts_with("HTTP/1.0 405"), "{post}");
        let garbage = get(addr, "not http at all\r\n\r\n");
        assert!(garbage.starts_with("HTTP/1.0 400"), "{garbage}");

        server.shutdown();
    }

    #[test]
    fn spawn_from_env_is_gated() {
        // No OM_OBS_ADDR in the test environment → no socket.
        if std::env::var("OM_OBS_ADDR").is_err() {
            assert!(StatsServer::spawn_from_env().is_none());
        }
    }
}
