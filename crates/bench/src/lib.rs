//! # om-bench
//!
//! Criterion benchmarks for the OmniMatch reproduction:
//!
//! * `algorithm1` — auxiliary-document generation throughput across corpus
//!   sizes, demonstrating the `O(N·M + L·M·Q)` claim of §4.1;
//! * `extractors` — TextCNN vs transformer forward/backward cost (the
//!   performance side of the Table 5 `OmniMatch-BERT` comparison);
//! * `losses` — supervised contrastive loss scaling in batch size, and the
//!   GRL's (absence of) overhead;
//! * `training` — per-epoch cost with DA/SCL toggled (Table 6's
//!   mechanism);
//! * `baselines` — substrate costs (MF fit, graph propagation epochs).

pub mod replay;

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_data::split::CrossDomainScenario;

/// A small scenario reused across benches (deterministic).
pub fn bench_scenario() -> CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

/// A medium scenario for Table 6-style timing.
pub fn bench_scenario_medium() -> CrossDomainScenario {
    let cfg = SynthConfig {
        n_users: 120,
        n_items: 60,
        ..SynthConfig::tiny()
    };
    let world = SynthWorld::generate(cfg, &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}
