//! int8 per-row-scale quantization for serving arenas.
//!
//! Training and checkpoints stay exact f32 — quantization is a *serving*
//! representation only, applied when an arena is built or loaded with
//! `--quantized`. Each `[dim]` feature row stores one f32 scale plus
//! `dim` int8 codes:
//!
//! ```text
//! scale = max(|row|) / 127          (0.0 for an all-zero row)
//! q[i]  = round(row[i] / scale)     clamped to [-127, 127]
//! deq   = q[i] as f32 * scale
//! ```
//!
//! The symmetric ±127 range (never -128) keeps the codebook symmetric so
//! `|deq| <= max(|row|)` and the worst-case per-element error is
//! `scale / 2 = max(|row|) / 254` — under 0.4% of the row's dynamic
//! range. Dequantization is exact in f32 (`i8 → f32` is exact; one
//! rounded multiply), so the scalar and AVX2 `dequant_rows` paths are
//! bitwise identical and the sharded quantized engine matches the
//! unsharded quantized engine bit for bit. What quantization *does* move
//! is the score itself relative to the f32 engine; `serve_smoke
//! --quantized` and `tests/quant_diff.rs` hold that drift under the
//! committed bounds below.

/// Committed bound on RMSE of expected-star scores, quantized engine vs.
/// the f32 engine, over a full users × items score matrix. Measured
/// ~0.0006 on the smoke checkpoint; committed with ~8× margin.
pub const QUANT_MAX_SCORE_RMSE: f64 = 0.005;

/// Committed bound on mean absolute expected-star delta, quantized vs.
/// f32, over the same matrix. Measured ~0.0005 on the smoke checkpoint;
/// committed with ~10× margin.
pub const QUANT_MAX_SCORE_MAE: f64 = 0.005;

/// Committed bound on the absolute expected-star delta of any *single*
/// (user, item) pair, quantized vs. f32 — the per-pair bound the
/// differential proptest suite enforces. Measured ~0.0017 on the smoke
/// checkpoint; committed with ~10× margin.
pub const QUANT_MAX_SCORE_ABS: f64 = 0.02;

/// Quantize one `[dim]` row: returns the scale and appends `row.len()`
/// codes to `q`.
pub fn quantize_row_into(row: &[f32], q: &mut Vec<i8>) -> f32 {
    // om-lint: reduction-ok(max is exact and order-independent — no
    // rounding ever occurs, and NaN never wins a `max`)
    let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        // All-zero rows round-trip exactly with scale 0, and a row whose
        // amax is infinite degenerates to zeros. (A NaN feature does not
        // trip this guard — `max` ignores NaN — it just quantizes to
        // code 0 via the saturating float→int cast.)
        q.extend(std::iter::repeat_n(0i8, row.len()));
        return 0.0;
    }
    let scale = amax / 127.0;
    let inv = 127.0 / amax;
    q.extend(row.iter().map(|&v| {
        let r = (v * inv).round();
        r.clamp(-127.0, 127.0) as i8
    }));
    scale
}

/// Quantize a `[n, dim]` row-major block into `(codes, per-row scales)`.
pub fn quantize_rows(data: &[f32], n: usize, dim: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(data.len(), n * dim, "ragged block in quantize_rows");
    let mut q = Vec::with_capacity(n * dim);
    let mut scales = Vec::with_capacity(n);
    for row in data.chunks_exact(dim.max(1)).take(n) {
        scales.push(quantize_row_into(row, &mut q));
    }
    if dim == 0 {
        scales.resize(n, 0.0);
    }
    (q, scales)
}

/// Dequantize one `[dim]` row into `dst` (cleared first) — the scalar
/// reference the arena's hot path (`om_tensor::kernels::dequant_rows`)
/// matches bitwise.
pub fn dequantize_row_into(q: &[i8], scale: f32, dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(q.iter().map(|&c| c as f32 * scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded_by_half_a_step() {
        let row: Vec<f32> = (0..97).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let mut q = Vec::new();
        let scale = quantize_row_into(&row, &mut q);
        assert_eq!(q.len(), row.len());
        for (&v, &c) in row.iter().zip(&q) {
            let deq = c as f32 * scale;
            assert!((v - deq).abs() <= scale * 0.5 + 1e-7, "v={v} deq={deq} scale={scale}");
        }
    }

    #[test]
    fn zero_and_nonfinite_rows_quantize_to_zero() {
        let mut q = Vec::new();
        assert_eq!(quantize_row_into(&[0.0; 5], &mut q), 0.0);
        assert_eq!(q, vec![0i8; 5]);
        q.clear();
        assert_eq!(quantize_row_into(&[1.0, f32::INFINITY, 2.0], &mut q), 0.0);
        assert_eq!(q, vec![0i8; 3]);
        // NaN never wins a `max`, so the row keeps its finite scale and
        // the NaN element saturates to code 0.
        q.clear();
        let scale = quantize_row_into(&[1.0, f32::NAN, 2.0], &mut q);
        assert_eq!(scale, 2.0 / 127.0);
        assert_eq!(q[1], 0);
    }

    #[test]
    fn extremes_hit_plus_minus_127_exactly() {
        let mut q = Vec::new();
        let scale = quantize_row_into(&[-4.0, 4.0, 0.0], &mut q);
        assert_eq!(q, vec![-127, 127, 0]);
        assert_eq!(scale, 4.0 / 127.0);
    }

    #[test]
    fn block_quantization_matches_per_row() {
        let data: Vec<f32> = (0..6 * 8).map(|i| (i as f32) * 0.11 - 2.0).collect();
        let (q, scales) = quantize_rows(&data, 6, 8);
        assert_eq!(q.len(), 48);
        assert_eq!(scales.len(), 6);
        for (r, row) in data.chunks_exact(8).enumerate() {
            let mut qr = Vec::new();
            let s = quantize_row_into(row, &mut qr);
            assert_eq!(s.to_bits(), scales[r].to_bits());
            assert_eq!(&q[r * 8..(r + 1) * 8], &qr[..]);
        }
    }
}
