//! `cargo obs-report [DIR]` — summarize an observability run artifact.
//!
//! `DIR` may be a run directory (containing `events.jsonl`) or a parent
//! (e.g. `results/obs`), in which case the most recently modified run
//! below it is picked. With no argument, the default sink root is used.
//!
//! Exits non-zero when the artifact is missing or fails schema
//! validation, so CI can gate on it.

use std::path::{Path, PathBuf};

fn find_run_dir(path: &Path) -> Option<PathBuf> {
    if path.join("events.jsonl").is_file() {
        return Some(path.to_path_buf());
    }
    let entries = std::fs::read_dir(path).ok()?;
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in entries.flatten() {
        let dir = entry.path();
        let events = dir.join("events.jsonl");
        if !events.is_file() {
            continue;
        }
        let mtime = events
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
            best = Some((mtime, dir));
        }
    }
    best.map(|(_, d)| d)
}

fn main() {
    let arg = std::env::args().nth(1);
    let root = arg.map(PathBuf::from).unwrap_or_else(om_obs::out_root);
    let Some(run_dir) = find_run_dir(&root) else {
        eprintln!(
            "obs-report: no run artifact (events.jsonl) under {} — run something with OM_OBS=1 first",
            root.display()
        );
        std::process::exit(2);
    };
    match om_obs::report::summarize(&run_dir) {
        Ok(text) => {
            println!("artifact: {}", run_dir.display());
            println!("{text}");
        }
        Err(e) => {
            eprintln!("obs-report: invalid artifact {}: {e}", run_dir.display());
            std::process::exit(1);
        }
    }
}
