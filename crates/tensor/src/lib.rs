//! # om-tensor
//!
//! A small, dependency-light f32 tensor library with reverse-mode automatic
//! differentiation, written from scratch for the OmniMatch (EDBT 2025)
//! reproduction.
//!
//! The design is a dynamically-built computation graph: every differentiable
//! operation produces a new [`Tensor`] that records its parents and a
//! backward closure. Calling [`Tensor::backward`] on a scalar output runs a
//! topological sweep and accumulates gradients into every tensor that
//! requires them.
//!
//! The op set is exactly what the OmniMatch architecture needs — dense
//! algebra (matmul, bias broadcast), TextCNN plumbing (embedding gather,
//! unfold/im2col, max-over-time pooling), loss machinery (log-softmax,
//! negative log-likelihood gather, L2 row normalisation for contrastive
//! projections) and the gradient-reversal primitive used by domain
//! adversarial training.
//!
//! Heavy kernels (GEMM, elementwise maps, row-wise softmax/normalisation,
//! reductions, unfold) execute on a global thread pool — see [`runtime`]
//! for configuration (`OM_THREADS`) and [`kernels`] for the determinism
//! contract: results are bitwise identical at every thread count.
//!
//! ```
//! use om_tensor::Tensor;
//! let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
//! let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
//! let y = x.matmul(&w).sum_all();
//! y.backward();
//! assert_eq!(w.grad_vec().unwrap(), vec![1.0, 1.0, 1.0, 1.0]);
//! ```

pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod ops;
pub mod runtime;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use gradcheck::{gradcheck, GradCheckReport};
pub use shape::Shape;
pub use tensor::{grad_enabled, no_grad, NoGradGuard, Tensor};

/// Open an observability span for a hot op, or a no-op handle when
/// observability is disabled (the common case: one relaxed atomic load).
/// Timing never influences results — see the determinism contract in
/// [`kernels`].
#[inline]
pub(crate) fn obs_span(name: &'static str) -> om_obs::Span {
    om_obs::trace::span_if(om_obs::enabled(), name)
}

/// Convenience alias used across the workspace for seeded randomness.
pub type Rng = rand::rngs::StdRng;

/// Create a deterministic RNG from a seed. All stochastic components in the
/// reproduction accept one of these so every experiment is replayable.
pub fn seeded_rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
