//! Dense 2-D matrix multiplication and transposition.

use super::{acc, wants_grad};
use crate::kernels::{gemm, transpose as transpose_raw};
use crate::Tensor;

impl Tensor {
    /// Matrix product of `self [m,k]` and `other [k,n]` → `[m,n]`.
    ///
    /// Tensors with more than two axes are treated as 2-D by flattening the
    /// leading axes (see [`crate::Shape::as_2d`]).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_2d();
        let (k2, n) = other.shape().as_2d();
        assert_eq!(
            k, k2,
            "matmul: inner dims mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        gemm(&self.data(), &other.data(), &mut out, m, k, n);
        Tensor::from_op(
            out,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                // dA = dC · Bᵀ ; dB = Aᵀ · dC
                let (pa, pb) = (&parents[0], &parents[1]);
                if wants_grad(pa) {
                    let bt = transpose_raw(&pb.data(), k, n);
                    let mut ga = vec![0.0f32; m * k];
                    gemm(g, &bt, &mut ga, m, n, k);
                    acc(pa, &ga);
                }
                if wants_grad(pb) {
                    let at = transpose_raw(&pa.data(), m, k);
                    let mut gb = vec![0.0f32; k * n];
                    gemm(&at, g, &mut gb, k, m, n);
                    acc(pb, &gb);
                }
            }),
        )
    }

    /// Transpose a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape().as_2d();
        let out = transpose_raw(&self.data(), m, n);
        Tensor::from_op(
            out,
            &[n, m],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gt = transpose_raw(g, n, m);
                    acc(&parents[0], &gt);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn matmul_forward() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).requires_grad();
        let y = a.matmul(&b).sum_all();
        y.backward();
        // dA = 1·Bᵀ summed: each row of dA = column sums of B rows
        assert_eq!(a.grad_vec().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(&c.to_vec()[0..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.to_vec()[4..8], &[6.0, 7.0, 8.0, 9.0]);
        assert_eq!(&c.to_vec()[8..12], &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose().to_vec(), a.to_vec());
    }

    #[test]
    fn transpose_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], &[2, 2]);
        let y = a.transpose().mul(&w).sum_all();
        y.backward();
        // grad wrt a[i][j] = w[j][i]
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 100.0, 10.0, 1000.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }
}
