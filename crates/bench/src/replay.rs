//! Shared trace-replay machinery for the serving benchmarks.
//!
//! `serve_bench` (small catalogue, single-arena engine) and `load_bench`
//! (million-user sharded engine) measure the same thing — microbatched
//! scoring under a synthetic arrival trace — so the trace construction,
//! the virtual-clock replay loop, and the `bench_json`-schema summaries
//! live here once and both binaries call them.
//!
//! The replay is *open-loop* and virtually clocked: arrivals follow the
//! trace's deterministic timestamps (they never wait for responses), the
//! microbatcher's deadlines are evaluated against that virtual clock, and
//! only the compute inside each flush is measured with `Instant`. A
//! request's reported latency is its virtual queue wait plus the real
//! compute time of the flush that scored it. This keeps the batching
//! pattern bit-reproducible run to run while the timings stay honest.

use std::collections::BTreeMap;
use std::time::Instant;

use om_data::types::UserId;
use om_obs::json::Json;
use om_serve::{BatchScorer, Microbatcher, Request};

/// Inter-arrival process for a synthetic trace. Both are deterministic
/// (hash-derived), so a trace is a pure function of its parameters.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Uniform jitter: gap in `[mean/2, 3·mean/2)` — `serve_bench`'s
    /// historical process.
    Jittered {
        /// Mean inter-arrival gap, microseconds.
        mean_gap_us: u64,
    },
    /// Exponential gaps (a Poisson arrival process), inverse-CDF sampled.
    Poisson {
        /// Mean inter-arrival gap, microseconds.
        mean_gap_us: u64,
    },
}

/// Build a deterministic request trace. `pick` maps each request's hash
/// to the user served (uniform, Zipfian — the caller decides); arrivals
/// advance per [`Arrival`]. Request ids are the trace positions.
pub fn build_trace<F: FnMut(u64) -> UserId>(
    requests: usize,
    arrival: Arrival,
    mut pick: F,
) -> Vec<Request> {
    let mut trace = Vec::with_capacity(requests);
    let mut now_us = 0u64;
    let mut h = 0x1234_5678_9ABC_DEF1u64;
    for i in 0..requests {
        h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(23) ^ (i as u64);
        now_us += match arrival {
            Arrival::Jittered { mean_gap_us } => mean_gap_us / 2 + h % mean_gap_us,
            Arrival::Poisson { mean_gap_us } => {
                // Exponential inverse CDF: gap = -mean · ln(1 - u), with u
                // drawn from the top 53 bits of the hash.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                (-(mean_gap_us as f64) * (1.0 - u).max(f64::MIN_POSITIVE).ln()) as u64
            }
        };
        trace.push(Request { id: i as u64, user: pick(h), arrive_us: now_us });
    }
    trace
}

/// A Zipfian user picker over ranks `0..n`: rank `r` drawn with
/// probability `∝ 1/(r+1)^s` via the inverse CDF of the continuous
/// bounded power law (the standard approximation — exact enough for a
/// load model, O(1) per draw with no `n`-sized weight table). `ranks[r]`
/// then maps popularity rank to a concrete user.
pub fn zipf_pick(n: usize, s: f64, h: u64) -> usize {
    debug_assert!(n > 0);
    let u = ((h >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0 - 1e-12);
    let n_f = n as f64;
    let rank = if (s - 1.0).abs() < 1e-9 {
        // s = 1: CDF ∝ ln(x), inverse is an exponential in u.
        (n_f.ln() * u).exp()
    } else {
        let p = 1.0 - s;
        ((n_f.powf(p) - 1.0) * u + 1.0).powf(1.0 / p)
    };
    (rank as usize).min(n - 1)
}

/// Everything a measured replay produced; the caller turns these into
/// `bench_json` summaries and report-specific extras.
pub struct ReplayOutcome {
    /// Per-flush compute time, ms (measured replays only).
    pub flush_ms: Vec<f64>,
    /// Per-request latency (virtual queue wait + flush compute), ms.
    pub latency_ms: Vec<f64>,
    /// Total compute seconds across measured replays.
    pub compute_s: f64,
    /// Requests served across measured replays.
    pub served: usize,
}

/// Replay `trace` through a fresh [`Microbatcher`] per pass: one
/// discarded warmup, then `replays` measured passes. Per-request
/// latencies are recorded into the `om_obs` histogram named `hist` (in
/// nanoseconds) so the caller can read p50/p95/p99 from the same sketch
/// the observability stack uses. Panics if a replay drops a request.
pub fn replay_trace<S: BatchScorer>(
    scorer: &S,
    trace: &[Request],
    batch: usize,
    wait_us: u64,
    replays: usize,
    hist: &str,
) -> ReplayOutcome {
    let lat = om_obs::metrics::histogram(hist);
    let mut out = ReplayOutcome {
        flush_ms: Vec::new(),
        latency_ms: Vec::new(),
        compute_s: 0.0,
        served: 0,
    };
    for replay in 0..=replays {
        let warmup = replay == 0;
        let mut batcher: Microbatcher<Request> = Microbatcher::new(batch, wait_us);
        let mut served = 0usize;
        let mut flush = |reqs: Vec<Request>, virtual_now: u64| {
            let t = Instant::now();
            let responses = scorer.serve_batch(&reqs).expect("replay scorer failed");
            let dt = t.elapsed().as_secs_f64();
            served += responses.len();
            if warmup {
                return;
            }
            out.compute_s += dt;
            out.flush_ms.push(dt * 1e3);
            for r in &reqs {
                let wait_ms = (virtual_now - r.arrive_us) as f64 / 1e3;
                let total = wait_ms + dt * 1e3;
                out.latency_ms.push(total);
                lat.record((total * 1e6) as u64);
            }
        };
        for req in trace {
            if let Some(due) = batcher.poll(req.arrive_us) {
                // Deadline flush fires at (oldest arrival + wait_us), not
                // at the arrival that exposed it.
                let fired_at = due[0].arrive_us + wait_us;
                flush(due, fired_at);
            }
            let now = req.arrive_us;
            if let Some(full) = batcher.submit(*req, now) {
                flush(full, now);
            }
        }
        let end = trace.last().expect("non-empty trace").arrive_us + wait_us;
        if let Some(rest) = batcher.drain() {
            flush(rest, end);
        }
        assert_eq!(served, trace.len(), "trace replay dropped requests");
        if !warmup {
            out.served += served;
        }
    }
    out
}

/// Summary of one benchmark's samples (nearest-rank percentiles) —
/// matches the `bench_json` schema that `bench_gate` reads.
pub fn summarize(name: &str, mut samples: Vec<f64>) -> Json {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    let pct = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
    let mut o = BTreeMap::new();
    o.insert("name".to_string(), Json::Str(name.to_string()));
    o.insert("iters".to_string(), Json::Num(n as f64));
    o.insert("median_ms".to_string(), Json::Num(pct(0.5)));
    o.insert(
        "mean_ms".to_string(),
        Json::Num(samples.iter().sum::<f64>() / n as f64),
    );
    o.insert("p95_ms".to_string(), Json::Num(pct(0.95)));
    o.insert("min_ms".to_string(), Json::Num(samples[0]));
    o.insert("max_ms".to_string(), Json::Num(samples[n - 1]));
    Json::Obj(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_monotone() {
        let pick = |h: u64| UserId((h >> 32) as u32 % 100);
        let a = build_trace(200, Arrival::Jittered { mean_gap_us: 650 }, pick);
        let b = build_trace(200, Arrival::Jittered { mean_gap_us: 650 }, pick);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrive_us <= w[1].arrive_us));
        let p = build_trace(200, Arrival::Poisson { mean_gap_us: 650 }, pick);
        assert!(p.windows(2).all(|w| w[0].arrive_us <= w[1].arrive_us));
        // Mean gap in the right ballpark for both processes.
        for t in [&a, &p] {
            let mean = t.last().expect("non-empty").arrive_us as f64 / t.len() as f64;
            assert!((300.0..1300.0).contains(&mean), "mean gap {mean}");
        }
    }

    #[test]
    fn zipf_pick_is_skewed_and_in_range() {
        let n = 10_000;
        let mut head = 0usize;
        let mut h = 7u64;
        for _ in 0..4_000 {
            h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(23);
            let r = zipf_pick(n, 1.1, h);
            assert!(r < n);
            if r < n / 100 {
                head += 1;
            }
        }
        // Under uniform sampling the top 1% of ranks would get ~1% of
        // draws; Zipf s=1.1 concentrates far more than that there.
        assert!(head > 400, "head draws {head} not Zipf-skewed");
    }

    #[test]
    fn summaries_use_nearest_rank_percentiles() {
        let s = summarize("t", vec![4.0, 1.0, 3.0, 2.0]);
        let f = |k: &str| s.get(k).and_then(Json::as_f64).expect("field");
        assert_eq!(f("iters"), 4.0);
        assert_eq!(f("median_ms"), 2.0);
        assert_eq!(f("min_ms"), 1.0);
        assert_eq!(f("max_ms"), 4.0);
    }
}
