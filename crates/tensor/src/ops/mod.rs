//! Differentiable operations on [`Tensor`](crate::Tensor).
//!
//! Each op computes its forward value eagerly and registers a backward
//! closure that distributes the upstream gradient to its parents. Ops are
//! grouped by theme:
//!
//! * [`elementwise`] — add/sub/mul, scalar algebra, activations, exp/log.
//! * [`matmul`] — dense 2-D matrix multiplication and transposition.
//! * [`reduce`] — full and axis reductions.
//! * [`softmax`] — (log-)softmax over rows and the fused NLL gather.
//! * [`structural`] — reshape, concat, embedding gather, unfold (im2col),
//!   max-over-time pooling, row selection.
//! * [`special`] — gradient reversal/scaling and L2 row normalisation.

pub mod elementwise;
pub mod matmul;
pub mod reduce;
pub mod softmax;
pub mod special;
pub mod structural;

use crate::Tensor;

/// Accumulate `g` into `t` only when `t` participates in the gradient graph.
pub(crate) fn acc(t: &Tensor, g: &[f32]) {
    if t.0.needs_grad {
        t.accumulate_grad(g);
    }
}

/// Whether a parent wants gradient (closure-side check).
pub(crate) fn wants_grad(t: &Tensor) -> bool {
    t.0.needs_grad
}
