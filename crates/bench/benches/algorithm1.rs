//! Algorithm 1 throughput: auxiliary-document generation across corpus
//! sizes. §4.1 claims `O(N·M + L·M·Q)` — dictionary construction linear in
//! corpus size, generation linear in cold users × records × like-minded
//! pool. The groups below sweep each factor independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_data::types::TextField;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_tensor::seeded_rng;
use omnimatch_core::AuxiliaryReviewGenerator;

fn world(n_users: usize, reviews: (usize, usize)) -> SynthWorld {
    let cfg = SynthConfig {
        n_users,
        n_items: (n_users / 2).max(20),
        reviews_per_user: reviews,
        ..SynthConfig::tiny()
    };
    SynthWorld::generate(cfg, &["Books", "Movies"])
}

/// Sweep N (corpus size): generation for a fixed 10 cold users.
fn bench_users(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/users");
    group.sample_size(20);
    for n in [60usize, 120, 240] {
        let w = world(n, (4, 8));
        let sc = w.scenario("Books", "Movies", SplitConfig::default());
        let generator = AuxiliaryReviewGenerator::new(&sc);
        let cold: Vec<_> = sc.test_users.iter().copied().take(10).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = seeded_rng(1);
                std::hint::black_box(generator.generate_all(&cold, TextField::Summary, &mut rng))
            })
        });
    }
    group.finish();
}

/// Sweep M (records per user).
fn bench_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/records_per_user");
    group.sample_size(20);
    for m in [3usize, 6, 12] {
        let w = world(120, (m, m));
        let sc = w.scenario("Books", "Movies", SplitConfig::default());
        let generator = AuxiliaryReviewGenerator::new(&sc);
        let cold: Vec<_> = sc.test_users.iter().copied().take(10).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut rng = seeded_rng(1);
                std::hint::black_box(generator.generate_all(&cold, TextField::Summary, &mut rng))
            })
        });
    }
    group.finish();
}

/// Dictionary construction (the `O(N·M)` preprocessing term): building the
/// indexed Domain from raw interactions.
fn bench_dictionaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/dictionary_build");
    group.sample_size(20);
    for n in [60usize, 120, 240] {
        let w = world(n, (4, 8));
        let interactions = w.domain("Books").interactions().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(om_data::Domain::new("Books", interactions.clone()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_users, bench_records, bench_dictionaries);
criterion_main!(benches);
