//! The serving engine's central contract, property-tested: **batched
//! inference is bitwise equal to one-request-at-a-time inference** for
//! arbitrary batch groupings and `OM_THREADS` settings — and running
//! inference never perturbs a subsequent training run.
//!
//! One trained engine is shared per test thread (training is the
//! expensive part); the proptest cases then vary grouping and thread
//! count against a serial unbatched reference.

use std::cell::OnceCell;
use std::sync::{Mutex, MutexGuard, OnceLock};

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{Request, Response, ServeEngine, ServeOptions};
use om_tensor::runtime;
use omnimatch_core::{OmniMatchConfig, Trainer};
use proptest::prelude::*;

/// Serialise mutations of the global thread count across test threads.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

struct Ctx {
    engine: ServeEngine,
    users: Vec<UserId>,
    /// Unbatched single-thread reference responses, in `users` order.
    reference: Vec<Response>,
}

fn build_ctx() -> Ctx {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(11)).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    let reference = {
        let _g = thread_lock();
        let prev = runtime::set_threads(1);
        let r = users
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                engine
                    .serve_one(Request {
                        id: i as u64,
                        user: u,
                        arrive_us: 0,
                    })
                    .expect("serve one")
            })
            .collect();
        runtime::set_threads(prev);
        r
    };
    Ctx { engine, users, reference }
}

// `Tensor` is an `Rc` handle, so the engine cannot live in a shared
// static; each test thread builds (and re-uses) its own.
thread_local! {
    static CTX: OnceCell<Ctx> = const { OnceCell::new() };
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        if c.get().is_none() {
            let _ = c.set(build_ctx());
        }
        f(c.get().expect("ctx initialised"))
    })
}

fn assert_same_response(a: &Response, b: &Response) {
    assert_eq!(a.id, b.id);
    assert_eq!(a.user, b.user);
    assert_eq!(a.top.len(), b.top.len());
    for ((ia, sa), (ib, sb)) in a.top.iter().zip(&b.top) {
        assert_eq!(ia, ib, "item mismatch for user {:?}", a.user);
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "score bits differ for user {:?} item {:?}",
            a.user,
            ia
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_equals_unbatched_bitwise_at_any_thread_count(
        grouping_seed in 0u64..10_000,
        threads in 0usize..4,
    ) {
        with_ctx(|ctx| {
            // Derive an arbitrary partition of the request list: walk the
            // users and cut a new batch with pseudo-random sizes 1..=7.
            let mut groups: Vec<Vec<Request>> = Vec::new();
            let mut cur: Vec<Request> = Vec::new();
            let mut h = grouping_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut cut = (h % 7) as usize + 1;
            for (i, &u) in ctx.users.iter().enumerate() {
                cur.push(Request { id: i as u64, user: u, arrive_us: 0 });
                if cur.len() >= cut {
                    groups.push(std::mem::take(&mut cur));
                    h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(17);
                    cut = (h % 7) as usize + 1;
                }
            }
            if !cur.is_empty() {
                groups.push(cur);
            }

            let _g = thread_lock();
            let prev = runtime::set_threads(threads);
            let got: Vec<Response> = groups
                .iter()
                .flat_map(|g| ctx.engine.serve_batch(g).expect("serve batch"))
                .collect();
            runtime::set_threads(prev);

            assert_eq!(got.len(), ctx.reference.len());
            for (a, b) in got.iter().zip(&ctx.reference) {
                assert_same_response(a, b);
            }
        });
    }
}

#[test]
fn inference_mode_never_perturbs_a_subsequent_training_run() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(23);

    // Reference: two clean back-to-back fits are bitwise identical (PR 1's
    // determinism guarantee), so any deviation below is caused by serving.
    let first = Trainer::new(cfg.clone()).fit(&scenario);
    let reference = first.export_checkpoint();

    // Serve a pile of requests off the first model — tape-free, dropout
    // off, nothing drawn from any RNG...
    let warm = scenario.train_users.clone();
    let (model, views, _) = first.into_parts();
    let users = views.users().to_vec();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    let reqs: Vec<Request> = users
        .iter()
        .enumerate()
        .map(|(i, &u)| Request { id: i as u64, user: u, arrive_us: 0 })
        .collect();
    let responses = engine.serve_batch(&reqs).expect("serve batch");
    assert_eq!(responses.len(), reqs.len());

    // ...so a training run *after* serving reproduces the reference
    // checkpoint bit for bit.
    let second = Trainer::new(cfg).fit(&scenario);
    assert_eq!(
        reference,
        second.export_checkpoint(),
        "serving perturbed a subsequent training run"
    );
}
