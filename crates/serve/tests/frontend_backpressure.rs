//! Backpressure contract of the threaded front-end, pinned with a
//! gated stub scorer (no model in the loop):
//!
//! * a full queue is a **typed rejection** (`SubmitError::QueueFull`) —
//!   never a panic, never a blocked producer;
//! * shutdown drains: every accepted request gets a response before the
//!   worker exits;
//! * a slow consumer bounds queue memory — accepted-but-unserved requests
//!   never exceed the queue bound plus the one batch in flight;
//! * a handle outliving the front-end reports `SubmitError::Shutdown`.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

use om_data::types::UserId;
use om_serve::{BatchScorer, Frontend, FrontendOptions, Request, Response, ServeError, SubmitError};

/// A scorer that blocks inside `serve_batch` until the test releases it:
/// `entered` fires once per flush as the worker goes busy; each flush
/// then waits on `gate` (released wholesale by dropping the sender).
struct GatedScorer {
    entered: Sender<usize>,
    gate: Mutex<Receiver<()>>,
}

impl BatchScorer for GatedScorer {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        // The test may have stopped listening for entry signals.
        let _ = self.entered.send(reqs.len());
        // Err means the test dropped the gate: everything is released.
        let _ = self.gate.lock().expect("gate").recv();
        Ok(reqs
            .iter()
            .map(|r| Response { id: r.id, user: r.user, top: Vec::new() })
            .collect())
    }
}

fn req(id: u64) -> Request {
    Request { id, user: UserId(id as u32), arrive_us: 0 }
}

/// Spawn a front-end around a gated scorer. Returns the front-end, the
/// response stream, the per-flush entry signal, and the gate's sender
/// (drop it to release every blocked flush).
fn gated_frontend(
    opts: FrontendOptions,
) -> (Frontend, Receiver<Response>, Receiver<usize>, Sender<()>) {
    let (entered_tx, entered_rx) = channel();
    let (gate_tx, gate_rx) = channel();
    let (resp_tx, resp_rx) = channel();
    // om-lint: allow(thread-spawn) — spawning the front-end consumer is
    // the behaviour under test.
    let fe = Frontend::spawn(
        move || GatedScorer { entered: entered_tx, gate: Mutex::new(gate_rx) },
        opts,
        resp_tx,
    )
    .expect("spawn front-end");
    (fe, resp_rx, entered_rx, gate_tx)
}

#[test]
fn full_queue_is_a_typed_rejection_not_a_panic_or_a_block() {
    let cap = 3usize;
    let (fe, resp_rx, entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: cap,
        batch: 1,
        wait_us: 0,
    });
    let handle = fe.handle();

    // First request: the worker takes it and blocks inside the scorer.
    handle.try_send(req(0)).expect("first submit");
    let first_flush = entered_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker entered the scorer");
    assert_eq!(first_flush, 1);

    // The worker is stuck, so the next `cap` submits fill the queue...
    for id in 1..=cap as u64 {
        handle.try_send(req(id)).expect("queue has room");
    }
    // ...and the one after that is rejected, typed, immediately.
    let err = handle.try_send(req(99)).expect_err("queue is full");
    assert_eq!(err, SubmitError::QueueFull { capacity: cap });
    assert_eq!(handle.rejected(), 1);
    // Rejection is stateless: still rejecting, still counting.
    assert!(handle.try_send(req(100)).is_err());
    assert_eq!(handle.rejected(), 2);

    // The live snapshot sees the same world, mid-run, without shutdown.
    let snap = handle.stats_snapshot();
    assert_eq!(snap.admitted, 1 + cap as u64);
    assert_eq!(snap.rejected_full, 2);
    assert_eq!(snap.in_flight, 1 + cap as u64, "accepted but not yet replied");
    assert!(snap.worker_alive, "worker is alive (blocked in the scorer)");
    assert!(snap.queue_hwm >= cap as u64, "queue reached its bound");

    // Release the scorer; every *accepted* request is served.
    drop(gate_tx);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 1 + cap as u64);
    assert_eq!(stats.rejected, 2);
    let mut got: Vec<u64> = resp_rx.iter().map(|r| r.id).collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);

    // The handle outlives the front-end; its post-shutdown snapshot must
    // agree with the shutdown stats *exactly* — both read the same
    // atomics, so disagreement is impossible by construction.
    let after = handle.stats_snapshot();
    assert_eq!(after.stats(), stats);
    assert_eq!(after.in_flight, 0, "everything accepted was replied to");
    assert_eq!(after.queue_depth, 0);
    assert!(!after.worker_alive, "worker exited at shutdown");
}

#[test]
fn shutdown_drains_every_accepted_request() {
    // Huge batch and a huge deadline: nothing would flush on its own —
    // only the shutdown drain can produce these responses.
    let (fe, resp_rx, _entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: 64,
        batch: 1_000,
        wait_us: u64::MAX,
    });
    drop(gate_tx); // scorer never blocks in this test
    let handle = fe.handle();
    for id in 0..10 {
        handle.try_send(req(id)).expect("submit");
    }
    let snapshot = fe.stats_snapshot();
    assert_eq!(snapshot.admitted, 10);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 10, "shutdown must drain accepted requests");
    assert_eq!(stats.flushes, 1, "a single drain flush");
    let mut got: Vec<u64> = resp_rx.iter().map(|r| r.id).collect();
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn slow_consumer_bounds_accepted_backlog_to_queue_plus_in_flight() {
    let cap = 2usize;
    let (fe, resp_rx, entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: cap,
        batch: 1,
        wait_us: 0,
    });
    let handle = fe.handle();

    // Hammer the front-end with far more work than the stuck consumer
    // can hold. Memory stays bounded: accepted ≤ queue_cap + the single
    // batch the worker may have already pulled out of the queue.
    let total = 500u64;
    let mut accepted = 0u64;
    for id in 0..total {
        if handle.try_send(req(id)).is_ok() {
            accepted += 1;
        }
    }
    assert!(
        accepted <= (cap + 1) as u64,
        "accepted {accepted} requests against a queue bound of {cap}"
    );
    assert_eq!(handle.rejected(), total - accepted);

    // Every accepted request still completes once the consumer recovers.
    drop(gate_tx);
    drop(entered_rx);
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, accepted);
    assert_eq!(resp_rx.iter().count() as u64, accepted);
}

#[test]
fn handles_outliving_the_frontend_get_a_shutdown_error() {
    let (fe, resp_rx, _entered_rx, gate_tx) = gated_frontend(FrontendOptions {
        queue_cap: 4,
        batch: 1,
        wait_us: 0,
    });
    drop(gate_tx);
    let handle = fe.handle();
    handle.try_send(req(1)).expect("submit while alive");
    let stats = fe.shutdown().expect("shutdown");
    assert_eq!(stats.served, 1);
    assert_eq!(
        handle.try_send(req(2)).expect_err("front-end is gone"),
        SubmitError::Shutdown
    );
    assert_eq!(resp_rx.iter().count(), 1);
}
