//! A small line-aware Rust lexer — just enough structure for the lint
//! passes: identifiers, string/number literals and punctuation with line
//! numbers, plus a record of which lines carry comments (and their text,
//! for `SAFETY:` / `om-lint:` markers).
//!
//! Crucially, the lexer keeps string literals, char literals, lifetimes
//! and comments *opaque*: an identifier like `unsafe` or `HashMap` inside
//! a string or a doc comment never reaches a pass as an [`TokenKind::Ident`].
//! String and number literals are emitted as single [`TokenKind::Str`] /
//! [`TokenKind::Num`] tokens (the env-var registry pass matches `"OM_*"`
//! literals; the float-reduction pass inspects literal accumulator
//! seeds). The full language is deliberately out of scope; anything else
//! is emitted as single-character punctuation.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal (plain, raw or byte), with delimiters stripped and
    /// escapes left as written — passes match prefixes, not exact decoded
    /// values.
    Str(String),
    /// A numeric literal, verbatim (`0`, `1.5f32`, `0xFF`, `1_000`).
    Num(String),
    /// A single punctuation character (also covers operator parts).
    Punct(char),
}

/// A comment occurrence. Multi-line block comments produce one record per
/// line they span, each carrying the full comment text, so "is there a
/// comment on line L?" is a flat lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line this record refers to.
    pub line: usize,
    /// Full text of the comment (including delimiters).
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Identifier/punctuation stream in source order.
    pub tokens: Vec<Token>,
    /// One record per commented line.
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// The text of every comment on `line` plus the contiguous run of
    /// commented lines directly above it, concatenated. This is the
    /// "comment block above" a code line that markers like `// SAFETY:`
    /// must appear in.
    pub fn comment_block_above(&self, line: usize) -> String {
        let mut commented = std::collections::BTreeMap::new();
        for c in &self.comments {
            commented
                .entry(c.line)
                .or_insert_with(String::new)
                .push_str(&c.text);
        }
        let mut block = commented.get(&line).cloned().unwrap_or_default();
        let mut l = line;
        while l > 1 {
            l -= 1;
            match commented.get(&l) {
                Some(text) => block.push_str(text),
                None => break,
            }
        }
        block
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comment records.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1usize;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested, possibly multi-line.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let first_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            for l in first_line..=line {
                out.comments.push(Comment {
                    line: l,
                    text: text.clone(),
                });
            }
            continue;
        }
        // String literal.
        if c == '"' {
            let first_line = line;
            let start = i + 1;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => break,
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            let end = i.min(n);
            if i < n {
                i += 1; // closing quote
            }
            out.tokens.push(Token {
                line: first_line,
                kind: TokenKind::Str(chars[start..end].iter().collect()),
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by another quote.
            if i + 1 < n
                && is_ident_start(chars[i + 1])
                && !(i + 2 < n && chars[i + 2] == '\'')
            {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                continue;
            }
            // Char literal: '\x', 'c'.
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Identifier / keyword — with raw/byte string prefixes peeled off.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // r"...", r#"..."#, b"...", br#"..."# — consume as strings.
            if matches!(text.as_str(), "r" | "b" | "br") && i < n {
                let mut j = i;
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    j += 1;
                    let content_start = j;
                    let first_line = line;
                    let mut content_end = n;
                    'scan: while j < n {
                        if chars[j] == '\n' {
                            line += 1;
                            j += 1;
                        } else if chars[j] == '\\' && text == "b" {
                            j += 2; // escapes only in non-raw byte strings
                        } else if chars[j] == '"' {
                            let quote = j;
                            j += 1;
                            let mut k = 0usize;
                            while k < hashes && j < n && chars[j] == '#' {
                                k += 1;
                                j += 1;
                            }
                            if k == hashes {
                                content_end = quote;
                                break 'scan;
                            }
                        } else {
                            j += 1;
                        }
                    }
                    out.tokens.push(Token {
                        line: first_line,
                        kind: TokenKind::Str(
                            chars[content_start..content_end.min(n)].iter().collect(),
                        ),
                    });
                    i = j;
                    continue;
                }
            }
            out.tokens.push(Token {
                line,
                kind: TokenKind::Ident(text),
            });
            continue;
        }
        // Number: digits/letters/underscores, dot only before another digit
        // (so `0..n` and `0.max(x)` don't swallow what follows).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = chars[i];
                let in_number = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && i + 1 < n && chars[i + 1].is_ascii_digit());
                if !in_number {
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                line,
                kind: TokenKind::Num(chars[start..i].iter().collect()),
            });
            continue;
        }
        out.tokens.push(Token {
            line,
            kind: TokenKind::Punct(c),
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_comments_and_lifetimes_are_opaque() {
        let src = r##"
            // unsafe HashMap in a comment
            /* unsafe in a /* nested */ block */
            fn f<'a>(x: &'a str) -> &'a str {
                let _c = 'u';
                let _s = "unsafe HashMap";
                let _r = r#"unsafe "quoted" HashMap"#;
                x
            }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("fn a() {}\nfn b() {}\n");
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn comment_block_above_spans_contiguous_lines() {
        let src = "// one\n// SAFETY: two\nunsafe {}\n\n// far away\n";
        let lexed = lex(src);
        let block = lexed.comment_block_above(3);
        assert!(block.contains("SAFETY:"));
        assert!(block.contains("one"));
        assert!(!block.contains("far away"));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let ids = idents("let x = 0.max(1); let r = 0..10; let f = 1.5f32;");
        assert!(ids.contains(&"max".to_string()));
    }

    #[test]
    fn string_and_number_literals_become_tokens() {
        let src = r##"
            let a = std::env::var("OM_THREADS");
            let b = r#"OM_RAW"#;
            let c = 0.0f32;
            let d = 1_000;
        "##;
        let lexed = lex(src);
        let strs: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["OM_THREADS".to_string(), "OM_RAW".to_string()]);
        let nums: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0.0f32".to_string(), "1_000".to_string()]);
    }
}
