//! CMF — Collective Matrix Factorization (Singh & Gordon 2008): factorise
//! the source and target rating matrices *simultaneously* with one shared
//! user-factor table. The classic formulation has no bias terms; user
//! factors learned mostly from the source domain transfer to target items
//! only through the joint factorisation, which is why CMF degrades sharply
//! on sparse/noisy corpora (Tables 2–3 of the paper).

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_tensor::{seeded_rng, Rng};

use crate::mf::{MatrixFactorization, MfConfig};
use crate::{clamp_stars, Recommender};

/// Tag an item id with its domain so source/target item id spaces never
/// collide inside a shared factor table.
pub fn tag_item(item: ItemId, domain: u8) -> ItemId {
    assert!(item.0 < (1 << 28), "item id too large to tag");
    ItemId(item.0 | ((domain as u32) << 28))
}

/// Trained CMF model.
pub struct CMF {
    mf: MatrixFactorization,
}

impl CMF {
    /// Domain tag for source items.
    pub const SOURCE: u8 = 1;
    /// Domain tag for target items.
    pub const TARGET: u8 = 2;

    /// Jointly factorise the scenario's source corpus and training-visible
    /// target corpus with shared user factors.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> CMF {
        let mut rng: Rng = seeded_rng(seed);
        let tagged: Vec<Interaction> = scenario
            .source
            .interactions()
            .iter()
            .map(|it| {
                let mut t = it.clone();
                t.item = tag_item(it.item, Self::SOURCE);
                t
            })
            .chain(scenario.target_train.interactions().iter().map(|it| {
                let mut t = it.clone();
                t.item = tag_item(it.item, Self::TARGET);
                t
            }))
            .collect();
        let refs: Vec<&Interaction> = tagged.iter().collect();
        let cfg = MfConfig {
            biased: false, // classic CMF: raw trifactorisation, no biases
            dim: 16,
            epochs: 40,
            lr: 0.01,
            reg: 0.02,
        };
        CMF {
            mf: MatrixFactorization::fit(&refs, cfg, &mut rng),
        }
    }
}

impl Recommender for CMF {
    fn name(&self) -> &'static str {
        "CMF"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        clamp_stars(self.mf.raw_predict(user, tag_item(item, Self::TARGET)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    #[test]
    fn item_tags_never_collide() {
        let a = tag_item(ItemId(5), CMF::SOURCE);
        let b = tag_item(ItemId(5), CMF::TARGET);
        assert_ne!(a, b);
        assert_eq!(a.0 & 0x0FFF_FFFF, 5);
    }

    #[test]
    fn predictions_are_valid_stars() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let sc = world.scenario("Books", "Movies", SplitConfig::default());
        let m = CMF::fit(&sc, 1);
        for it in sc.test_pairs().iter().take(10) {
            let p = m.predict(it.user, it.item);
            assert!((1.0..=5.0).contains(&p));
        }
    }

    #[test]
    fn evaluates_cold_start() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let sc = world.scenario("Books", "Movies", SplitConfig::default());
        let m = CMF::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse > 0.0);
    }
}
