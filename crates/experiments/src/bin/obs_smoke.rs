//! CI smoke test for the observability pipeline: force-enable om-obs,
//! train a tiny model, and print the run's artifact directory on stdout.
//! The CI job then validates `events.jsonl` with `cargo obs-report` (which
//! exits non-zero on a schema violation).

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use omnimatch_core::{OmniMatchConfig, Trainer};

fn main() {
    // Force-on regardless of the environment: this binary exists to
    // exercise the sink end-to-end.
    om_obs::set_enabled(true);
    assert!(
        om_obs::run_begin("obs_smoke"),
        "obs_smoke must own the run"
    );
    om_obs::info!("observability smoke: tiny Books->Movies training");

    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(7)).fit(&scenario);
    let eval = trained.evaluate(&scenario.test_pairs());
    assert!(eval.rmse.is_finite(), "smoke training produced NaN RMSE");
    om_obs::manifest_set("smoke.rmse", (eval.rmse as f64).into());
    om_obs::manifest_set("smoke.mae", (eval.mae as f64).into());

    let dir = om_obs::run_finish().expect("run artifacts written");
    // Machine-readable: CI captures this line to locate the artifact.
    println!("{}", dir.display());
}
