//! Regenerates **Table 6**: wall-clock training time of the full model vs
//! the variants with the Domain Adaptation or Supervised Contrastive
//! Learning module removed (Books→Music and Movies→Music). Absolute times
//! differ from the paper's A100 numbers by construction; the comparison is
//! the *relative* cost of each module, printed alongside the paper's
//! ratios.

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_experiments::paper;
use om_experiments::report::Table;
use omnimatch_core::{OmniMatchConfig, Trainer};

fn main() {
    let _run = om_obs::run_scope("table6");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies", "Music"]);
    let mut table = Table::new(
        "Table 6 — training time with modules removed",
        &[
            "Scenario",
            "Full",
            "w/o DA",
            "w/o SCL",
            "full/woDA",
            "paper full/woDA",
            "full/woSCL",
            "paper full/woSCL",
        ],
    );

    for &(src, tgt, p_full, p_woda, p_woscl) in &paper::TABLE6_MINUTES {
        om_obs::info!("timing {src}->{tgt}…");
        let scenario = world.scenario(src, tgt, SplitConfig::default());
        let time_of = |cfg: OmniMatchConfig| -> f64 {
            Trainer::new(cfg).fit(&scenario).report().train_seconds
        };
        let full = time_of(OmniMatchConfig::default());
        let woda = time_of(OmniMatchConfig::default().without_da());
        let woscl = time_of(OmniMatchConfig::default().without_scl());
        table.row(vec![
            format!("{src} -> {tgt}"),
            format!("{full:.1}s"),
            format!("{woda:.1}s"),
            format!("{woscl:.1}s"),
            format!("{:.2}x", full / woda),
            format!("{:.2}x", p_full / p_woda),
            format!("{:.2}x", full / woscl),
            format!("{:.2}x", p_full / p_woscl),
        ]);
    }

    println!("{}", table.render());
    table.write_tsv("table6.tsv").expect("write results TSV");
    println!("TSV written to results/table6.tsv");
}
