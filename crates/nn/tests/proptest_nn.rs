//! Property-based tests for om-nn: layer algebra, loss invariances and
//! optimizer behaviour over randomised inputs.

use om_nn::{mse_loss, supcon_loss, Adadelta, HasParams, Linear, Mlp, Optimizer, Sgd, TextCnn};
use om_tensor::{init, seeded_rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_is_affine(seed in 0u64..500, a in -2.0f32..2.0, b in -2.0f32..2.0) {
        // f(a·x + b·y) == a·f(x) + b·f(y) − (a+b−1)·bias — affinity check
        let mut rng = seeded_rng(seed);
        let l = Linear::new(4, 3, &mut rng);
        let x = init::normal(&[2, 4], 1.0, &mut rng);
        let y = init::normal(&[2, 4], 1.0, &mut rng);
        let lhs = l.forward(&x.scale(a).add(&y.scale(b)));
        let bias_term = l.bias.scale(a + b - 1.0);
        let rhs = l.forward(&x).scale(a).add(&l.forward(&y).scale(b));
        for i in 0..lhs.numel() {
            let corrected = rhs.at(i) - bias_term.at(i % 3);
            prop_assert!((lhs.at(i) - corrected).abs() < 1e-3,
                "affinity violated: {} vs {}", lhs.at(i), corrected);
        }
    }

    #[test]
    fn mse_is_nonnegative_and_zero_iff_equal(v in proptest::collection::vec(-3.0f32..3.0, 1..20)) {
        let t = Tensor::from_vec(v.clone(), &[v.len()]);
        prop_assert!(mse_loss(&t, &v).item().abs() < 1e-10);
        let shifted: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
        prop_assert!(mse_loss(&t, &shifted).item() > 0.5);
    }

    #[test]
    fn supcon_is_permutation_invariant(seed in 0u64..200) {
        let z = init::normal(&[6, 4], 1.0, &mut seeded_rng(seed));
        let labels = [0usize, 0, 1, 1, 2, 2];
        let base = supcon_loss(&z, &labels, 0.1).item();
        // swap rows 0 and 2 (and their labels)
        let d = z.to_vec();
        let mut swapped = d.clone();
        swapped[0..4].copy_from_slice(&d[8..12]);
        swapped[8..12].copy_from_slice(&d[0..4]);
        let z2 = Tensor::from_vec(swapped, &[6, 4]);
        let labels2 = [1usize, 0, 0, 1, 2, 2];
        let permuted = supcon_loss(&z2, &labels2, 0.1).item();
        prop_assert!((base - permuted).abs() < 1e-4, "{base} vs {permuted}");
    }

    #[test]
    fn supcon_scale_invariant_after_normalisation(seed in 0u64..200, c in 0.5f32..4.0) {
        // rows are L2-normalised inside, so rescaling inputs is a no-op
        let z = init::normal(&[4, 8], 1.0, &mut seeded_rng(seed));
        let labels = [0usize, 0, 1, 1];
        let a = supcon_loss(&z, &labels, 0.07).item();
        let b = supcon_loss(&z.scale(c), &labels, 0.07).item();
        prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn sgd_step_moves_against_gradient(seed in 0u64..200) {
        let x = init::normal(&[4], 1.0, &mut seeded_rng(seed)).requires_grad();
        let before = x.to_vec();
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        x.square().sum_all().backward();
        let grad = x.grad_vec().unwrap();
        opt.step();
        let after = x.to_vec();
        for ((b, a), g) in before.iter().zip(&after).zip(&grad) {
            prop_assert!(((b - a) - 0.1 * g).abs() < 1e-5);
        }
    }

    #[test]
    fn adadelta_first_steps_are_bounded(seed in 0u64..200) {
        // Adadelta's update magnitude is bounded by lr·√(ε)/√((1-ρ)g²+ε)·g,
        // small at the start — no explosive first step regardless of scale.
        let x = init::normal(&[4], 100.0, &mut seeded_rng(seed)).requires_grad();
        let before = x.to_vec();
        let mut opt = Adadelta::new(vec![x.clone()], 1.0, 0.95);
        x.square().sum_all().backward();
        opt.step();
        for (b, a) in before.iter().zip(x.to_vec()) {
            prop_assert!((b - a).abs() < 1.0, "first step too large: {b} → {a}");
        }
    }

    #[test]
    fn textcnn_batch_rows_are_independent(seed in 0u64..100) {
        // encoding the same document alone or in a batch yields the same
        // features; max-over-time depends only on the document itself
        let mut rng = seeded_rng(seed);
        let cnn = TextCnn::new(3, &[2, 3], 4, &mut rng);
        let doc = init::normal(&[1, 6, 3], 1.0, &mut rng);
        let other = init::normal(&[1, 6, 3], 1.0, &mut rng);
        let solo = cnn.forward(&doc);
        let mut batch_data = doc.to_vec();
        batch_data.extend(other.to_vec());
        let batch = cnn.forward(&Tensor::from_vec(batch_data, &[2, 6, 3]));
        for i in 0..solo.numel() {
            prop_assert!((solo.at(i) - batch.at(i)).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_gradients_flow_for_any_depth(depth in 1usize..4, seed in 0u64..100) {
        let mut rng = seeded_rng(seed);
        let mut widths = vec![4usize];
        widths.extend(std::iter::repeat_n(6usize, depth));
        widths.push(2);
        let mlp = Mlp::new(&widths, 0.0, &mut rng);
        let x = init::normal(&[3, 4], 1.0, &mut rng);
        mlp.forward(&x, true, &mut rng).square().mean_all().backward();
        for p in mlp.params() {
            prop_assert!(p.grad_vec().is_some());
        }
    }
}
