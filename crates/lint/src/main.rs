//! `om-lint` binary: lint the workspace, exit non-zero on violations.
//!
//! Usage:
//!   `cargo lint` (alias) / `cargo run -p om-lint -- [ROOT]` — run every pass;
//!   `cargo lint -- --env-table` — print the registry's markdown table
//!   (paste between README's `om-env-table` markers);
//!   `cargo lint -- --env-table --check` — fail if README's embedded
//!   table has drifted from the registry (the CI drift gate).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/lint/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("om-lint manifest has a workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env_table = args.iter().any(|a| a == "--env-table");
    let check = args.iter().any(|a| a == "--check");
    let root = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);

    if env_table {
        if !check {
            print!("{}", om_lint::env_registry::render_table());
            return ExitCode::SUCCESS;
        }
        let readme = match std::fs::read_to_string(root.join("README.md")) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("om-lint: cannot read README.md under {}: {err}", root.display());
                return ExitCode::FAILURE;
            }
        };
        return match om_lint::env_registry::check_readme(&readme) {
            Ok(()) => {
                println!("om-lint: README env-var table matches the registry");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("om-lint: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let report = om_lint::lint_repo(&root);
    if report.violations.is_empty() {
        println!("om-lint: clean ({} files checked)", report.files);
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "om-lint: {} violation(s) in {} files checked",
            report.violations.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}
