//! Top-K ranking evaluation of the trained model — the extension protocol
//! built on `om_metrics::ranking`.

use omnimatch::core::{OmniMatchConfig, Trainer};
use omnimatch::data::types::ItemId;
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};
use omnimatch::metrics::{hit_rate_at_k, ndcg_at_k, RankedList};

#[test]
fn ranked_lists_from_trained_model() {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast()).fit(&scenario);

    let candidates: Vec<ItemId> = scenario.target_train.items().collect();
    let mut lists = Vec::new();
    for &user in scenario.test_users.iter().take(5) {
        // relevant = items the user actually rated ≥ 4 in the hidden truth
        let relevant: std::collections::HashSet<ItemId> = scenario
            .target_full
            .user_records(user)
            .filter(|it| it.rating.stars() >= 4)
            .map(|it| it.item)
            .collect();
        if relevant.is_empty() {
            continue;
        }
        let ranked = trained.rank_items(user, &candidates);
        assert_eq!(ranked.len(), candidates.len());
        // ranking is by descending score
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        lists.push(RankedList::new(
            ranked
                .iter()
                .map(|&(item, score)| (score, relevant.contains(&item)))
                .collect(),
        ));
    }
    assert!(!lists.is_empty(), "no test user had relevant items");
    let hr = hit_rate_at_k(&lists, 10);
    let ndcg = ndcg_at_k(&lists, 10);
    assert!((0.0..=1.0).contains(&hr));
    assert!((0.0..=1.0).contains(&ndcg));
}
