//! Multi-layer perceptron with ReLU activations and optional dropout — the
//! `MLP(·)` used for the projection head (Eq. 11), domain classifiers
//! (Eqs. 14/16) and rating classifier (Eq. 18).

use om_tensor::{Rng, Tensor};

use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::module::HasParams;

/// A stack of dense layers; ReLU between layers, linear final output,
/// dropout after every hidden activation (the paper applies dropout after
/// each linear layer, §5.4).
pub struct Mlp {
    layers: Vec<Linear>,
    dropout: Dropout,
}

impl Mlp {
    /// Build from a width spec `[in, h1, ..., out]` (at least two entries).
    pub fn new(widths: &[usize], dropout_rate: f32, rng: &mut Rng) -> Mlp {
        assert!(widths.len() >= 2, "Mlp: need at least [in, out] widths");
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            dropout: Dropout::new(dropout_rate),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass; `training` toggles dropout.
    pub fn forward(&self, x: &Tensor, training: bool, rng: &mut Rng) -> Tensor {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i < last {
                h = self.dropout.forward(&h.relu(), training, rng);
            }
        }
        h
    }
}

impl HasParams for Mlp {
    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn shapes_through_stack() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&[8, 16, 4], 0.0, &mut rng);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 4);
        let y = mlp.forward(&Tensor::zeros(&[3, 8]), false, &mut rng);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn single_layer_is_affine() {
        let mut rng = seeded_rng(2);
        let mlp = Mlp::new(&[2, 2], 0.0, &mut rng);
        // negative outputs must survive (no ReLU on the final layer)
        mlp.layers[0].weight.data_mut().copy_from_slice(&[-1.0, 0.0, 0.0, -1.0]);
        mlp.layers[0].bias.data_mut().fill(0.0);
        let y = mlp.forward(&Tensor::ones(&[1, 2]), false, &mut rng);
        assert_eq!(y.to_vec(), vec![-1.0, -1.0]);
    }

    #[test]
    fn all_layers_receive_gradients() {
        let mut rng = seeded_rng(3);
        let mlp = Mlp::new(&[4, 8, 8, 2], 0.0, &mut rng);
        let x = om_tensor::init::normal(&[5, 4], 1.0, &mut rng);
        mlp.forward(&x, true, &mut rng).square().mean_all().backward();
        for p in mlp.params() {
            assert!(p.grad_vec().is_some());
        }
    }

    #[test]
    fn dropout_only_in_training() {
        let mut rng = seeded_rng(4);
        let mlp = Mlp::new(&[4, 64, 2], 0.9, &mut rng);
        let x = Tensor::ones(&[1, 4]);
        let a = mlp.forward(&x, false, &mut seeded_rng(5)).to_vec();
        let b = mlp.forward(&x, false, &mut seeded_rng(6)).to_vec();
        assert_eq!(a, b); // eval is deterministic regardless of rng
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_widths_panics() {
        let _ = Mlp::new(&[4], 0.0, &mut seeded_rng(1));
    }
}
