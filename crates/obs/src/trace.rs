//! Span tracer with per-thread buffers.
//!
//! Each thread that records a span registers one buffer (an
//! `Arc<Mutex<Vec<SpanRec>>>`) in a global registry; span pushes lock only
//! the recording thread's own buffer, so the mutex is uncontended except
//! during a flush — "lock-free enough" that a span costs two clock reads
//! and one uncontended lock, and *nothing* synchronises with other worker
//! threads' hot paths. Per-thread busy time (the worker-pool utilisation
//! counter) is a plain thread-local `Cell` mirrored into the registry slot.
//!
//! Thread ids (`tid`) are dense registration indices — stable within a
//! process, meaningful across the whole trace, and joined with the OS
//! thread name (`om-worker-3`, `main`, …) in the sink output.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock;

/// One completed span: a named interval on one thread.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Static span name (e.g. `"runtime.parallel_for"`).
    pub name: &'static str,
    /// Start, ns since the process anchor.
    pub t0_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

/// A drained thread's spans plus its accumulated busy time.
#[derive(Debug)]
pub struct ThreadSpans {
    /// Dense registration index.
    pub tid: usize,
    /// OS thread name at registration ("?" when unnamed).
    pub label: String,
    /// Spans recorded since the last drain, in completion order.
    pub spans: Vec<SpanRec>,
    /// Busy nanoseconds accumulated via [`busy_add`] since the last drain.
    pub busy_ns: u64,
}

struct ThreadBuf {
    tid: usize,
    label: String,
    spans: Mutex<Vec<SpanRec>>,
    busy_ns: AtomicU64,
}

static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Cell<Option<&'static Arc<ThreadBuf>>> = const { Cell::new(None) };
}

/// This thread's buffer, registering it on first use. The `&'static Arc`
/// is leaked intentionally: one small allocation per thread, alive for the
/// process lifetime, keeps the hot path free of `Arc` refcount traffic.
fn local() -> &'static Arc<ThreadBuf> {
    LOCAL.with(|slot| {
        if let Some(buf) = slot.get() {
            return buf;
        }
        let label = std::thread::current()
            .name()
            .unwrap_or("?")
            .to_string();
        let mut reg = registry().lock().unwrap();
        let buf = Arc::new(ThreadBuf {
            tid: reg.len(),
            label,
            spans: Mutex::new(Vec::new()),
            busy_ns: AtomicU64::new(0),
        });
        reg.push(Arc::clone(&buf));
        drop(reg);
        let leaked: &'static Arc<ThreadBuf> = Box::leak(Box::new(buf));
        slot.set(Some(leaked));
        leaked
    })
}

/// RAII span guard: records the interval from construction to drop into
/// the current thread's buffer. Inert (no clock read, no record) when
/// observability is disabled at construction time.
pub struct Span {
    name: &'static str,
    t0_ns: u64,
    active: bool,
}

impl Span {
    /// An inert span that records nothing — for call sites that gate on
    /// their own condition (e.g. "only trace large GEMMs").
    pub const fn none() -> Span {
        Span {
            name: "",
            t0_ns: 0,
            active: false,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = clock::now_ns().saturating_sub(self.t0_ns);
        let mut spans = local().spans.lock().unwrap();
        spans.push(SpanRec {
            name: self.name,
            t0_ns: self.t0_ns,
            dur_ns,
        });
    }
}

/// Open a span; it closes (and records) when the returned guard drops.
/// Costs one relaxed atomic load when observability is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::none();
    }
    Span {
        name,
        t0_ns: clock::now_ns(),
        active: true,
    }
}

/// Open a span only when `cond` also holds (e.g. size thresholds on hot
/// kernels); otherwise an inert guard.
#[inline]
pub fn span_if(cond: bool, name: &'static str) -> Span {
    if cond {
        span(name)
    } else {
        Span::none()
    }
}

/// Accumulate busy nanoseconds for the calling thread (the worker-pool
/// utilisation metric). No-op when disabled.
#[inline]
pub fn busy_add(ns: u64) {
    if !crate::enabled() {
        return;
    }
    local().busy_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Drain every thread's spans and busy counters. Buffers stay registered
/// (worker threads are persistent); their contents are moved out so the
/// next run starts clean. Threads with nothing recorded are skipped.
pub fn drain() -> Vec<ThreadSpans> {
    let reg = registry().lock().unwrap();
    let mut out = Vec::new();
    for buf in reg.iter() {
        let spans = std::mem::take(&mut *buf.spans.lock().unwrap());
        let busy_ns = buf.busy_ns.swap(0, Ordering::Relaxed);
        if spans.is_empty() && busy_ns == 0 {
            continue;
        }
        out.push(ThreadSpans {
            tid: buf.tid,
            label: buf.label.clone(),
            spans,
            busy_ns,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_when_enabled_only() {
        let _g = crate::test_lock();
        let prev = crate::set_enabled(false);
        drop(span("off"));
        crate::set_enabled(true);
        {
            let _s = span("on");
        }
        busy_add(42);
        crate::set_enabled(prev);
        let drained = drain();
        let mine: Vec<_> = drained
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| s.name == "on" || s.name == "off")
            .collect();
        assert_eq!(mine.len(), 1, "{mine:?}");
        assert_eq!(mine[0].name, "on");
    }

    #[test]
    fn none_span_is_inert() {
        let s = Span::none();
        drop(s); // must not touch the registry
    }
}
