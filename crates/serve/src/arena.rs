//! Offline representation precompute: contiguous embedding arenas.
//!
//! The towers are the expensive half of scoring (TextCNN over a review
//! document per entity); the rating head is a small MLP over concatenated
//! features. Serving therefore encodes every target-domain item — and
//! every warm user — **once**, into row-major `[n, dim]` f32 arenas, and
//! a request only runs the user tower when its user is cold (or not even
//! that, for warm users).
//!
//! Determinism: every forward here runs under [`om_nn::inference_mode`]
//! (no tape, no dropout, nothing drawn from the RNG), and every kernel in
//! the tower is row-independent with a fixed per-element reduction order,
//! so arena rows are bitwise identical no matter how the precompute was
//! batched — and bitwise identical to a tower run at request time. Tests
//! assert both.

use std::collections::BTreeMap;

use om_data::types::{ItemId, UserId};
use om_tensor::seeded_rng;
use omnimatch_core::model::DomainSide;
use omnimatch_core::{CorpusViews, OmniMatchModel};

/// Every target-domain item's features, `[len, dim]` row-major.
pub struct ItemArena {
    ids: Vec<ItemId>,
    index: BTreeMap<ItemId, usize>,
    data: Vec<f32>,
    dim: usize,
}

impl ItemArena {
    /// Encode all items of `views` (dense-index order) in batches of
    /// `batch` documents. The batch size is a throughput knob only; it
    /// cannot affect any bit of the result.
    pub fn build(model: &OmniMatchModel, views: &CorpusViews, batch: usize) -> ItemArena {
        let _mode = om_nn::inference_mode();
        let ids = views.items();
        let dim = model.config().item_dim;
        let mut data = Vec::with_capacity(ids.len() * dim);
        // Never drawn from under inference mode; the signature demands one.
        let mut rng = seeded_rng(0);
        for chunk in ids.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&i| views.item_doc(i)).collect();
            let feats = model.item_features(&docs, false, &mut rng);
            data.extend_from_slice(&feats.data());
        }
        let index = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        ItemArena { ids, index, data, dim }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous `[len, dim]` feature block — the right-hand side of
    /// the serving cross join.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Item at arena row `i`.
    pub fn id_at(&self, i: usize) -> ItemId {
        self.ids[i]
    }

    /// Arena row of `item`, if present.
    pub fn row_of(&self, item: ItemId) -> Option<usize> {
        self.index.get(&item).copied()
    }
}

/// Warm users' combined target-side features, `[len, dim]` row-major.
/// Cold users are deliberately absent: their tower runs at request time
/// over the auxiliary document (that tower pass *is* the cold-start
/// inference the paper describes).
pub struct UserArena {
    index: BTreeMap<UserId, usize>,
    data: Vec<f32>,
    dim: usize,
}

impl UserArena {
    /// Encode `warm` users' target documents in batches of `batch`.
    /// Unknown users are skipped (they cannot be encoded without a
    /// document); duplicates collapse to one row.
    pub fn build(
        model: &OmniMatchModel,
        views: &CorpusViews,
        warm: &[UserId],
        batch: usize,
    ) -> UserArena {
        let _mode = om_nn::inference_mode();
        let cfg = model.config();
        let dim = cfg.invariant_dim + cfg.specific_dim;
        let known: Vec<UserId> = {
            let mut seen = BTreeMap::new();
            for &u in warm {
                if views.user_idx(u).is_some() {
                    seen.entry(u).or_insert(());
                }
            }
            seen.into_keys().collect()
        };
        let mut data = Vec::with_capacity(known.len() * dim);
        let mut rng = seeded_rng(0);
        for chunk in known.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&u| views.target_doc(u)).collect();
            let feats = model.user_features(&docs, DomainSide::Target, false, &mut rng);
            data.extend_from_slice(&feats.combined.data());
        }
        let index = known.into_iter().enumerate().map(|(i, u)| (u, i)).collect();
        UserArena { index, data, dim }
    }

    /// Number of warm users held.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The cached combined features of `user`, if warm.
    pub fn row(&self, user: UserId) -> Option<&[f32]> {
        self.index
            .get(&user)
            .map(|&i| &self.data[i * self.dim..(i + 1) * self.dim])
    }
}
