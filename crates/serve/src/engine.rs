//! The batched scoring engine.
//!
//! A flush of `B` requests against an arena of `N` items runs:
//!
//! 1. user rows — arena lookups for warm users, one *batched* tower pass
//!    for the cold ones (their auxiliary target documents);
//! 2. `om_tensor::kernels::pair_rows` — the `[B·N, user_dim + item_dim]`
//!    cross join, assembled in parallel;
//! 3. one rating-classifier forward over all `B·N` pairs (the "one GEMM
//!    against the item arena"), then per-row expected stars;
//! 4. per-request sharded top-K via `om_metrics::topk` — the selection
//!    code path the offline eval tables share.
//!
//! Bitwise determinism: every step is per-row independent (the GEMM fixes
//! its reduction order per output element regardless of how many rows the
//! batch has), `concat`/`pair_rows` only copy, and top-K uses a strict
//! total order. Hence `serve_batch([a, b, c])` equals
//! `[serve_one(a), serve_one(b), serve_one(c)]` bit for bit, at any
//! thread count — property-tested in `tests/batching_parity.rs`.

use om_data::types::{ItemId, UserId};
use om_tensor::{kernels, seeded_rng, Tensor};
use omnimatch_core::model::DomainSide;
use omnimatch_core::{CorpusViews, OmniMatchModel};

use crate::arena::{ItemArena, UserArena};
use crate::error::ServeError;

/// Engine knobs; [`ServeOptions::from_env`] reads the `OM_SERVE_*`
/// variables documented in the README.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Microbatch flush size (`OM_SERVE_BATCH`, default 8).
    pub batch: usize,
    /// Max queueing delay before a partial batch flushes, in microseconds
    /// (`OM_SERVE_WAIT_US`, default 2000).
    pub wait_us: u64,
    /// Recommendations returned per request (`OM_SERVE_TOPK`, default 10).
    pub topk: usize,
    /// Document batch size for the offline arena precompute.
    pub arena_batch: usize,
    /// Item rows per shard for the sharded engine (`OM_SERVE_SHARD`,
    /// default 8192). Partitioning is a throughput/footprint knob only;
    /// it cannot affect any bit of the result.
    pub shard_items: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            batch: 8,
            wait_us: 2_000,
            topk: 10,
            arena_batch: 64,
            shard_items: 8_192,
        }
    }
}

impl ServeOptions {
    /// Defaults overridden by `OM_SERVE_BATCH` / `OM_SERVE_WAIT_US` /
    /// `OM_SERVE_TOPK`; unparsable values fall back to the default.
    pub fn from_env() -> ServeOptions {
        fn env_usize(key: &str, default: usize) -> usize {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        }
        let d = ServeOptions::default();
        ServeOptions {
            batch: env_usize("OM_SERVE_BATCH", d.batch),
            wait_us: env_usize("OM_SERVE_WAIT_US", d.wait_us as usize) as u64,
            topk: env_usize("OM_SERVE_TOPK", d.topk),
            arena_batch: d.arena_batch,
            shard_items: env_usize("OM_SERVE_SHARD", d.shard_items),
        }
    }
}

/// One scoring request: rank the catalogue for `user`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller's correlation id, echoed in the [`Response`].
    pub id: u64,
    /// The user to serve (warm or cold; must be a scenario user).
    pub user: UserId,
    /// Arrival time on the caller's clock, microseconds (drives the
    /// microbatcher's wait deadline; not used by scoring).
    pub arrive_us: u64,
}

/// Top-K recommendations for one request, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::user`].
    pub user: UserId,
    /// `(item, expected_stars)`, descending score, NaN-last, ties by
    /// arena order.
    pub top: Vec<(ItemId, f32)>,
}

/// A loaded model plus its precomputed arenas, ready to score.
pub struct ServeEngine {
    pub(crate) model: OmniMatchModel,
    pub(crate) views: CorpusViews,
    pub(crate) items: ItemArena,
    pub(crate) users: UserArena,
    pub(crate) opts: ServeOptions,
}

impl ServeEngine {
    /// Precompute the arenas and assemble the engine. `warm` lists users
    /// whose target-side features may be cached (typically the training
    /// users); everyone else runs the user tower per request — the
    /// cold-start path.
    pub fn new(
        model: OmniMatchModel,
        views: CorpusViews,
        warm: &[UserId],
        opts: ServeOptions,
    ) -> ServeEngine {
        let t0 = om_obs::clock::now_ns();
        let items = ItemArena::build(&model, &views, opts.arena_batch);
        let users = UserArena::build(&model, &views, warm, opts.arena_batch);
        om_obs::info!(
            "serve: arenas ready — {} items, {} warm users, {} ms",
            items.len(),
            users.len(),
            om_obs::clock::now_ns().saturating_sub(t0) / 1_000_000
        );
        om_obs::metrics::counter("serve.arena.items").add(items.len() as u64);
        om_obs::metrics::counter("serve.arena.warm_users").add(users.len() as u64);
        ServeEngine { model, views, items, users, opts }
    }

    /// Assemble an engine from pre-built arenas — the path the serving
    /// bench and the blob loader use, where arenas come from synthesis or
    /// a memory-mapped `OMAB` blob instead of a tower precompute. Users
    /// absent from `users` still run the cold tower through `views`.
    pub fn with_arenas(
        model: OmniMatchModel,
        views: CorpusViews,
        items: ItemArena,
        users: UserArena,
        opts: ServeOptions,
    ) -> ServeEngine {
        ServeEngine { model, views, items, users, opts }
    }

    /// The engine's options (the microbatcher is built from these).
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Number of items in the arena (the catalogue being ranked).
    pub fn catalogue_len(&self) -> usize {
        self.items.len()
    }

    /// Is this user served from the warm-user cache?
    pub fn is_warm(&self, user: UserId) -> bool {
        self.users.row(user).is_some()
    }

    /// Expected-star scores of `user` against the whole arena, in arena
    /// (dense item) order. Single-request path; [`ServeEngine::serve_batch`]
    /// produces bitwise-identical rows for any grouping.
    pub fn score_user(&self, user: UserId) -> Result<Vec<f32>, ServeError> {
        let req = [Request { id: 0, user, arrive_us: 0 }];
        self.score_batch(&req)?
            .pop()
            .ok_or(ServeError::ScoreShape { expected: 1, got: 0 })
    }

    /// Serve one request (unbatched path — used as the parity oracle).
    pub fn serve_one(&self, req: Request) -> Result<Response, ServeError> {
        let scores = self.score_user(req.user)?;
        Ok(self.respond(req, &scores))
    }

    /// Serve a microbatch: one fused forward, then per-request top-K.
    pub fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = om_obs::clock::now_ns();
        let rows = self.score_batch(reqs)?;
        let t_scored = om_obs::clock::now_ns();
        let out: Vec<Response> = reqs
            .iter()
            .zip(&rows)
            .map(|(&req, scores)| self.respond(req, scores))
            .collect();
        let t_merged = om_obs::clock::now_ns();
        om_obs::metrics::counter("serve.requests").add(reqs.len() as u64);
        om_obs::metrics::counter("serve.flushes").add(1);
        om_obs::metrics::histogram("serve.flush_ns").record(t_merged.saturating_sub(t0));
        // Stage attribution, into both planes (see frontend.rs docs):
        // score = the fused forward; merge = per-request top-K selection.
        let score_ns = t_scored.saturating_sub(t0);
        let merge_ns = t_merged.saturating_sub(t_scored);
        om_obs::metrics::histogram("serve.score").record(score_ns);
        om_obs::live::histogram("serve.score").record(score_ns);
        om_obs::metrics::histogram("serve.merge").record(merge_ns);
        om_obs::live::histogram("serve.merge").record(merge_ns);
        Ok(out)
    }

    /// Per-request combined user feature rows, `[reqs.len(), user_dim]`:
    /// warm → arena copy; cold → one batched tower pass. Shared with the
    /// sharded engine, which must assemble user rows identically for the
    /// bitwise-parity contract to hold.
    pub(crate) fn user_rows_for(&self, reqs: &[Request]) -> Vec<f32> {
        let user_dim = self.users.dim();
        let mut user_rows = vec![0.0f32; reqs.len() * user_dim];
        if user_dim == 0 {
            return user_rows;
        }
        let mut cold: Vec<(usize, UserId)> = Vec::new();
        for ((i, req), dst) in reqs
            .iter()
            .enumerate()
            .zip(user_rows.chunks_exact_mut(user_dim))
        {
            match self.users.row(req.user) {
                Some(row) => dst.copy_from_slice(row),
                None => cold.push((i, req.user)),
            }
        }
        if !cold.is_empty() {
            let docs: Vec<&[usize]> = cold
                .iter()
                .map(|&(_, user)| self.views.target_doc(user))
                .collect();
            // Inference mode: nothing is drawn from this RNG.
            let mut rng = seeded_rng(0);
            let feats = self
                .model
                .user_features(&docs, DomainSide::Target, false, &mut rng);
            let combined = feats.combined.data();
            for (&(i, _), src) in cold.iter().zip(combined.chunks_exact(user_dim)) {
                if let Some(dst) = user_rows.get_mut(i * user_dim..(i + 1) * user_dim) {
                    dst.copy_from_slice(src);
                }
            }
        }
        user_rows
    }

    /// Per-request score rows against the arena (arena order). Shared by
    /// the batched and unbatched paths, under inference mode throughout.
    fn score_batch(&self, reqs: &[Request]) -> Result<Vec<Vec<f32>>, ServeError> {
        let _mode = om_nn::inference_mode();
        if self.items.is_empty() {
            return Err(ServeError::EmptyArena);
        }
        let user_dim = self.users.dim();
        let n = self.items.len();

        // 1. User rows: warm → arena copy; cold → one batched tower pass.
        let user_rows = self.user_rows_for(reqs);

        // 2–3. Cross join + one rating-head forward over all B·N pairs.
        let pair_dim = user_dim + self.items.dim();
        let pairs = kernels::pair_rows(&user_rows, self.items.data(), user_dim, self.items.dim());
        let pairs = Tensor::from_vec(pairs, &[reqs.len() * n, pair_dim]);
        let mut rng = seeded_rng(0);
        let logits = self.model.rating_logits_from_pairs(&pairs, false, &mut rng);
        let stars = OmniMatchModel::expected_stars(&logits);
        if stars.len() != reqs.len() * n {
            return Err(ServeError::ScoreShape {
                expected: reqs.len() * n,
                got: stars.len(),
            });
        }
        Ok(stars.chunks(n).map(|row| row.to_vec()).collect())
    }

    /// Sharded top-K over one score row → a [`Response`].
    fn respond(&self, req: Request, scores: &[f32]) -> Response {
        let top = om_metrics::top_k_indices(scores, self.opts.topk)
            .into_iter()
            .filter_map(|i| scores.get(i).map(|&s| (self.items.id_at(i), s)))
            .collect();
        Response { id: req.id, user: req.user, top }
    }

    /// Naive oracle for tests/smoke: score, then *full* stable sort by
    /// `cmp_nan_last_desc` — the pre-topk code path. The engine's sharded
    /// selection must reproduce its prefix exactly.
    pub fn oracle_rank(&self, user: UserId) -> Result<Vec<(ItemId, f32)>, ServeError> {
        let scores = self.score_user(user)?;
        let mut ranked: Vec<(ItemId, f32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (self.items.id_at(i), s))
            .collect();
        ranked.sort_by(|a, b| om_metrics::cmp_nan_last_desc(a.1, b.1));
        Ok(ranked)
    }
}
