//! HeroGraph — a heterogeneous cross-domain graph (Cui et al. 2020): one
//! shared graph over all users and the items of *both* domains. Cold-start
//! users keep their source-domain edges, so propagation reaches them with
//! personalised signal — which is why HeroGraph is consistently the
//! strongest baseline in the paper's tables. The original's attention
//! weighting is simplified to symmetric degree normalisation (DESIGN.md).

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_tensor::seeded_rng;

use crate::cmf::tag_item;
use crate::graph::{BipartiteGraph, GraphCF, Propagation};
use crate::{clamp_stars, Recommender, CMF};

/// Trained HeroGraph model.
pub struct HeroGraph {
    model: GraphCF,
}

impl HeroGraph {
    /// Build the shared cross-domain graph and train embeddings on the
    /// union of source ratings and training-visible target ratings.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> HeroGraph {
        let tagged: Vec<Interaction> = scenario
            .source
            .interactions()
            .iter()
            .map(|it| {
                let mut t = it.clone();
                t.item = tag_item(it.item, CMF::SOURCE);
                t
            })
            .chain(scenario.target_train.interactions().iter().map(|it| {
                let mut t = it.clone();
                t.item = tag_item(it.item, CMF::TARGET);
                t
            }))
            .collect();
        let refs: Vec<&Interaction> = tagged.iter().collect();
        let graph = BipartiteGraph::build(&refs);
        let mut rng = seeded_rng(seed);
        let mut model = GraphCF::new(graph, 16, 3, Propagation::Light, &mut rng);
        model.fit_regularized(120, 0.03, 0.3);
        HeroGraph { model }
    }
}

impl Recommender for HeroGraph {
    fn name(&self) -> &'static str {
        "HeroGraph"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        clamp_stars(self.model.predict(user, tag_item(item, CMF::TARGET)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    fn scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn cold_users_are_in_the_shared_graph() {
        // HeroGraph's defining property: cold users get *personalised*
        // predictions through their source edges.
        let sc = scenario();
        let m = HeroGraph::fit(&sc, 1);
        let item = sc.target_train.items().next().unwrap();
        let preds: Vec<f32> = sc
            .test_users
            .iter()
            .map(|&u| m.predict(u, item))
            .collect();
        let distinct = preds.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-4);
        assert!(distinct, "cold predictions all identical: {preds:?}");
    }

    #[test]
    fn evaluation_is_finite() {
        let sc = scenario();
        let m = HeroGraph::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn deterministic() {
        let sc = scenario();
        let a = HeroGraph::fit(&sc, 5);
        let b = HeroGraph::fit(&sc, 5);
        let it = sc.test_pairs()[0];
        assert_eq!(a.predict(it.user, it.item), b.predict(it.user, it.item));
    }
}
