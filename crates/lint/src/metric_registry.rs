//! The central registry of every metric name the workspace emits, and
//! the pass that keeps it honest — the metric twin of
//! [`crate::env_registry`].
//!
//! Scope: the namespaced families `serve.*`, `train.*` and `load.*` —
//! the names that cross module boundaries into `events.jsonl`,
//! `/metrics` scrapes and run manifests, where a silent rename breaks
//! dashboards and baselines. (Kernel-internal series like `gemm.*` /
//! `runtime.*` stay local to their crate and out of scope.) Every such
//! name is declared here once — name, kind, emitting crate, one-line doc.
//!
//! The pass scans every string literal in the tree: a literal that *is*
//! a metric name in a scoped family but is not declared fails the lint
//! (no undocumented series), and a declared name with no remaining
//! emission site fails too (no zombie docs). Matching whole literals —
//! rather than `counter(...)` call shapes — catches indirect emission
//! through helpers, both metric planes ([`om_obs::metrics`] and
//! [`om_obs::live`]), manifest keys and health-probe names alike.
//!
//! `cargo lint -- --metric-table` renders the registry as the markdown
//! table README embeds between `<!-- om-metric-table:begin -->` /
//! `<!-- om-metric-table:end -->`; `--metric-table --check` diffs the
//! rendered table against that block so CI fails when they diverge.
//!
//! `crates/lint` itself is out of scope of the scan: this file *is* the
//! registry, and lint fixtures legitimately spell fake names.

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, TokenKind};
use crate::passes::Violation;

/// One declared metric name.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// Full dotted name (`serve.*`, `train.*` or `load.*`).
    pub name: &'static str,
    /// What it is: `counter`, `gauge`, `histogram`, `manifest` (a run
    /// manifest key) or `health` (a `/healthz` probe name).
    pub kind: &'static str,
    /// The crate that emits it.
    pub emitter: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// Every scoped metric name the workspace emits, alphabetical.
pub const REGISTRY: &[Metric] = &[
    Metric {
        name: "load.request_latency_ns",
        kind: "histogram",
        emitter: "om-bench",
        doc: "end-to-end request latency under the Zipfian load harness",
    },
    Metric {
        name: "serve.arena.items",
        kind: "counter",
        emitter: "om-serve",
        doc: "items encoded into the item arena at engine build",
    },
    Metric {
        name: "serve.arena.warm_users",
        kind: "counter",
        emitter: "om-serve",
        doc: "warm users cached in the user arena at engine build",
    },
    Metric {
        name: "serve.batch_wait",
        kind: "histogram",
        emitter: "om-serve",
        doc: "ns from worker dequeue to microbatch close, per request",
    },
    Metric {
        name: "serve.blob.opens",
        kind: "counter",
        emitter: "om-serve",
        doc: "OMAB arena blobs opened and verified",
    },
    Metric {
        name: "serve.catalogue",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "catalogue size recorded by the serving smoke",
    },
    Metric {
        name: "serve.e2e",
        kind: "histogram",
        emitter: "om-serve",
        doc: "ns from admission to reply, per request (the front-end total)",
    },
    Metric {
        name: "serve.flush_ns",
        kind: "histogram",
        emitter: "om-serve",
        doc: "wall time of one single-arena engine flush",
    },
    Metric {
        name: "serve.flushes",
        kind: "counter",
        emitter: "om-serve",
        doc: "microbatch flushes through the single-arena engine",
    },
    Metric {
        name: "serve.frontend.admitted",
        kind: "counter",
        emitter: "om-serve",
        doc: "requests accepted past the admission gate",
    },
    Metric {
        name: "serve.frontend.flushes",
        kind: "counter",
        emitter: "om-serve",
        doc: "microbatch flushes executed by the front-end worker",
    },
    Metric {
        name: "serve.frontend.in_flight",
        kind: "gauge",
        emitter: "om-serve",
        doc: "accepted requests not yet replied to",
    },
    Metric {
        name: "serve.frontend.interactions",
        kind: "counter",
        emitter: "om-serve",
        doc: "streamed interactions accepted through submit_interaction",
    },
    Metric {
        name: "serve.frontend.queue_depth",
        kind: "gauge",
        emitter: "om-serve",
        doc: "requests currently in the bounded queue",
    },
    Metric {
        name: "serve.frontend.queue_hwm",
        kind: "gauge",
        emitter: "om-serve",
        doc: "high-water mark of the bounded queue depth",
    },
    Metric {
        name: "serve.frontend.rejected",
        kind: "counter",
        emitter: "om-serve",
        doc: "submits shed by admission control (queue full)",
    },
    Metric {
        name: "serve.frontend.rejected_shutdown",
        kind: "counter",
        emitter: "om-serve",
        doc: "submits rejected because the front-end was shut (or shutting) down",
    },
    Metric {
        name: "serve.frontend.scorer_errors",
        kind: "counter",
        emitter: "om-serve",
        doc: "flushes whose scorer returned an error",
    },
    Metric {
        name: "serve.frontend.served",
        kind: "counter",
        emitter: "om-serve",
        doc: "requests scored and replied to by the front-end",
    },
    Metric {
        name: "serve.graduations",
        kind: "counter",
        emitter: "om-serve",
        doc: "users graduated cold→warm by crossing OM_SERVE_WARM_AFTER interactions",
    },
    Metric {
        name: "serve.merge",
        kind: "histogram",
        emitter: "om-serve",
        doc: "ns of the per-request top-K merge inside one flush",
    },
    Metric {
        name: "serve.mmap.maps",
        kind: "counter",
        emitter: "om-serve",
        doc: "arena blobs memory-mapped",
    },
    Metric {
        name: "serve.online_ok",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "the online-graduation smoke completed all its checks",
    },
    Metric {
        name: "serve.quant.mae",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "mean absolute quantized-vs-f32 score delta in the quantized serving smoke",
    },
    Metric {
        name: "serve.quant.rmse",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "RMSE of quantized vs f32 scores in the quantized serving smoke",
    },
    Metric {
        name: "serve.queue_room",
        kind: "health",
        emitter: "om-serve",
        doc: "readiness probe: the bounded queue is below capacity",
    },
    Metric {
        name: "serve.queue_wait",
        kind: "histogram",
        emitter: "om-serve",
        doc: "ns from admission to worker dequeue, per request",
    },
    Metric {
        name: "serve.request_latency_ns",
        kind: "histogram",
        emitter: "om-bench",
        doc: "closed-loop request latency in the serving bench",
    },
    Metric {
        name: "serve.requests",
        kind: "counter",
        emitter: "om-serve",
        doc: "requests scored by the single-arena engine",
    },
    Metric {
        name: "serve.score",
        kind: "histogram",
        emitter: "om-serve",
        doc: "ns of the fused scoring forward inside one flush",
    },
    Metric {
        name: "serve.scorer_ready",
        kind: "health",
        emitter: "om-serve",
        doc: "readiness probe: scorer factory finished (model loaded, arena mapped)",
    },
    Metric {
        name: "serve.shard.flush_ns",
        kind: "histogram",
        emitter: "om-serve",
        doc: "wall time of one sharded-engine flush",
    },
    Metric {
        name: "serve.shard.flushes",
        kind: "counter",
        emitter: "om-serve",
        doc: "microbatch flushes through the sharded engine",
    },
    Metric {
        name: "serve.shard.requests",
        kind: "counter",
        emitter: "om-serve",
        doc: "requests scored by the sharded engine",
    },
    Metric {
        name: "serve.smoke_ok",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "the serving smoke completed all its checks",
    },
    Metric {
        name: "serve.update.errors",
        kind: "counter",
        emitter: "om-serve",
        doc: "online updates refused (the old generation kept serving)",
    },
    Metric {
        name: "serve.update.events",
        kind: "counter",
        emitter: "om-serve",
        doc: "streamed interactions ingested by the engines",
    },
    Metric {
        name: "serve.update.generation",
        kind: "gauge",
        emitter: "om-serve",
        doc: "currently published user-arena generation number",
    },
    Metric {
        name: "serve.update.swaps",
        kind: "counter",
        emitter: "om-serve",
        doc: "user-arena generations hot-swapped in by online updates",
    },
    Metric {
        name: "serve.users",
        kind: "manifest",
        emitter: "om-experiments",
        doc: "scenario users recorded by the serving smoke",
    },
    Metric {
        name: "serve.worker_alive",
        kind: "health",
        emitter: "om-serve",
        doc: "readiness probe: the front-end worker thread is running",
    },
    Metric {
        name: "train.best_epoch",
        kind: "manifest",
        emitter: "omnimatch-core",
        doc: "best validation epoch of a fit",
    },
    Metric {
        name: "train.samples",
        kind: "manifest",
        emitter: "omnimatch-core",
        doc: "training samples consumed by a fit",
    },
    Metric {
        name: "train.seconds",
        kind: "manifest",
        emitter: "omnimatch-core",
        doc: "wall-clock seconds of a fit",
    },
];

/// Whether `name` is declared.
pub fn declared(name: &str) -> bool {
    REGISTRY.iter().any(|m| m.name == name)
}

/// The metric name a string literal spells, if any: the *whole* literal
/// must be a dotted lowercase name in a scoped family (so prose like
/// `"serve: arenas ready"` or error text never matches).
fn metric_name(literal: &str) -> Option<&str> {
    let scoped = ["serve.", "train.", "load."]
        .iter()
        .any(|fam| literal.starts_with(fam));
    if !scoped || literal.ends_with('.') || literal.contains("..") {
        return None;
    }
    literal
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        .then_some(literal)
}

/// Scan one file's string literals: record declared-name usages into
/// `used`, flag undeclared names. `crates/lint/` is exempt (see module
/// docs).
pub fn scan_file(rel: &str, lexed: &LexedFile, used: &mut BTreeSet<String>) -> Vec<Violation> {
    if rel.starts_with("crates/lint/") {
        return Vec::new();
    }
    let mut v = Vec::new();
    for t in &lexed.tokens {
        let TokenKind::Str(s) = &t.kind else {
            continue;
        };
        let Some(name) = metric_name(s) else {
            continue;
        };
        if declared(name) {
            used.insert(name.to_string());
        } else {
            v.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: "metric-registry",
                msg: format!(
                    "undeclared metric name `{name}`: declare it in \
                     `om_lint::metric_registry::REGISTRY` (name, kind, emitter, doc) \
                     so `cargo lint -- --metric-table` documents it"
                ),
            });
        }
    }
    v
}

/// Registry entries no file emits any more.
pub fn check_stale(used: &BTreeSet<String>) -> Vec<Violation> {
    REGISTRY
        .iter()
        .filter(|m| !used.contains(m.name))
        .map(|m| Violation {
            file: "crates/lint/src/metric_registry.rs".to_string(),
            line: 1,
            rule: "metric-registry",
            msg: format!(
                "registry entry `{}` has no remaining emission site in the tree: remove \
                 the entry (and its README table row via `cargo lint -- --metric-table`)",
                m.name
            ),
        })
        .collect()
}

/// Render the registry as the markdown table README embeds.
pub fn render_table() -> String {
    let mut out = String::from("| metric | kind | emitter | description |\n|---|---|---|---|\n");
    for m in REGISTRY {
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} |\n",
            m.name, m.kind, m.emitter, m.doc
        ));
    }
    out
}

/// The README block between the `om-metric-table` markers, if present.
pub fn readme_table_block(readme: &str) -> Option<String> {
    let mut lines = readme.lines();
    lines.by_ref().find(|l| l.contains("om-metric-table:begin"))?;
    let mut block = String::new();
    for l in lines {
        if l.contains("om-metric-table:end") {
            return Some(block);
        }
        block.push_str(l);
        block.push('\n');
    }
    None
}

/// Check README's embedded table against the registry. `Ok(())` when they
/// match; `Err` explains the drift.
pub fn check_readme(readme: &str) -> Result<(), String> {
    let Some(block) = readme_table_block(readme) else {
        return Err(
            "README.md has no `<!-- om-metric-table:begin -->` / `<!-- om-metric-table:end -->` \
             block to hold the generated table"
                .to_string(),
        );
    };
    let rendered = render_table();
    if block.trim() == rendered.trim() {
        Ok(())
    } else {
        Err(format!(
            "README.md metric table has drifted from the registry.\n\
             Regenerate it: `cargo lint -- --metric-table` and paste between the markers.\n\
             --- registry renders ---\n{rendered}\
             --- README contains ---\n{block}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names: Vec<&str> = REGISTRY.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "REGISTRY must stay alphabetical and unique");
    }

    #[test]
    fn kinds_are_from_the_known_set() {
        for m in REGISTRY {
            assert!(
                matches!(m.kind, "counter" | "gauge" | "histogram" | "manifest" | "health"),
                "unknown kind `{}` on `{}`",
                m.kind,
                m.name
            );
        }
    }

    #[test]
    fn metric_name_matches_whole_literals_only() {
        assert_eq!(metric_name("serve.e2e"), Some("serve.e2e"));
        assert_eq!(metric_name("load.request_latency_ns"), Some("load.request_latency_ns"));
        assert_eq!(metric_name("train.best_epoch"), Some("train.best_epoch"));
        assert_eq!(metric_name("serve: arenas ready"), None, "prose never matches");
        assert_eq!(metric_name("serve queue full"), None);
        assert_eq!(metric_name("serve."), None);
        assert_eq!(metric_name("serve..x"), None);
        assert_eq!(metric_name("serve.E2E"), None, "names are lowercase");
        assert_eq!(metric_name("gemm.flops"), None, "out-of-scope family");
    }

    #[test]
    fn readme_block_roundtrip() {
        let readme = format!(
            "# X\n<!-- om-metric-table:begin -->\n{}<!-- om-metric-table:end -->\n",
            render_table()
        );
        assert!(check_readme(&readme).is_ok());
        assert!(check_readme("# X\nno markers\n").is_err());
        let drifted = readme.replace("serve.e2e", "serve.e2e_renamed");
        assert!(check_readme(&drifted).is_err());
    }
}
