//! A single-domain review corpus with the preprocessed dictionaries that
//! make Algorithm 1's lookups O(1) (§4.1's complexity analysis):
//!
//! 1. `user → [(item, rating, review), …]` — a user's purchase records;
//! 2. `(item, rating) → [users …]` — who gave this item this exact rating.

use std::collections::{HashMap, HashSet};

use crate::types::{Interaction, ItemId, Rating, UserId};

/// A named domain (`Books`, `Movies`, `Music`, …) and its review corpus,
/// indexed for the access patterns of the paper's algorithms.
#[derive(Debug, Clone)]
pub struct Domain {
    name: String,
    interactions: Vec<Interaction>,
    /// Dictionary (1) of §4.1: user → indices of their records.
    user_records: HashMap<UserId, Vec<usize>>,
    /// Dictionary (2) of §4.1: (item, rating) → users who rated it so.
    item_rating_users: HashMap<(ItemId, Rating), Vec<UserId>>,
    /// item → indices of its records (for item review documents).
    item_records: HashMap<ItemId, Vec<usize>>,
}

impl Domain {
    /// Build the domain and its dictionaries in one `O(N·M)` pass (N users,
    /// M average records per user — the preprocessing cost quoted in §4.1).
    pub fn new(name: impl Into<String>, interactions: Vec<Interaction>) -> Domain {
        let mut user_records: HashMap<UserId, Vec<usize>> = HashMap::new();
        let mut item_rating_users: HashMap<(ItemId, Rating), Vec<UserId>> = HashMap::new();
        let mut item_records: HashMap<ItemId, Vec<usize>> = HashMap::new();
        for (idx, it) in interactions.iter().enumerate() {
            user_records.entry(it.user).or_default().push(idx);
            item_rating_users
                .entry((it.item, it.rating))
                .or_default()
                .push(it.user);
            item_records.entry(it.item).or_default().push(idx);
        }
        Domain {
            name: name.into(),
            interactions,
            user_records,
            item_rating_users,
            item_records,
        }
    }

    /// The domain's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All interactions, in insertion order.
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Number of review records.
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// The set of users with at least one record, in ascending id order.
    /// Sorted so the iteration order is stable across runs — downstream
    /// seeded sampling must not inherit `HashMap` iteration order.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        let mut ids: Vec<UserId> = self.user_records.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// The set of items with at least one record, in ascending id order
    /// (stable across runs, like [`Domain::users`]).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        let mut ids: Vec<ItemId> = self.item_records.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        self.user_records.len()
    }

    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.item_records.len()
    }

    /// Dictionary (1) lookup: a user's purchase records
    /// (`get_purchase_records_in_source` of Algorithm 1, line 4). O(1).
    pub fn user_records(&self, user: UserId) -> impl Iterator<Item = &Interaction> {
        self.user_records
            .get(&user)
            .into_iter()
            .flatten()
            .map(|&i| &self.interactions[i])
    }

    /// Number of records a user has.
    pub fn user_degree(&self, user: UserId) -> usize {
        self.user_records.get(&user).map_or(0, Vec::len)
    }

    /// Dictionary (2) lookup: users who gave `item` exactly `rating`
    /// (`get_like_minded_s` of Algorithm 1, line 7). O(1).
    pub fn like_minded(&self, item: ItemId, rating: Rating) -> &[UserId] {
        self.item_rating_users
            .get(&(item, rating))
            .map_or(&[], Vec::as_slice)
    }

    /// An item's records (for building the item review document of §4.2).
    pub fn item_reviews(&self, item: ItemId) -> impl Iterator<Item = &Interaction> {
        self.item_records
            .get(&item)
            .into_iter()
            .flatten()
            .map(|&i| &self.interactions[i])
    }

    /// Whether a user appears in this domain.
    pub fn contains_user(&self, user: UserId) -> bool {
        self.user_records.contains_key(&user)
    }

    /// Users common to `self` and `other` — the overlapping set `Uᵒ` of §2.
    pub fn overlapping_users(&self, other: &Domain) -> Vec<UserId> {
        let mine: HashSet<UserId> = self.user_records.keys().copied().collect();
        let mut both: Vec<UserId> = other
            .user_records
            .keys()
            .filter(|u| mine.contains(u))
            .copied()
            .collect();
        both.sort_unstable(); // deterministic order for seeded splits
        both
    }

    /// Restrict the corpus to records whose user satisfies `keep`,
    /// rebuilding the dictionaries. Used to hide cold-start users' target
    /// reviews from training (§5.2).
    pub fn filter_users(&self, keep: impl Fn(UserId) -> bool) -> Domain {
        let kept: Vec<Interaction> = self
            .interactions
            .iter()
            .filter(|it| keep(it.user))
            .cloned()
            .collect();
        Domain::new(self.name.clone(), kept)
    }

    /// Average number of records per user (the `M` of §4.1).
    pub fn avg_records_per_user(&self) -> f32 {
        if self.user_records.is_empty() {
            return 0.0;
        }
        self.interactions.len() as f32 / self.user_records.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(stars: u8) -> Rating {
        Rating::new(stars).unwrap()
    }

    fn sample() -> Domain {
        Domain::new(
            "Books",
            vec![
                Interaction::new(UserId(1), ItemId(10), r(5), "vampire romance"),
                Interaction::new(UserId(2), ItemId(10), r(5), "fang tastic"),
                Interaction::new(UserId(3), ItemId(10), r(2), "boring"),
                Interaction::new(UserId(1), ItemId(11), r(4), "adventure"),
                Interaction::new(UserId(2), ItemId(11), r(4), "great action"),
            ],
        )
    }

    #[test]
    fn counts() {
        let d = sample();
        assert_eq!(d.len(), 5);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 2);
        assert!(!d.is_empty());
        assert!((d.avg_records_per_user() - 5.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn user_records_lookup() {
        let d = sample();
        let recs: Vec<_> = d.user_records(UserId(1)).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(d.user_degree(UserId(1)), 2);
        assert_eq!(d.user_degree(UserId(99)), 0);
    }

    #[test]
    fn like_minded_exact_rating_match() {
        let d = sample();
        let lm = d.like_minded(ItemId(10), r(5));
        assert_eq!(lm, &[UserId(1), UserId(2)]);
        // a 2-star rater is not like-minded with the 5-star group
        assert_eq!(d.like_minded(ItemId(10), r(2)), &[UserId(3)]);
        assert!(d.like_minded(ItemId(10), r(3)).is_empty());
    }

    #[test]
    fn item_reviews_lookup() {
        let d = sample();
        assert_eq!(d.item_reviews(ItemId(10)).count(), 3);
        assert_eq!(d.item_reviews(ItemId(99)).count(), 0);
    }

    #[test]
    fn overlap_is_sorted_intersection() {
        let a = sample();
        let b = Domain::new(
            "Movies",
            vec![
                Interaction::new(UserId(2), ItemId(50), r(3), "ok film"),
                Interaction::new(UserId(4), ItemId(50), r(5), "loved it"),
                Interaction::new(UserId(1), ItemId(51), r(5), "vampire movie"),
            ],
        );
        assert_eq!(a.overlapping_users(&b), vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn filter_users_rebuilds_indexes() {
        let d = sample();
        let f = d.filter_users(|u| u != UserId(1));
        assert_eq!(f.len(), 3);
        assert!(!f.contains_user(UserId(1)));
        assert_eq!(f.like_minded(ItemId(10), r(5)), &[UserId(2)]);
    }
}
