//! **Figure (online)** — the trajectory none of the related repos
//! measure: recommendation quality as a cold-start user accumulates live
//! target-domain interactions and graduates to warm inference.
//!
//! Setup: train on the synthetic Books→Movies scenario, then serve. Every
//! cold-start user's held-back target reviews are replayed as streamed
//! [`UserEvent`]s *except the last one*, which is held out for
//! evaluation. At each step `t` (interactions seen per user) the engine's
//! expected-star prediction for the held-out pair is scored against its
//! true rating — RMSE/MAE over all cold users — using the live serving
//! path: at `t = 0` that is the paper's auxiliary-review cold inference;
//! from `t ≥ warm_after` (1 here, so the trajectory starts moving
//! immediately) it is warm inference over a row re-encoded from the
//! user's accumulated live texts, hot-swapped in generation by
//! generation.
//!
//! Output: `results/figure_online.tsv` and a rendered table on stdout —
//! `run_experiments.sh` tees it into `results_figure_online.log`.

use om_data::types::UserId;
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_experiments::report::Table;
use om_serve::{ServeEngine, ServeOptions, UserEvent};
use omnimatch_core::{OmniMatchConfig, Trainer};

fn main() {
    let _run = om_obs::run_scope("figure_online");
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(7);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let item_order = views.items();

    // Graduate on the first interaction: the figure wants the whole
    // trajectory, not a plateau before warm_after.
    let opts = ServeOptions { warm_after: 1, ..ServeOptions::default() };
    let engine = ServeEngine::new(model, views, &warm, opts);

    // Per cold user: streamable events (all but the last target review)
    // and the held-out (item, rating) pair.
    let mut cold: Vec<UserId> = scenario.valid_users.clone();
    cold.extend_from_slice(&scenario.test_users);
    let mut streams: Vec<(UserId, Vec<UserEvent>, usize, f32)> = Vec::new();
    for &u in &cold {
        let recs: Vec<_> = scenario.target_full.user_records(u).collect();
        let Some((held_out, feed)) = recs.split_last() else { continue };
        let events: Vec<UserEvent> = feed
            .iter()
            .map(|it| UserEvent {
                user: u,
                item: it.item,
                stars: it.rating.value(),
                text: it.summary.clone(),
            })
            .collect();
        let Some(item_row) = item_order.iter().position(|&i| i == held_out.item) else {
            continue;
        };
        streams.push((u, events, item_row, held_out.rating.value()));
    }
    assert!(!streams.is_empty(), "no cold user has a held-out interaction");
    let t_max = streams.iter().map(|(_, evs, _, _)| evs.len()).max().unwrap_or(0);
    om_obs::manifest_set("experiment.trials", 1u64.into());

    let mut table = Table::new(
        "Figure (online) — quality vs interactions seen (Books -> Movies)".to_string(),
        &["interactions_seen", "graduated_users", "RMSE", "MAE"],
    );
    for t in 0..=t_max {
        // Feed each user's t-th event (users with shorter streams have
        // simply finished graduating earlier — production traffic is
        // exactly this ragged).
        if t > 0 {
            for (_, events, _, _) in &streams {
                if let Some(ev) = events.get(t - 1) {
                    engine.apply_event(ev).expect("apply event");
                }
            }
        }
        let graduated = streams
            .iter()
            .filter(|(u, _, _, _)| engine.is_warm(*u))
            .count();
        let pairs: Vec<(f32, f32)> = streams
            .iter()
            .map(|&(u, _, item_row, gold)| {
                let scores = engine.score_user(u).expect("score user");
                (scores[item_row], gold)
            })
            .collect();
        let eval = om_metrics::Eval::of(&pairs);
        table.row(vec![
            format!("{t}"),
            format!("{graduated}/{}", streams.len()),
            format!("{:.3}", eval.rmse),
            format!("{:.3}", eval.mae),
        ]);
    }
    println!("{}", table.render());
    table.write_tsv("figure_online.tsv").expect("write TSV");
    println!(
        "generation after replay: {} (cold users: {}, catalogue: {})",
        engine.user_generation(),
        streams.len(),
        engine.catalogue_len()
    );
    println!("TSV written to results/figure_online.tsv");
}
